//! Market-driven economy at population scale, asserted end-to-end
//! through the live bank.
//!
//! The paper's GRACE economic-model menu (§2.2: "commodity market,
//! posted price, **bargaining, tendering and auction models**") meets
//! the §6 federation here: two full [`GridBankServer`] stacks on a
//! private in-process network, a population of accounts per branch, and
//! four concurrent traffic classes driven by one deterministic clock:
//!
//! * **Spot payments** — Poisson arrivals modulated by a
//!   [`DiurnalCurve`] rush-hour cycle, recipients drawn from a
//!   [`ZipfSampler`] hot set, a seeded share crossing branches through
//!   the federation router.
//! * **Flash-crowd auctions** — a scarce GSP announces capacity
//!   auctions ([`GridServiceProvider::announce_auction`]): Dutch while
//!   idle, English once its machines fill; the broker drives each
//!   session ([`run_auction`]) and the winner settles through the live
//!   bank under the session's stable idempotency key, with a deliberate
//!   duplicate re-send that must dedup bank-side ([`settle_award`]).
//! * **Co-op barter ring** — a Figure-4 community on branch 2 seeded
//!   with [`allocate_initial_credits`], exchanging services in a ring.
//! * **PayWord streams** — long-running hash chains redeemed
//!   incrementally by the provider, closed out at expiry.
//!
//! Every run ends in hard evidence, collected into an
//! [`EconomyReport`] and checked by [`EconomyReport::verify`]: global
//! conservation (Σ funds across both branches unchanged, clearing
//! accounts included), zero residual clearing and zero pending
//! inter-branch credits after netting, zero stranded locked funds,
//! `ib.credit.stranded` unmoved, and **exactly-once settlement** of
//! every auction win (ledger rows grouped by (drawer, recipient,
//! amount) match the settlements one-for-one despite the duplicate
//! re-sends). The report also carries an FNV-1a digest of the full
//! per-branch ledger state, so two same-seed runs can be asserted
//! byte-identical.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_broker::auction::{run_auction, settle_award, AuctionBidder};
use gridbank_core::api::{BankRequest, BankResponse};
use gridbank_core::client::{ClientHashChain, GridBankClient};
use gridbank_core::clock::Clock;
use gridbank_core::coop::{allocate_initial_credits, BarterStats};
use gridbank_core::db::AccountId;
use gridbank_core::federation::{FederationRouter, RemotePeer};
use gridbank_core::port::{BankPort, InProcessBank};
use gridbank_core::resilient::{Connector, ResilientBankClient};
use gridbank_core::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_gsp::charging::PaymentInstrument;
use gridbank_gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_meter::levels::AccountingLevel;
use gridbank_meter::machine::{JobSpec, MachineSpec, OsFlavour};
use gridbank_net::retry::RetryPolicy;
use gridbank_net::transport::{Address, Network};
use gridbank_rur::record::ChargeableItem;
use gridbank_rur::Credits;
use gridbank_trade::pricing::FlatPricing;
use gridbank_trade::rates::ServiceRates;
use gridbank_trade::session::{AuctionKind, AuctionSession};

use crate::workload::{DiurnalCurve, JobSizeDistribution, WorkloadConfig, ZipfSampler};

const OPERATOR: &str = "/O=GridBank/OU=Admin/CN=operator";

/// Market scenario parameters.
#[derive(Clone, Debug)]
pub struct EconomyConfig {
    /// Master seed; every draw and identity derives from it.
    pub seed: u64,
    /// Accounts created in each of the two branches.
    pub population_per_branch: usize,
    /// Wire-connected paying consumers per branch (drawn from the
    /// population tail so they stay clear of the Zipf hot set).
    pub payers_per_branch: usize,
    /// Spot payments across the whole run.
    pub spot_payments: usize,
    /// Percentage of spot payments that cross branches (0..=100).
    pub cross_branch_pct: u8,
    /// Zipf exponent for recipient popularity, in permille
    /// (1000 = the classic `s = 1`).
    pub zipf_s_permille: u32,
    /// Flash-crowd capacity auctions to run.
    pub auctions: usize,
    /// Bidders the broker represents per auction (≤ payers_per_branch).
    pub bidders_per_auction: usize,
    /// Co-op barter community size on branch 2.
    pub barter_members: usize,
    /// Ring rounds the community exchanges.
    pub barter_rounds: usize,
    /// Concurrent long-running PayWord streams.
    pub payword_streams: usize,
    /// Words per hash chain.
    pub payword_words: u32,
    /// Incremental redemption calls per stream.
    pub payword_redemptions: u32,
    /// Mean Poisson inter-arrival gap for spot payments, virtual ms.
    pub mean_interarrival_ms: u64,
    /// Optional day/night cycle over the arrivals.
    pub diurnal: Option<DiurnalCurve>,
    /// Bank signer height (2^h signed instruments per branch).
    pub signer_height: usize,
}

impl Default for EconomyConfig {
    fn default() -> Self {
        EconomyConfig {
            seed: 0x6B1D_2003,
            population_per_branch: 300,
            payers_per_branch: 3,
            spot_payments: 120,
            cross_branch_pct: 35,
            zipf_s_permille: 1_100,
            auctions: 3,
            bidders_per_auction: 3,
            barter_members: 5,
            barter_rounds: 3,
            payword_streams: 2,
            payword_words: 8,
            payword_redemptions: 3,
            mean_interarrival_ms: 40,
            diurnal: Some(DiurnalCurve { period_ms: 60_000, trough_pct: 20 }),
            signer_height: 9,
        }
    }
}

/// What the scenario measured — and the evidence behind it.
#[derive(Clone, Debug)]
pub struct EconomyReport {
    /// Accounts per branch.
    pub population: usize,
    /// Spot payments that committed.
    pub spot_payments: u32,
    /// Of those, how many crossed branches.
    pub cross_branch_payments: u32,
    /// Auction wins settled through the bank.
    pub auctions_settled: u32,
    /// Auctions announced under the Dutch (idle-provider) mechanism.
    pub dutch_auctions: u32,
    /// Auctions announced under the English (flash-crowd) mechanism.
    pub english_auctions: u32,
    /// Sum of winning prices.
    pub auction_volume: Credits,
    /// Duplicate settlement re-sends that deduped to the original
    /// confirmation (must equal `auctions_settled`).
    pub duplicate_settlements_deduped: u32,
    /// Ledger rows grouped by (drawer, recipient, amount) matched the
    /// settlements one-for-one.
    pub exactly_once_ok: bool,
    /// Value exchanged around the barter ring.
    pub barter_volume: Credits,
    /// Largest |provided − consumed| across community members.
    pub barter_equilibrium_gap: Credits,
    /// Total redeemed through PayWord streams.
    pub payword_paid: Credits,
    /// Reservations released when the chains closed.
    pub payword_released: Credits,
    /// Net obligations moved by the settlement pass.
    pub settlement_net: Credits,
    /// Σ funds across both branches before traffic.
    pub initial_total: Credits,
    /// Σ funds across both branches after settlement.
    pub final_total: Credits,
    /// Σ |clearing balances| after settlement.
    pub residual_clearing: Credits,
    /// Inter-branch credits still unacknowledged after settlement.
    pub pending_after: usize,
    /// Σ locked µG$ still reserved after sweeps and chain closes.
    pub stranded_locked_micro: i128,
    /// `ib.credit.stranded` counter movement across the run.
    pub stranded_credit_delta: u64,
    /// Journal length per branch.
    pub journal_len: [usize; 2],
    /// FNV-1a digest over both branches' sorted account state and
    /// journal lengths — byte-identical across same-seed runs.
    pub ledger_digest: u64,
}

impl EconomyReport {
    /// Eager cross-branch credits exactly offset by clearing drains?
    pub fn conserved(&self) -> bool {
        self.initial_total == self.final_total
    }

    /// Checks every hard invariant the scenario promises; `Err` carries
    /// all violations joined together.
    pub fn verify(&self) -> Result<(), String> {
        let mut faults = Vec::new();
        if !self.conserved() {
            faults.push(format!(
                "conservation violated: {} before, {} after",
                self.initial_total, self.final_total
            ));
        }
        if self.residual_clearing != Credits::ZERO {
            faults.push(format!("residual clearing {}", self.residual_clearing));
        }
        if self.pending_after != 0 {
            faults.push(format!("{} inter-branch credits still pending", self.pending_after));
        }
        if self.stranded_locked_micro != 0 {
            faults.push(format!("{}µG$ locked funds stranded", self.stranded_locked_micro));
        }
        if self.stranded_credit_delta != 0 {
            faults.push(format!("ib.credit.stranded moved by {}", self.stranded_credit_delta));
        }
        if !self.exactly_once_ok {
            faults.push("auction settlements did not apply exactly once".into());
        }
        if self.duplicate_settlements_deduped != self.auctions_settled {
            faults.push(format!(
                "{} of {} duplicate re-sends deduped",
                self.duplicate_settlements_deduped, self.auctions_settled
            ));
        }
        if faults.is_empty() {
            Ok(())
        } else {
            Err(faults.join("; "))
        }
    }
}

struct MarketWorld {
    network: Network,
    clock: Clock,
    ca: CertificateAuthority,
    banks: Vec<Arc<GridBank>>,
    routers: Vec<Arc<FederationRouter>>,
    _servers: Vec<GridBankServer>,
}

/// Boots two federated server stacks on a private network — the same
/// shape the CLI's self-hosted world and `tests/federation_wire.rs`
/// use: per-branch TLS identities under one CA, and a full mesh of
/// pooled resilient settlement routes.
fn boot_world(signer_height: usize) -> Result<MarketWorld, String> {
    // The CA signs one certificate per server, settlement route, and
    // wire identity — a population-scale world issues more than the
    // 16 signatures a small test identity holds, so use full height.
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let network = Network::new();
    let branches: u16 = 2;

    let mut banks = Vec::new();
    let mut servers = Vec::new();
    for b in 1..=branches {
        let bank = Arc::new(GridBank::new(
            GridBankConfig {
                branch: b,
                signer_height,
                gate_mode: GateMode::AllowEnrollment,
                key_material: KeyMaterial { seed: 0x6B1D + b as u64 },
                ..GridBankConfig::default()
            },
            clock.clone(),
        ));
        let tls = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 100 + b as u64 }, "tls"));
        let cert = ca
            .issue(
                SubjectName::new("GridBank", "Server", &format!("branch-{b:04}")),
                tls.verifying_key(),
                0,
                u64::MAX / 2,
            )
            .map_err(|e| e.to_string())?;
        let server = GridBankServer::start(
            &network,
            Address::new(format!("branch-{b}")),
            Arc::clone(&bank),
            ServerCredentials { certificate: cert, identity: tls, ca_key: ca.verifying_key() },
            b as u64,
        )
        .map_err(|e| e.to_string())?;
        banks.push(bank);
        servers.push(server);
    }

    let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
    for from in 1..=branches {
        for to in 1..=branches {
            if from == to {
                continue;
            }
            let id = SigningIdentity::generate_small(
                KeyMaterial { seed: 0x5E77_0000 + from as u64 },
                "settle",
            );
            let dn = SubjectName::new("GridBank", "Settlement", &format!("branch-{from:04}"));
            let cert =
                ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).map_err(|e| e.to_string())?;
            let (net, clk, ca_key) = (network.clone(), clock.clone(), ca.verifying_key());
            let target = Address::new(format!("branch-{to}"));
            let mut attempt = 0u64;
            let connector: Connector = Box::new(move || {
                attempt += 1;
                let id = SigningIdentity::generate_small(
                    KeyMaterial { seed: 0x5E77_0000 + from as u64 },
                    "settle",
                );
                let proxy_id = SigningIdentity::generate_small(
                    KeyMaterial { seed: 0x9000 + (from as u64) * 977 + attempt },
                    "proxy",
                );
                let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)?;
                let mut nonces = DeterministicStream::from_u64(
                    ((from as u64) << 32) | ((to as u64) << 16) | attempt,
                    b"mkt-nonce",
                );
                GridBankClient::connect(
                    &net,
                    Address::new(format!("mkt-fed-{from}-{to}-{attempt}")),
                    &target,
                    ca_key,
                    clk.now_ms(),
                    &proxy,
                    &proxy_id,
                    &mut nonces,
                )
            });
            let policy = RetryPolicy {
                base_delay_ms: 1,
                max_delay_ms: 8,
                max_attempts: 6,
                deadline_ms: 10_000,
                seed: from as u64,
            };
            let client = ResilientBankClient::new(
                connector,
                policy,
                clock.clone(),
                (from as u64) * 31 + to as u64,
            );
            routers[(from - 1) as usize].add_peer(to, RemotePeer::new(client));
        }
    }

    Ok(MarketWorld { network, clock, ca, banks, routers, _servers: servers })
}

impl MarketWorld {
    /// Connects an authenticated client as `dn` to `branch` through the
    /// real handshake, with a fresh single-sign-on proxy certificate.
    fn client(&self, dn: SubjectName, seed: u64, branch: u16) -> Result<GridBankClient, String> {
        let id = SigningIdentity::generate_small(KeyMaterial { seed }, "client");
        let cert =
            self.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).map_err(|e| e.to_string())?;
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 5_000 }, "proxy");
        let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)
            .map_err(|e| e.to_string())?;
        let mut nonces = DeterministicStream::from_u64(seed, b"mkt-nonce");
        GridBankClient::connect(
            &self.network,
            Address::new(format!("mkt-client-{seed}")),
            &Address::new(format!("branch-{branch}")),
            self.ca.verifying_key(),
            self.clock.now_ms(),
            &proxy,
            &proxy_id,
            &mut nonces,
        )
        .map_err(|e| e.to_string())
    }
}

fn pop_dn(branch: usize, index: usize) -> SubjectName {
    SubjectName(format!("/O=Market/OU=Pop/CN=pop-{branch}-{index:06}"))
}

fn fnv(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= b as u64;
        *hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// FNV-1a over both branches' sorted account state plus journal
/// lengths: the determinism witness.
fn ledger_digest(banks: &[Arc<GridBank>]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for bank in banks {
        let mut accounts = bank.all_accounts();
        accounts.sort_by_key(|a| a.id);
        for a in &accounts {
            fnv(&mut h, &a.id.bank.to_le_bytes());
            fnv(&mut h, &a.id.branch.to_le_bytes());
            fnv(&mut h, &a.id.number.to_le_bytes());
            fnv(&mut h, a.certificate_name.as_bytes());
            fnv(&mut h, &a.available.micro().to_le_bytes());
            fnv(&mut h, &a.locked.micro().to_le_bytes());
        }
        fnv(&mut h, &(bank.accounts.db().journal_snapshot().len() as u64).to_le_bytes());
    }
    h
}

fn total_funds(banks: &[Arc<GridBank>]) -> Credits {
    banks.iter().map(|b| b.total_funds()).fold(Credits::ZERO, |a, c| a.saturating_add(c))
}

/// One scheduled interleave point in the spot-payment stream.
enum MarketEvent {
    Auction(usize),
    BarterRound,
    StreamRedeem(usize),
}

/// Runs the full market scenario; see module docs. Deterministic under
/// `cfg.seed` — the returned report's `ledger_digest` is identical
/// across same-seed runs.
pub fn run_market(cfg: &EconomyConfig) -> Result<EconomyReport, String> {
    if cfg.payers_per_branch == 0 || cfg.spot_payments == 0 {
        return Err("market needs at least one payer and one payment".into());
    }
    if cfg.bidders_per_auction > cfg.payers_per_branch {
        return Err("bidders_per_auction must not exceed payers_per_branch".into());
    }
    let reserved = cfg.payers_per_branch + cfg.barter_members + cfg.payword_streams;
    if cfg.population_per_branch < reserved + 10 {
        return Err(format!(
            "population_per_branch {} too small for {reserved} reserved identities",
            cfg.population_per_branch
        ));
    }

    let world = boot_world(cfg.signer_height)?;
    let operator = SubjectName(OPERATOR.into());

    // Population: every account exists in the live ledger, bound to its
    // own certificate. Created through the dispatcher (same
    // authorization path as the wire, no handshake per account — the
    // wire clients below re-attach to these identities).
    let mut population: Vec<Vec<AccountId>> = vec![Vec::new(), Vec::new()];
    for (b, bank) in world.banks.iter().enumerate() {
        for i in 0..cfg.population_per_branch {
            match bank.handle(&pop_dn(b, i), BankRequest::CreateAccount { organization: None }) {
                BankResponse::AccountCreated { account } => population[b].push(account),
                other => return Err(format!("population account {b}/{i}: {other:?}")),
            }
        }
    }

    // Payers: wire clients re-attaching to tail population identities
    // (the Zipf hot set lives at the head, so payers rarely pay
    // themselves and never dominate the receiving side).
    let mut payers: Vec<Vec<GridBankClient>> = vec![Vec::new(), Vec::new()];
    let mut payer_accounts: Vec<Vec<AccountId>> = vec![Vec::new(), Vec::new()];
    let mut payer_dns: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
    for b in 0..2usize {
        let mut admin = world.client(operator.clone(), 30_000 + b as u64, b as u16 + 1)?;
        for j in 0..cfg.payers_per_branch {
            let idx = cfg.population_per_branch - 1 - j;
            let dn = pop_dn(b, idx);
            let client =
                world.client(dn.clone(), 10_000 + (b as u64) * 1_000 + j as u64, b as u16 + 1)?;
            admin
                .admin_deposit(population[b][idx], Credits::from_gd(2_000))
                .map_err(|e| format!("fund payer {b}/{j}: {e}"))?;
            payers[b].push(client);
            payer_accounts[b].push(population[b][idx]);
            payer_dns[b].push(dn.0);
        }
    }

    // The scarce provider on branch 1: a wire identity for PayWord
    // redemption plus the in-process provider stack (meter, template
    // pool, charging module) behind the same certificate and account.
    let gsp_dn = SubjectName::new("Market", "GSP", "gsp-1");
    let gsp_cert = "/O=Market/OU=GSP/CN=gsp-1".to_string();
    let mut gsp_client = world.client(gsp_dn.clone(), 40_000, 1)?;
    let gsp_account = gsp_client.create_account(None).map_err(|e| format!("gsp account: {e}"))?;
    let base_rates = ServiceRates::new()
        .with(ChargeableItem::Cpu, Credits::from_gd(2))
        .with(ChargeableItem::WallClock, Credits::from_gd(1))
        .with(ChargeableItem::Memory, Credits::from_milli(10))
        .with(ChargeableItem::Network, Credits::from_milli(5));
    let mut provider = GridServiceProvider::new(
        GspConfig {
            cert: gsp_cert.clone(),
            host: "gsp-1.market".into(),
            machines: (0..2)
                .map(|m| MachineSpec {
                    host: format!("gsp-1-node-{m}"),
                    os: OsFlavour::Linux,
                    speed: 100,
                    cores: 4,
                    memory_mb: 16_384,
                })
                .collect(),
            base_rates,
            pool_size: 8,
            accounting_level: AccountingLevel::Standard,
            machine_seed: cfg.seed,
        },
        world.banks[0].verifying_key(),
        InProcessBank::new(Arc::clone(&world.banks[0]), gsp_dn),
        Box::new(FlatPricing),
    );

    // The consumer whose cheque-paid job makes the provider scarce,
    // flipping later announcements from Dutch to English.
    let filler_dn = SubjectName::new("Market", "Occupy", "filler");
    let mut filler_port = InProcessBank::new(Arc::clone(&world.banks[0]), filler_dn);
    let filler_account =
        filler_port.create_account(None).map_err(|e| format!("filler account: {e}"))?;
    world.banks[0].handle(
        &operator,
        BankRequest::AdminDeposit { account: filler_account, amount: Credits::from_gd(500) },
    );

    // PayWord streams: dedicated consumers on branch 1 (kept disjoint
    // from the auction bidders so the exactly-once grouping below can
    // never collide with stream redemptions).
    const CHAIN_VALIDITY_MS: u64 = 600_000;
    let mut stream_clients = Vec::new();
    let mut chains: Vec<ClientHashChain> = Vec::new();
    let mut redeemed: Vec<u32> = Vec::new();
    for s in 0..cfg.payword_streams {
        let idx = cfg.population_per_branch - 1 - cfg.payers_per_branch - s;
        let mut client = world.client(pop_dn(0, idx), 20_000 + s as u64, 1)?;
        world.banks[0].handle(
            &operator,
            BankRequest::AdminDeposit {
                account: population[0][idx],
                amount: Credits::from_gd(100),
            },
        );
        let chain = client
            .request_hash_chain(
                &gsp_cert,
                cfg.payword_words,
                Credits::from_milli(20),
                CHAIN_VALIDITY_MS,
            )
            .map_err(|e| format!("stream {s} chain: {e}"))?;
        stream_clients.push(client);
        chains.push(chain);
        redeemed.push(0);
    }

    // Barter community on branch 2, seeded Figure-4 style.
    let mut barter_clients = Vec::new();
    let mut barter_accounts = Vec::new();
    let mut barter_allocs = Vec::new();
    let mut seed_rng = StdRng::seed_from_u64(cfg.seed ^ 0x0BA7_7E12);
    for m in 0..cfg.barter_members {
        let idx = cfg.population_per_branch - 1 - cfg.payers_per_branch - m;
        let client = world.client(pop_dn(1, idx), 25_000 + m as u64, 2)?;
        barter_clients.push(client);
        barter_accounts.push(population[1][idx]);
        barter_allocs.push((population[1][idx], seed_rng.random_range(10u64..30)));
    }
    if !barter_allocs.is_empty() {
        allocate_initial_credits(
            &world.banks[1].admin,
            OPERATOR,
            &barter_allocs,
            Credits::from_gd(1),
        )
        .map_err(|e| format!("barter allocation: {e}"))?;
    }

    // Everything is minted; from here the economy must conserve.
    let stranded_before =
        gridbank_obs::registry().snapshot().counter("ib.credit.stranded").unwrap_or(0);
    let initial_total = total_funds(&world.banks);
    let barter_window_start = world.clock.now_ms();

    // Spot-payment arrival schedule, with auctions / barter rounds /
    // stream redemptions interleaved at fixed points.
    let workload = WorkloadConfig {
        seed: cfg.seed,
        count: cfg.spot_payments,
        consumers: cfg.payers_per_branch * 2,
        mean_interarrival_ms: cfg.mean_interarrival_ms,
        sizes: JobSizeDistribution::Constant(10),
        memory_mb: 64,
        network_mb: 1,
        diurnal: cfg.diurnal,
    };
    let events = workload.generate();
    let mut schedule: HashMap<usize, Vec<MarketEvent>> = HashMap::new();
    let clamp = |i: usize| i.min(events.len().saturating_sub(1));
    for a in 0..cfg.auctions {
        let at = clamp((a + 1) * events.len() / (cfg.auctions + 1));
        schedule.entry(at).or_default().push(MarketEvent::Auction(a));
    }
    for r in 0..cfg.barter_rounds {
        let at = clamp((r + 1) * events.len() / (cfg.barter_rounds + 1));
        schedule.entry(at).or_default().push(MarketEvent::BarterRound);
    }
    let stream_calls = cfg.payword_streams * cfg.payword_redemptions as usize;
    for c in 0..stream_calls {
        let at = clamp((c + 1) * events.len() / (stream_calls + 1));
        schedule.entry(at).or_default().push(MarketEvent::StreamRedeem(c));
    }

    let zipf = ZipfSampler::new(cfg.population_per_branch, cfg.zipf_s_permille);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5107_A301);
    let word_step = (cfg.payword_words / cfg.payword_redemptions.max(1)).max(1);

    let mut spot_count = 0u32;
    let mut cross_count = 0u32;
    let mut auctions_settled = 0u32;
    let mut dutch_auctions = 0u32;
    let mut english_auctions = 0u32;
    let mut auction_volume = Credits::ZERO;
    let mut dups_deduped = 0u32;
    let mut settle_triples: Vec<(AccountId, AccountId, Credits)> = Vec::new();
    let mut barter_volume = Credits::ZERO;
    let mut payword_paid = Credits::ZERO;

    let mut last_ms = 0u64;
    for (k, ev) in events.iter().enumerate() {
        world.clock.advance(ev.arrival_ms.saturating_sub(last_ms));
        last_ms = ev.arrival_ms;

        // The spot payment itself: Zipf-popular recipient, seeded share
        // crossing branches through the live federation route.
        let b_from = ev.consumer % 2;
        let j = (ev.consumer / 2) % cfg.payers_per_branch;
        let cross = rng.random_range(0u32..100) < cfg.cross_branch_pct as u32;
        let b_to = if cross { 1 - b_from } else { b_from };
        let mut rank = zipf.sample(&mut rng);
        if population[b_to][rank] == payer_accounts[b_from][j] {
            rank = (rank + 1) % cfg.population_per_branch;
        }
        // lint:allow(money-arith) bounded literal draw builds a fixture amount; cannot overflow
        let amount = Credits::from_micro((rng.random_range(50i64..500) * 1_000 + 7) as i128);
        payers[b_from][j]
            .direct_transfer(population[b_to][rank], amount, "spot.market")
            .map_err(|e| format!("spot payment {k}: {e}"))?;
        spot_count += 1;
        gridbank_obs::count("market.payments", 1);
        if cross {
            cross_count += 1;
            gridbank_obs::count("market.cross_branch", 1);
        }

        let Some(actions) = schedule.remove(&k) else { continue };
        for action in actions {
            match action {
                MarketEvent::Auction(a) => {
                    let now = world.clock.now_ms();
                    let announcement = provider
                        .announce_auction(a as u64 + 1, "burst capacity", now)
                        .map_err(|e| format!("auction {a} announce: {e:?}"))?;
                    let base = match announcement.kind {
                        AuctionKind::English { reserve, .. } => {
                            english_auctions += 1;
                            reserve
                        }
                        AuctionKind::Dutch { floor, .. } => {
                            dutch_auctions += 1;
                            floor
                        }
                        AuctionKind::FirstPriceSealed { reserve }
                        | AuctionKind::Vickrey { reserve } => reserve,
                    };
                    let mut session = AuctionSession::open(announcement);
                    let mut bidders = Vec::new();
                    for (i, dn) in payer_dns[0].iter().take(cfg.bidders_per_auction).enumerate() {
                        let pct = 110 + 25 * i as u64 + rng.random_range(0u64..20);
                        let valuation = base
                            .mul_ratio(pct, 100)
                            .map_err(|e| format!("auction {a} valuation: {e}"))?;
                        bidders.push(AuctionBidder { bidder: dn.clone(), valuation });
                    }
                    let settlement = run_auction(&mut session, &bidders)
                        .map_err(|e| format!("auction {a}: {e}"))?;
                    let widx = payer_dns[0]
                        .iter()
                        .position(|dn| *dn == settlement.award.winner)
                        .ok_or_else(|| format!("auction {a}: unknown winner"))?;
                    let confirmation = settle_award(
                        &mut payers[0][widx],
                        &settlement,
                        gsp_account,
                        "gsp-1.market",
                    )
                    .map_err(|e| format!("auction {a} settle: {e}"))?;
                    // Deliberate duplicate re-send of the same
                    // settlement: the bank must replay the remembered
                    // confirmation, not apply a second transfer.
                    let duplicate = settle_award(
                        &mut payers[0][widx],
                        &settlement,
                        gsp_account,
                        "gsp-1.market",
                    )
                    .map_err(|e| format!("auction {a} re-send: {e}"))?;
                    if duplicate.body == confirmation.body {
                        dups_deduped += 1;
                    }
                    settle_triples.push((
                        confirmation.body.drawer,
                        confirmation.body.recipient,
                        settlement.award.price,
                    ));
                    auction_volume = auction_volume.saturating_add(settlement.award.price);
                    auctions_settled += 1;
                    gridbank_obs::count("market.auctions.settled", 1);

                    if a == 0 {
                        // Flash crowd: a cheque-paid job fills half the
                        // provider's machines, so every later
                        // announcement is an English ascending auction.
                        let quote = provider
                            .quote(world.clock.now_ms(), 1_000_000)
                            .map_err(|e| format!("occupancy quote: {e:?}"))?;
                        let cheque = filler_port
                            .request_cheque(&gsp_cert, Credits::from_gd(50), 10_000_000)
                            .map_err(|e| format!("occupancy cheque: {e}"))?;
                        provider
                            .execute_job(
                                "/O=Market/OU=Occupy/CN=filler",
                                PaymentInstrument::Cheque(cheque),
                                &JobSpec::cpu_bound(360_000_000),
                                &quote.rates,
                                world.clock.now_ms(),
                            )
                            .map_err(|e| format!("occupancy job: {e:?}"))?;
                    }
                }
                MarketEvent::BarterRound => {
                    let n = barter_clients.len();
                    for i in 0..n {
                        let amount = Credits::from_milli(rng.random_range(50i64..250));
                        let to = barter_accounts[(i + 1) % n];
                        barter_clients[i]
                            .direct_transfer(to, amount, "barter.coop")
                            .map_err(|e| format!("barter transfer: {e}"))?;
                        barter_volume = barter_volume.saturating_add(amount);
                        gridbank_obs::count("market.barter.volume_micro", amount.metric_micro());
                    }
                }
                MarketEvent::StreamRedeem(c) => {
                    let s = c % cfg.payword_streams.max(1);
                    let next = (redeemed[s] + word_step).min(cfg.payword_words);
                    if next > redeemed[s] {
                        let payword = chains[s]
                            .payword(next)
                            .map_err(|e| format!("stream {s} payword {next}: {e:?}"))?;
                        let paid = gsp_client
                            .redeem_payword(
                                chains[s].commitment.clone(),
                                chains[s].signature.clone(),
                                payword,
                                Vec::new(),
                            )
                            .map_err(|e| format!("stream {s} redeem: {e}"))?;
                        payword_paid = payword_paid.saturating_add(paid);
                        redeemed[s] = next;
                        gridbank_obs::count("market.payword.redeemed_micro", paid.metric_micro());
                    }
                }
            }
        }
    }
    let barter_window_end = world.clock.now_ms().saturating_add(1);

    // Close out: expire the chains, release their reservations, sweep,
    // and net the clearing accounts.
    world.clock.advance(CHAIN_VALIDITY_MS + 100_000);
    let mut payword_released = Credits::ZERO;
    for (s, chain) in chains.iter().enumerate() {
        let released = stream_clients[s]
            .close_hash_chain(chain.commitment.clone())
            .map_err(|e| format!("stream {s} close: {e}"))?;
        payword_released = payword_released.saturating_add(released);
    }
    for bank in &world.banks {
        bank.sweep_expired_instruments();
    }
    let mut settlement_net = Credits::ZERO;
    for router in &world.routers {
        let report = router.settle_once().map_err(|e| format!("settlement: {e}"))?;
        settlement_net = settlement_net.saturating_add(report.total_net());
    }

    // Evidence.
    let final_total = total_funds(&world.banks);
    let mut residual_clearing = Credits::ZERO;
    let mut pending_after = 0usize;
    for (i, router) in world.routers.iter().enumerate() {
        for peer in router.peer_branches() {
            residual_clearing =
                residual_clearing.saturating_add(router.clearing_balance(peer).abs());
        }
        pending_after += world.banks[i].accounts.db().ib_pending_snapshot().len();
    }
    let stranded_locked_micro: i128 =
        world.banks.iter().flat_map(|b| b.all_accounts()).map(|a| a.locked.micro()).sum();
    let stranded_after =
        gridbank_obs::registry().snapshot().counter("ib.credit.stranded").unwrap_or(0);

    // Exactly-once: group the auction settlements by (drawer,
    // recipient, amount) and demand the ledger carry precisely that
    // many rows per group — the duplicate re-sends must not show.
    let mut expected: HashMap<(AccountId, AccountId, i128), usize> = HashMap::new();
    for (drawer, recipient, amount) in &settle_triples {
        // lint:allow(money-arith) increments a usize occurrence counter; .micro() is only a map key
        *expected.entry((*drawer, *recipient, amount.micro())).or_default() += 1;
    }
    let mut observed: HashMap<(AccountId, AccountId, i128), usize> = HashMap::new();
    for t in world.banks[0].accounts.db().all_transfers() {
        let key = (t.drawer, t.recipient, t.amount.micro());
        if expected.contains_key(&key) {
            *observed.entry(key).or_default() += 1;
        }
    }
    let exactly_once_ok = expected == observed;

    let barter_stats =
        BarterStats::compute(world.banks[1].accounts.db(), barter_window_start, barter_window_end);
    let barter_equilibrium_gap = barter_accounts
        .iter()
        .filter_map(|a| barter_stats.balances.get(a))
        .map(|b| b.net().abs())
        .fold(Credits::ZERO, Credits::max);

    Ok(EconomyReport {
        population: cfg.population_per_branch,
        spot_payments: spot_count,
        cross_branch_payments: cross_count,
        auctions_settled,
        dutch_auctions,
        english_auctions,
        auction_volume,
        duplicate_settlements_deduped: dups_deduped,
        exactly_once_ok,
        barter_volume,
        barter_equilibrium_gap,
        payword_paid,
        payword_released,
        settlement_net,
        initial_total,
        final_total,
        residual_clearing,
        pending_after,
        stranded_locked_micro,
        stranded_credit_delta: stranded_after.saturating_sub(stranded_before),
        journal_len: [
            world.banks[0].accounts.db().journal_snapshot().len(),
            world.banks[1].accounts.db().journal_snapshot().len(),
        ],
        ledger_digest: ledger_digest(&world.banks),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> EconomyConfig {
        EconomyConfig {
            population_per_branch: 120,
            spot_payments: 60,
            auctions: 2,
            barter_rounds: 2,
            ..EconomyConfig::default()
        }
    }

    #[test]
    fn market_economy_small_run_passes_every_invariant() {
        let report = run_market(&small()).expect("scenario runs");
        report.verify().expect("invariants hold");
        assert_eq!(report.auctions_settled, 2);
        assert_eq!(report.dutch_auctions, 1, "idle provider opens Dutch");
        assert_eq!(report.english_auctions, 1, "scarce provider flips to English");
        assert!(report.cross_branch_payments > 0, "some traffic must cross branches");
        assert!(report.payword_paid > Credits::ZERO);
        assert!(report.barter_volume > Credits::ZERO);
        assert!(report.auction_volume > Credits::ZERO);
    }

    #[test]
    fn same_seed_market_runs_are_byte_identical() {
        let a = run_market(&small()).expect("first run");
        let b = run_market(&small()).expect("second run");
        assert_eq!(a.ledger_digest, b.ledger_digest, "ledger state must be byte-identical");
        assert_eq!(a.journal_len, b.journal_len);
        assert_eq!(a.final_total, b.final_total);
        assert_eq!(a.auction_volume, b.auction_volume);

        let c = run_market(&EconomyConfig { seed: 0x0DD_5EED, ..small() }).expect("third run");
        assert_ne!(a.ledger_digest, c.ledger_digest, "different seeds must diverge");
    }
}
