//! Chaos harness: Figure-1 payment flows over a fault-injected link.
//!
//! Builds a real networked world — CA, bank server, consumers, one GSP,
//! all speaking the authenticated channel — then pushes payments through
//! a [`FaultInjector`] that drops, duplicates, reorders, and resets
//! frames deterministically under a seed. Consumers and the GSP use
//! [`ResilientBankClient`], so every logical operation retries over
//! fresh handshakes with a stable idempotency key.
//!
//! The harness returns a [`ChaosReport`] with the raw material for the
//! conservation assertions the E15 experiment makes:
//!
//! * **no double-apply** — every logical transfer uses a unique
//!   `(drawer, recipient, amount)` triple, so a duplicate row in the
//!   transfer table is proof a retry re-applied;
//! * **no stranded locks** — after the run, instrument expiry plus one
//!   sweep must release every locked credit;
//! * **conservation** — Σ(available+locked) is the same before and
//!   after the storm.

use std::sync::Arc;

use gridbank_core::client::GridBankClient;
use gridbank_core::clock::Clock;
use gridbank_core::db::AccountId;
use gridbank_core::port::BankPort;
use gridbank_core::resilient::{Connector, ResilientBankClient};
use gridbank_core::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_net::retry::{CircuitBreaker, RetryPolicy};
use gridbank_net::transport::{Address, Network};
use gridbank_net::{FaultCounts, FaultInjector, FaultPlan, FaultRates};
use gridbank_rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_rur::units::Duration as RurDuration;
use gridbank_rur::Credits;

/// Knobs for one chaos run.
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    /// Seed for the fault plan (and derived idempotency-key streams).
    pub seed: u64,
    /// Per-mille rate applied uniformly to drop/duplicate/reorder/reset.
    pub fault_rate_pm: u32,
    /// Number of consumer identities.
    pub consumers: usize,
    /// Direct transfers each consumer attempts.
    pub transfers_per_consumer: usize,
    /// Cheque buy+redeem round trips each consumer attempts.
    pub cheques_per_consumer: usize,
    /// Bank-side dedup cache capacity; 0 disables exactly-once dedup
    /// (the "teeth" mode that must make double-applies observable).
    pub idem_capacity: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            fault_rate_pm: 200,
            consumers: 3,
            transfers_per_consumer: 4,
            cheques_per_consumer: 2,
            idem_capacity: gridbank_core::db::DEFAULT_IDEM_CAPACITY,
        }
    }
}

/// What happened during a chaos run.
#[derive(Clone, Debug, Default)]
pub struct ChaosReport {
    /// Direct transfers the consumer got a confirmation for.
    pub acked_transfers: usize,
    /// Direct transfers that exhausted their retry budget.
    pub gave_up_transfers: usize,
    /// Cheques the consumer actually received.
    pub acked_cheques: usize,
    /// Cheque requests that exhausted their retry budget.
    pub gave_up_cheques: usize,
    /// Cheque redemptions the GSP got an ack for.
    pub acked_redemptions: usize,
    /// Redemptions that exhausted their retry budget.
    pub gave_up_redemptions: usize,
    /// Operations the bank *rejected* on a retry (e.g. "already
    /// redeemed"). Always 0 with dedup enabled — the cache returns the
    /// original result instead; with `idem_capacity: 0` the retries show
    /// up here when a deeper layer (the funds guarantee) refuses them.
    pub rejected_retries: usize,
    /// Transfer rows whose `(drawer, recipient, amount)` triple appears
    /// more than once — each logical operation uses a unique triple, so
    /// anything above zero is a double-applied payment.
    pub double_applied: usize,
    /// Acked transfers with no matching row at all (lost writes).
    pub lost_writes: usize,
    /// Locked micro-credits remaining after expiry + sweep.
    pub stranded_locked_micro: i128,
    /// Σ(available+locked) before faults were armed.
    pub initial_total_micro: i128,
    /// Σ(available+locked) after the storm and the sweep.
    pub final_total_micro: i128,
    /// Faults the injector actually fired.
    pub faults: FaultCounts,
}

impl ChaosReport {
    /// Whether Σ(available+locked) survived the storm unchanged.
    pub fn conserved(&self) -> bool {
        self.initial_total_micro == self.final_total_micro
    }

    /// Total logical operations attempted.
    pub fn attempted_ops(&self) -> usize {
        self.acked_transfers
            + self.gave_up_transfers
            + self.acked_cheques
            + self.gave_up_cheques
            + self.acked_redemptions
            + self.gave_up_redemptions
    }
}

struct ChaosWorld {
    network: Network,
    ca: CertificateAuthority,
    clock: Clock,
    bank: Arc<GridBank>,
    injector: Arc<FaultInjector>,
    _server: GridBankServer,
}

fn build_world(cfg: &ChaosConfig) -> ChaosWorld {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig {
            gate_mode: GateMode::AllowEnrollment,
            signer_height: 9,
            idem_capacity: cfg.idem_capacity,
            ..GridBankConfig::default()
        },
        clock.clone(),
    ));
    let bank_identity = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 }, "bank-tls"));
    let bank_cert = ca
        .issue(
            SubjectName::new("GridBank", "Server", "gridbank"),
            bank_identity.verifying_key(),
            0,
            u64::MAX / 2,
        )
        .expect("bank cert");
    let network = Network::new();
    let injector =
        FaultInjector::new(FaultPlan::symmetric(cfg.seed, FaultRates::uniform(cfg.fault_rate_pm)));
    network.install_faults(Arc::clone(&injector));
    let server = GridBankServer::start(
        &network,
        Address::new("bank"),
        Arc::clone(&bank),
        ServerCredentials {
            certificate: bank_cert,
            identity: bank_identity,
            ca_key: ca.verifying_key(),
        },
        7,
    )
    .expect("server starts");
    ChaosWorld { network, ca, clock, bank, injector, _server: server }
}

/// A reconnecting connector for `cn`: one long-lived proxy identity
/// (MSS leaves advance across handshakes), a fresh nonce stream per
/// attempt.
fn connector_for(w: &ChaosWorld, cn: &str, seed: u64) -> Connector {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, cn);
    let dn = SubjectName::new("Org", "Unit", cn);
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).expect("cert");
    let proxy_id =
        SigningIdentity::generate_with_height(KeyMaterial { seed: seed + 5_000 }, "proxy", 9);
    let proxy =
        create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).expect("proxy");
    let network = w.network.clone();
    let ca_key = w.ca.verifying_key();
    let clock = w.clock.clone();
    let from = Address::new(format!("{cn}.host"));
    let mut attempt = 0u64;
    Box::new(move || {
        attempt += 1;
        let mut nonces = DeterministicStream::from_u64(seed ^ (attempt << 32), b"nonce");
        GridBankClient::connect(
            &network,
            from.clone(),
            &Address::new("bank"),
            ca_key,
            clock.now_ms(),
            &proxy,
            &proxy_id,
            &mut nonces,
        )
    })
}

fn resilient_for(w: &ChaosWorld, cn: &str, seed: u64) -> ResilientBankClient {
    let policy = RetryPolicy {
        base_delay_ms: 1,
        max_delay_ms: 16,
        max_attempts: 12,
        deadline_ms: 1_000_000,
        seed,
    };
    ResilientBankClient::new(connector_for(w, cn, seed), policy, w.clock.clone(), seed)
        // Cooldown 0: the virtual clock does not advance during the
        // storm, so any positive cooldown would pin an opened circuit
        // shut forever. With 0 every admit after a trip is a probe.
        .with_breaker(CircuitBreaker::new(8, 0))
        .with_call_timeout(Some(std::time::Duration::from_millis(50)))
}

/// A plain (fault-free at setup time) client for world preparation.
fn plain_client(w: &ChaosWorld, cn: &str, seed: u64) -> GridBankClient {
    let mut connect = connector_for(w, cn, seed);
    connect().expect("setup connect")
}

const GSP_CN: &str = "gsp-alpha";
const GSP_CERT: &str = "/O=Org/OU=Unit/CN=gsp-alpha";
const CHEQUE_VALIDITY_MS: u64 = 60_000;

/// Unique per-operation amount: the triple `(drawer, recipient, amount)`
/// identifies one logical payment, so duplicates in the transfer table
/// betray a double-apply.
fn op_amount(consumer: usize, op: usize) -> Credits {
    // lint:allow(money-arith) bounded literal inputs build distinct fixture amounts; cannot overflow
    Credits::from_micro(1_000_000 + (consumer as i128 + 1) * 10_000 + (op as i128 + 1))
}

/// Runs one chaos storm and reports what survived.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosReport {
    // A chaos panic is a forensic event: if the flight recorder is on,
    // its retained slow/errored traces ride along with the panic output
    // so the failing request's span tree is not lost with the process.
    gridbank_obs::install_panic_hook();
    let w = build_world(cfg);
    let mut report = ChaosReport::default();

    // ---- Setup on a quiet network: accounts and deposits. ----
    let mut consumer_accounts = Vec::new();
    for i in 0..cfg.consumers {
        let mut c = plain_client(&w, &format!("consumer-{i}"), 100 + i as u64);
        consumer_accounts.push(c.create_account(Some("Org".into())).expect("account"));
    }
    let mut gsp_setup = plain_client(&w, GSP_CN, 500);
    let gsp_account = gsp_setup.create_account(None).expect("gsp account");
    let mut admin = admin_client(&w);
    for account in &consumer_accounts {
        admin.admin_deposit(*account, Credits::from_gd(1_000)).expect("deposit");
    }
    report.initial_total_micro = w.bank.total_funds().micro();

    // ---- Storm. ----
    w.injector.arm(true);
    let mut acked_amounts: Vec<Credits> = Vec::new();
    for (i, _account) in consumer_accounts.iter().enumerate() {
        let mut consumer = resilient_for(&w, &format!("consumer-{i}"), 0x5EED ^ ((i as u64) << 8));
        // One GSP client per consumer; distinct key seeds keep their
        // idempotency keys from colliding under the shared GSP cert.
        let mut gsp = resilient_for(&w, GSP_CN, 0x6500_0000 ^ ((i as u64) << 8));
        for j in 0..cfg.transfers_per_consumer {
            let amount = op_amount(i, j);
            match consumer.direct_transfer(gsp_account, amount, "gsp.grid.org") {
                Ok(_) => {
                    report.acked_transfers += 1;
                    acked_amounts.push(amount);
                }
                Err(gridbank_core::BankError::Net(_)) => report.gave_up_transfers += 1,
                Err(e) if cfg.idem_capacity == 0 => {
                    let _ = e;
                    report.rejected_retries += 1;
                }
                Err(e) => panic!("unexpected transfer failure: {e}"),
            }
        }
        for j in 0..cfg.cheques_per_consumer {
            // Charge == cheque value, and unique per (consumer, op):
            // redemption moves the whole reservation, and the resulting
            // transfer row is unique for double-apply detection.
            let amount = op_amount(i, 100 + j);
            let cheque = match consumer.request_cheque(GSP_CERT, amount, CHEQUE_VALIDITY_MS) {
                Ok(c) => {
                    report.acked_cheques += 1;
                    c
                }
                Err(gridbank_core::BankError::Net(_)) => {
                    report.gave_up_cheques += 1;
                    continue;
                }
                Err(e) if cfg.idem_capacity == 0 => {
                    let _ = e;
                    report.rejected_retries += 1;
                    continue;
                }
                Err(e) => panic!("unexpected cheque failure: {e}"),
            };
            let rur = RurBuilder::default()
                .user(format!("consumer-{i}.host"), format!("/O=Org/OU=Unit/CN=consumer-{i}"))
                .job(format!("job-{i}-{j}"), "chaos", 0, 3_600_000)
                .resource("r1", GSP_CERT, None, 1)
                .line(ChargeableItem::Cpu, UsageAmount::Time(RurDuration::from_hours(1)), amount)
                .build()
                .expect("rur");
            match gsp.redeem_cheque(cheque, rur) {
                Ok((paid, _released)) => {
                    report.acked_redemptions += 1;
                    acked_amounts.push(paid);
                }
                Err(gridbank_core::BankError::Net(_)) => report.gave_up_redemptions += 1,
                Err(e) if cfg.idem_capacity == 0 => {
                    // Without the dedup cache a retried redemption gets
                    // "already redeemed" from the guarantee layer.
                    let _ = e;
                    report.rejected_retries += 1;
                }
                Err(e) => panic!("unexpected redemption failure: {e}"),
            }
        }
    }
    w.injector.arm(false);
    report.faults = w.injector.counts();

    // ---- Settle: expire unredeemed instruments, release locks. ----
    w.clock.advance(CHEQUE_VALIDITY_MS * 2);
    w.bank.sweep_expired_instruments();

    // ---- Evidence. ----
    let transfers = w.bank.all_transfers();
    let mut seen: std::collections::HashMap<(AccountId, AccountId, i128), usize> =
        std::collections::HashMap::new();
    for t in &transfers {
        // lint:allow(money-arith) increments a usize occurrence counter; .micro() is only a map key
        *seen.entry((t.drawer, t.recipient, t.amount.micro())).or_default() += 1;
    }
    report.double_applied = seen.values().filter(|&&n| n > 1).map(|n| n - 1).sum();
    for amount in &acked_amounts {
        let present = transfers.iter().any(|t| t.amount == *amount);
        if !present {
            report.lost_writes += 1;
        }
    }
    report.stranded_locked_micro =
        w.bank.all_accounts().iter().map(|a| a.locked.micro()).sum::<i128>();
    report.final_total_micro = w.bank.total_funds().micro();
    report
}

fn admin_client(w: &ChaosWorld) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed: 999 }, "operator");
    let dn = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).expect("admin cert");
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 998 }, "proxy");
    let proxy =
        create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).expect("proxy");
    let mut nonces = DeterministicStream::from_u64(997, b"nonce");
    GridBankClient::connect(
        &w.network,
        Address::new("ops.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("admin connects")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_network_applies_everything_exactly_once() {
        // Rate 0: the harness itself must be loss-free and conserving.
        let cfg = ChaosConfig {
            fault_rate_pm: 0,
            consumers: 1,
            transfers_per_consumer: 2,
            cheques_per_consumer: 1,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        assert_eq!(report.acked_transfers, 2);
        assert_eq!(report.acked_cheques, 1);
        assert_eq!(report.acked_redemptions, 1);
        assert_eq!(report.double_applied, 0);
        assert_eq!(report.lost_writes, 0);
        assert_eq!(report.stranded_locked_micro, 0);
        assert!(report.conserved());
        assert_eq!(report.faults.total(), 0);
    }
}
