//! Restart-to-serving drill: a live durable branch is killed and
//! rebooted, and the clock runs until a wire client gets answers again.
//!
//! The scenario measures the claim docs/STORAGE.md §5 makes — restart
//! time is bounded by the journal *tail*, not by history. One full
//! [`GridBankServer`] stack runs over the in-process network with its
//! database in durable mode ([`GridBank::open_durable`]); seeded keyed
//! payments flow through a real authenticated client; the shards are
//! checkpointed; a further slice of payments forms the replay tail; the
//! process state is dropped (the kill); and a fresh stack reopens the
//! same store directory. The report carries both halves of the restart
//! cost — storage recovery and server boot to first served RPC — plus
//! the digest/conservation evidence that nothing was lost, feeding the
//! `gridbank-bench --recovery` section and EXPERIMENTS.md §E19.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use gridbank_core::api::{BankRequest, BankResponse};
use gridbank_core::clock::Clock;
use gridbank_core::db::AccountId;
use gridbank_core::resilient::{Connector, ResilientBankClient};
use gridbank_core::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_core::store::StoreConfig;
use gridbank_crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_net::retry::RetryPolicy;
use gridbank_net::transport::{Address, Network};
use gridbank_rur::Credits;

const OPERATOR: &str = "/O=GridBank/OU=Admin/CN=operator";

/// Parameters of the recovery drill.
#[derive(Clone, Debug)]
pub struct RecoveryConfig {
    /// Master seed for identities and keys.
    pub seed: u64,
    /// Accounts created before the kill.
    pub accounts: usize,
    /// Keyed wire payments before the checkpoint.
    pub payments: usize,
    /// Keyed wire payments *after* the checkpoint — the replay tail a
    /// restart must work through.
    pub tail_payments: usize,
    /// Store root; the caller owns creation/cleanup.
    pub store_dir: PathBuf,
    /// `fsync` on commit (the production durability contract).
    pub fsync: bool,
    /// Bank signer height (2^h signed instruments).
    pub signer_height: usize,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            seed: 0xD15C_0001,
            accounts: 200,
            payments: 60,
            tail_payments: 20,
            store_dir: std::env::temp_dir().join("gridbank-recovery-sim"),
            fsync: false,
            signer_height: 9,
        }
    }
}

/// Evidence from one kill/restart cycle.
#[derive(Clone, Debug, Default)]
pub struct RecoveryDrillReport {
    /// Accounts alive at the kill.
    pub accounts: usize,
    /// Journal entries committed across the whole run.
    pub journal_entries_total: usize,
    /// Entries the restart actually replayed (past the snapshots).
    pub tail_entries_replayed: usize,
    /// Shards restored from a snapshot file.
    pub snapshots_loaded: usize,
    /// Storage recovery alone: open store → state folded, ms.
    pub recovery_ms: u64,
    /// Kill → first answered RPC over the wire, ms.
    pub restart_to_serving_ms: u64,
    /// State digest identical before the kill and after recovery.
    pub digest_match: bool,
    /// Σ funds identical before the kill and after recovery.
    pub funds_match: bool,
}

impl RecoveryDrillReport {
    /// Hard pass/fail: nothing lost, and replay was tail-only.
    pub fn verify(&self) -> Result<(), String> {
        if !self.digest_match {
            return Err("state digest diverged across the restart".into());
        }
        if !self.funds_match {
            return Err("conservation violated across the restart".into());
        }
        if self.snapshots_loaded == 0 {
            return Err("no shard recovered from a snapshot".into());
        }
        if self.tail_entries_replayed >= self.journal_entries_total {
            return Err(format!(
                "replay was not tail-only: {} of {} entries replayed",
                self.tail_entries_replayed, self.journal_entries_total
            ));
        }
        Ok(())
    }
}

struct World {
    network: Network,
    clock: Clock,
    ca: CertificateAuthority,
    server: GridBankServer,
    bank: Arc<GridBank>,
}

fn bank_config(signer_height: usize) -> GridBankConfig {
    GridBankConfig {
        signer_height,
        gate_mode: GateMode::AllowEnrollment,
        key_material: KeyMaterial { seed: 0xD15C },
        ..GridBankConfig::default()
    }
}

fn store_config(cfg: &RecoveryConfig) -> StoreConfig {
    let base = StoreConfig::at(&cfg.store_dir);
    StoreConfig {
        // Tests drive checkpoints explicitly so the tail is exact.
        snapshot_every: u64::MAX,
        ..if cfg.fsync { base } else { base.no_fsync() }
    }
}

/// Boots the full stack over `network`, opening (or reopening) the
/// durable store. Returns the world and the recovery evidence.
fn boot(
    network: Network,
    clock: Clock,
    cfg: &RecoveryConfig,
) -> Result<(World, gridbank_core::store::RecoveryReport), String> {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate(KeyMaterial { seed: 1 }, "ca"),
    );
    let (bank, report) =
        GridBank::open_durable(bank_config(cfg.signer_height), clock.clone(), store_config(cfg))
            .map_err(|e| e.to_string())?;
    let bank = Arc::new(bank);
    let tls = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 100 }, "tls"));
    let cert = ca
        .issue(
            SubjectName::new("GridBank", "Server", "branch-0001"),
            tls.verifying_key(),
            0,
            u64::MAX / 2,
        )
        .map_err(|e| e.to_string())?;
    let server = GridBankServer::start(
        &network,
        Address::new("branch-1"),
        Arc::clone(&bank),
        ServerCredentials { certificate: cert, identity: tls, ca_key: ca.verifying_key() },
        cfg.seed,
    )
    .map_err(|e| e.to_string())?;
    Ok((World { network, clock, ca, server, bank }, report))
}

/// A resilient client for `dn`, reconnecting through the full handshake
/// on every transport failure — the probe for "serving again".
fn resilient_client(world: &World, dn: SubjectName, seed: u64) -> ResilientBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, "payer");
    let cert = world
        .ca
        .issue(dn, id.verifying_key(), 0, u64::MAX / 2)
        .expect("CA issues the payer certificate");
    let (network, clock, ca_key) =
        (world.network.clone(), world.clock.clone(), world.ca.verifying_key());
    let mut attempt = 0u64;
    let connector: Connector = Box::new(move || {
        attempt += 1;
        let id = SigningIdentity::generate_small(KeyMaterial { seed }, "payer");
        let proxy_id =
            SigningIdentity::generate_small(KeyMaterial { seed: seed + 7_000 + attempt }, "proxy");
        let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)?;
        let mut nonces = DeterministicStream::from_u64(seed ^ attempt, b"recovery-nonce");
        gridbank_core::client::GridBankClient::connect(
            &network,
            Address::new(format!("payer-{seed}-{attempt}")),
            &Address::new("branch-1"),
            ca_key,
            clock.now_ms(),
            &proxy,
            &proxy_id,
            &mut nonces,
        )
    });
    let policy = RetryPolicy {
        base_delay_ms: 1,
        max_delay_ms: 8,
        max_attempts: 6,
        deadline_ms: 30_000,
        seed,
    };
    ResilientBankClient::new(connector, policy, world.clock.clone(), seed)
}

/// Runs the drill: populate → pay → checkpoint → tail → kill →
/// reboot → probe until serving.
pub fn run_recovery(cfg: &RecoveryConfig) -> Result<RecoveryDrillReport, String> {
    let _ = std::fs::remove_dir_all(&cfg.store_dir);
    let network = Network::new();
    let clock = Clock::new();
    let (world, _) = boot(network.clone(), clock.clone(), cfg)?;

    // Population + funding, server-side (the wire carries payments;
    // enrollment volume is not what this drill measures).
    let operator = SubjectName(OPERATOR.into());
    let mut holders: Vec<(SubjectName, AccountId)> = Vec::with_capacity(cfg.accounts);
    for i in 0..cfg.accounts {
        let dn = SubjectName(format!("/O=Grid/OU=Pop/CN=holder-{i:06}"));
        let account =
            match world.bank.handle(&dn, BankRequest::CreateAccount { organization: None }) {
                BankResponse::AccountCreated { account } => account,
                other => return Err(format!("create holder {i}: {other:?}")),
            };
        world.bank.handle(
            &operator,
            BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) },
        );
        holders.push((dn, account));
    }

    // Keyed payments over the real wire.
    let payer_dn = SubjectName("/O=Grid/OU=Payer/CN=payer-0".into());
    let mut payer = resilient_client(&world, payer_dn.clone(), cfg.seed);
    let payer_account = match payer.call(&BankRequest::CreateAccount { organization: None }) {
        Ok(BankResponse::AccountCreated { account }) => account,
        other => return Err(format!("create payer: {other:?}")),
    };
    world.bank.handle(
        &operator,
        BankRequest::AdminDeposit { account: payer_account, amount: Credits::from_gd(1_000_000) },
    );
    let pay = |payer: &mut ResilientBankClient, n: usize, salt: u64| -> Result<(), String> {
        for k in 0..n {
            let to = holders[(k.wrapping_mul(31).wrapping_add(salt as usize)) % holders.len()].1;
            match payer.call(&BankRequest::DirectTransfer {
                to,
                amount: Credits::from_gd(1),
                recipient_address: format!("holder-{k}.grid.org"),
            }) {
                Ok(BankResponse::Confirmed(_)) | Ok(BankResponse::Confirmation { .. }) => {}
                other => return Err(format!("payment {k}: {other:?}")),
            }
        }
        Ok(())
    };
    pay(&mut payer, cfg.payments, 1)?;

    // Checkpoint, then the tail the restart will have to replay.
    world.bank.accounts.db().checkpoint().map_err(|e| e.to_string())?;
    pay(&mut payer, cfg.tail_payments, 2)?;

    let digest = world.bank.accounts.db().state_digest();
    let funds = world.bank.total_funds();
    let journal_entries_total = world.bank.journal_snapshot().len();
    let accounts = world.bank.accounts.db().account_count();

    // The kill: tear the server down and drop every in-memory handle.
    let World { mut server, bank, .. } = world;
    server.shutdown();
    drop(server);
    drop(bank);
    drop(payer);

    // Reboot from disk and probe until the wire answers again.
    let restart_started = Instant::now();
    let (world, recovery) = boot(network, clock, cfg)?;
    let mut probe = resilient_client(&world, payer_dn, cfg.seed.wrapping_add(99));
    probe.await_serving(64).map_err(|e| format!("never served again: {e}"))?;
    let restart_to_serving_ms = restart_started.elapsed().as_millis() as u64;

    let report = RecoveryDrillReport {
        accounts,
        journal_entries_total,
        tail_entries_replayed: recovery.tail_entries_replayed,
        snapshots_loaded: recovery.snapshots_loaded,
        recovery_ms: recovery.elapsed_ms,
        restart_to_serving_ms,
        digest_match: world.bank.accounts.db().state_digest() == digest,
        funds_match: world.bank.total_funds() == funds,
    };
    let _ = std::fs::remove_dir_all(&cfg.store_dir);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovery_drill_round_trips() {
        let cfg = RecoveryConfig {
            accounts: 40,
            payments: 12,
            tail_payments: 5,
            store_dir: std::env::temp_dir()
                .join(format!("gridbank-recovery-drill-{}", std::process::id())),
            ..RecoveryConfig::default()
        };
        let report = run_recovery(&cfg).expect("drill runs");
        report.verify().expect("evidence holds");
        assert!(report.tail_entries_replayed > 0, "the tail payments left a tail");
        assert_eq!(report.accounts, 40 + 1, "holders plus the wire payer");
    }
}
