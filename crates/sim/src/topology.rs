//! Grid topology construction.
//!
//! Builds a heterogeneous grid around one GridBank: providers with
//! seeded-random speeds, prices, core counts and OS flavours, plus the
//! market directory entries brokers discover them through.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_core::clock::Clock;
use gridbank_core::port::{BankPort, InProcessBank};
use gridbank_core::server::{GridBank, GridBankConfig};
use gridbank_crypto::cert::SubjectName;
use gridbank_gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_meter::levels::AccountingLevel;
use gridbank_meter::machine::{MachineSpec, OsFlavour};
use gridbank_rur::record::ChargeableItem;
use gridbank_rur::Credits;
use gridbank_trade::directory::MarketDirectory;
use gridbank_trade::pricing::{FlatPricing, PricingPolicy, SupplyDemandPricing};
use gridbank_trade::rates::ServiceRates;

use crate::scenario::GridScenario;

/// Topology parameters.
#[derive(Clone, Debug)]
pub struct TopologyConfig {
    /// Master seed.
    pub seed: u64,
    /// Number of providers.
    pub providers: usize,
    /// Machines per provider.
    pub machines_per_provider: usize,
    /// Per-core speed range (work units/ms).
    pub speed_range: (u32, u32),
    /// CPU price range in milli-G$ per hour.
    pub cpu_price_milli_range: (i64, i64),
    /// Cores per machine.
    pub cores: u32,
    /// Template pool size per provider.
    pub pool_size: usize,
    /// Use supply/demand pricing instead of flat posted prices.
    pub dynamic_pricing: bool,
    /// Bank signer height (2^h instruments).
    pub signer_height: usize,
    /// When set, CPU price is `speed × this` milli-G$ per hour instead of
    /// a random draw — the co-operative model's community valuation rule
    /// (§4.1: allocation "depends on the value of the resource"), which
    /// makes equal work cost equal value on any machine.
    pub price_milli_per_speed_unit: Option<i64>,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            seed: 0x6B1D,
            providers: 4,
            machines_per_provider: 2,
            speed_range: (100, 400),
            cpu_price_milli_range: (500, 4_000),
            cores: 4,
            pool_size: 8,
            dynamic_pricing: false,
            signer_height: 12,
            price_milli_per_speed_unit: None,
        }
    }
}

const OS_CYCLE: [OsFlavour; 3] = [OsFlavour::Linux, OsFlavour::Solaris, OsFlavour::Cray];

/// Builds the grid: bank + providers + directory.
pub fn build_grid(config: &TopologyConfig) -> GridScenario {
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig { signer_height: config.signer_height, ..GridBankConfig::default() },
        clock.clone(),
    ));
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut providers = Vec::with_capacity(config.providers);
    let mut directory = MarketDirectory::new();

    for p in 0..config.providers {
        let cert = format!("/O=Grid/OU=GSP/CN=gsp-{p:02}");
        let subject = SubjectName(cert.clone());
        let mut port = InProcessBank::new(bank.clone(), subject.clone());
        port.create_account(Some("Grid".into())).expect("fresh cert");

        let speed = rng.random_range(config.speed_range.0..=config.speed_range.1);
        let price_milli = match config.price_milli_per_speed_unit {
            Some(k) => speed as i64 * k,
            None => {
                rng.random_range(config.cpu_price_milli_range.0..=config.cpu_price_milli_range.1)
            }
        };
        let os = OS_CYCLE[p % OS_CYCLE.len()];
        let machines = (0..config.machines_per_provider)
            .map(|m| MachineSpec {
                host: format!("gsp-{p:02}-node-{m}"),
                os,
                speed,
                cores: config.cores,
                memory_mb: 16_384,
            })
            .collect();
        let base_rates = ServiceRates::new()
            .with(ChargeableItem::Cpu, Credits::from_milli(price_milli))
            .with(ChargeableItem::Memory, Credits::from_micro(1_000))
            .with(ChargeableItem::Network, Credits::from_micro(2_000));
        let pricing: Box<dyn PricingPolicy> = if config.dynamic_pricing {
            Box::new(SupplyDemandPricing::default())
        } else {
            Box::new(FlatPricing)
        };
        let provider = GridServiceProvider::new(
            GspConfig {
                cert,
                host: format!("gsp-{p:02}.grid.org"),
                machines,
                base_rates,
                pool_size: config.pool_size,
                accounting_level: AccountingLevel::Standard,
                machine_seed: config.seed.wrapping_add(1000 + p as u64),
            },
            bank.verifying_key(),
            port,
            pricing,
        );
        directory.register(provider.advertisement());
        providers.push(provider);
    }

    GridScenario {
        clock,
        bank,
        providers,
        directory,
        admin: SubjectName("/O=GridBank/OU=Admin/CN=operator".into()),
        seed: config.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shape() {
        let config = TopologyConfig {
            providers: 5,
            machines_per_provider: 3,
            signer_height: 5,
            ..TopologyConfig::default()
        };
        let grid = build_grid(&config);
        assert_eq!(grid.providers.len(), 5);
        assert_eq!(grid.directory.all().len(), 5);
        for p in &grid.providers {
            assert_eq!(p.machine_count(), 3);
            assert_eq!(p.pool.size(), 8);
        }
        // Every provider has a bank account (gate would admit them).
        for p in 0..5 {
            assert!(grid
                .bank
                .accounts
                .account_by_cert(&format!("/O=Grid/OU=GSP/CN=gsp-{p:02}"))
                .is_ok());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let config = TopologyConfig { signer_height: 5, ..TopologyConfig::default() };
        let a = build_grid(&config);
        let b = build_grid(&config);
        for (pa, pb) in a.providers.iter().zip(&b.providers) {
            assert_eq!(pa.advertisement().cpu_speed, pb.advertisement().cpu_speed);
            assert_eq!(
                pa.advertisement().rates.price(ChargeableItem::Cpu),
                pb.advertisement().rates.price(ChargeableItem::Cpu)
            );
        }
    }

    #[test]
    fn os_flavours_cycle() {
        let config = TopologyConfig { providers: 3, signer_height: 5, ..TopologyConfig::default() };
        let grid = build_grid(&config);
        let types: Vec<String> =
            grid.providers.iter().map(|p| p.advertisement().host_type).collect();
        assert_eq!(types, vec!["Linux/x86", "Solaris/sparc", "Cray"]);
    }
}
