//! Discrete-event simulation core.
//!
//! Events are `FnOnce(&mut W, &mut Scheduler)` closures ordered by
//! `(time, sequence)`, so same-time events fire in scheduling order and
//! runs are bit-for-bit reproducible. Handlers receive a [`Scheduler`]
//! (not the simulator itself) to enqueue follow-up events; the buffer is
//! drained after each handler returns, sidestepping borrow conflicts
//! without interior mutability.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event handler over world state `W`.
pub type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Scheduler<W>)>;

struct Scheduled<W> {
    at_ms: u64,
    seq: u64,
    handler: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        (self.at_ms, self.seq) == (other.at_ms, other.seq)
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at_ms, self.seq).cmp(&(other.at_ms, other.seq))
    }
}

/// The deferred-scheduling handle handlers receive.
pub struct Scheduler<W> {
    now_ms: u64,
    buffered: Vec<(u64, EventFn<W>)>,
}

impl<W> Scheduler<W> {
    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Schedules a handler at absolute time `at_ms` (clamped to now).
    pub fn at(&mut self, at_ms: u64, handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static) {
        self.buffered.push((at_ms.max(self.now_ms), Box::new(handler)));
    }

    /// Schedules a handler `delay_ms` from now.
    pub fn after(
        &mut self,
        delay_ms: u64,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        self.at(self.now_ms.saturating_add(delay_ms), handler);
    }
}

/// The simulator: queue + clock over a world `W`.
pub struct Simulator<W> {
    queue: BinaryHeap<Reverse<Scheduled<W>>>,
    now_ms: u64,
    seq: u64,
    events_processed: u64,
}

impl<W> Default for Simulator<W> {
    fn default() -> Self {
        Simulator { queue: BinaryHeap::new(), now_ms: 0, seq: 0, events_processed: 0 }
    }
}

impl<W> Simulator<W> {
    /// A fresh simulator at t=0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// Events executed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Pending event count.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules a handler at absolute virtual time.
    pub fn schedule_at(
        &mut self,
        at_ms: u64,
        handler: impl FnOnce(&mut W, &mut Scheduler<W>) + 'static,
    ) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at_ms: at_ms.max(self.now_ms),
            seq,
            handler: Box::new(handler),
        }));
    }

    /// Runs events until the queue drains or `until_ms` is passed;
    /// returns the number of events executed. Events scheduled beyond
    /// `until_ms` remain queued.
    pub fn run_until(&mut self, world: &mut W, until_ms: u64) -> u64 {
        let mut ran = 0;
        while let Some(Reverse(head)) = self.queue.peek() {
            if head.at_ms > until_ms {
                break;
            }
            let Reverse(event) = self.queue.pop().expect("peeked");
            self.now_ms = self.now_ms.max(event.at_ms);
            let mut scheduler = Scheduler { now_ms: self.now_ms, buffered: Vec::new() };
            (event.handler)(world, &mut scheduler);
            for (at, h) in scheduler.buffered {
                let seq = self.seq;
                self.seq += 1;
                self.queue.push(Reverse(Scheduled { at_ms: at.max(self.now_ms), seq, handler: h }));
            }
            ran += 1;
            self.events_processed += 1;
        }
        // Advance the clock to a finite horizon if we drained early, so
        // repeated run_until calls see time progress; an unbounded run
        // leaves the clock at the last event.
        if self.queue.is_empty() && until_ms != u64::MAX {
            self.now_ms = self.now_ms.max(until_ms);
        }
        ran
    }

    /// Runs to queue exhaustion.
    pub fn run(&mut self, world: &mut W) -> u64 {
        self.run_until(world, u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulator::new();
        let mut world: Vec<(u64, &str)> = Vec::new();
        sim.schedule_at(30, |w: &mut Vec<(u64, &str)>, s| w.push((s.now_ms(), "c")));
        sim.schedule_at(10, |w, s| w.push((s.now_ms(), "a")));
        sim.schedule_at(20, |w, s| w.push((s.now_ms(), "b")));
        assert_eq!(sim.run(&mut world), 3);
        assert_eq!(world, vec![(10, "a"), (20, "b"), (30, "c")]);
        assert_eq!(sim.now_ms(), 30);
    }

    #[test]
    fn same_time_events_fire_in_schedule_order() {
        let mut sim = Simulator::new();
        let mut world = Vec::new();
        for i in 0..10 {
            sim.schedule_at(5, move |w: &mut Vec<usize>, _s| w.push(i));
        }
        sim.run(&mut world);
        assert_eq!(world, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_followups() {
        let mut sim = Simulator::new();
        let mut world = Vec::new();
        sim.schedule_at(0, |w: &mut Vec<u64>, s| {
            w.push(s.now_ms());
            s.after(100, |w, s| {
                w.push(s.now_ms());
                s.after(100, |w, s| w.push(s.now_ms()));
            });
        });
        sim.run(&mut world);
        assert_eq!(world, vec![0, 100, 200]);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn run_until_stops_at_horizon() {
        let mut sim = Simulator::new();
        let mut world = Vec::new();
        for t in [10u64, 20, 30, 40] {
            sim.schedule_at(t, move |w: &mut Vec<u64>, _s| w.push(t));
        }
        assert_eq!(sim.run_until(&mut world, 25), 2);
        assert_eq!(world, vec![10, 20]);
        assert_eq!(sim.pending(), 2);
        assert_eq!(sim.run_until(&mut world, 100), 2);
        assert_eq!(world, vec![10, 20, 30, 40]);
    }

    #[test]
    fn past_times_clamp_to_now() {
        let mut sim = Simulator::new();
        let mut world = Vec::new();
        sim.schedule_at(50, |w: &mut Vec<u64>, s| {
            // Tries to schedule in the past; fires immediately at now.
            s.at(1, |w, s| w.push(s.now_ms()));
            w.push(s.now_ms());
        });
        sim.run(&mut world);
        assert_eq!(world, vec![50, 50]);
    }
}
