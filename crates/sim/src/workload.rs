//! Seeded workload generation.
//!
//! Grid workloads are bursts of parameterized tasks arriving over time.
//! [`WorkloadConfig`] draws Poisson arrivals (exponential inter-arrival
//! times) and task sizes from a chosen distribution, all from one seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_meter::machine::JobSpec;

/// Task-size distributions.
#[derive(Clone, Copy, Debug)]
pub enum JobSizeDistribution {
    /// Every task has exactly this much work.
    Constant(u64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (work units).
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Heavy-tailed: `base × 2^k` where `k` is geometric with the given
    /// continuation probability in percent (a few huge jobs dominate —
    /// typical of grid traces).
    HeavyTailed {
        /// Base work units.
        base: u64,
        /// Probability (percent) of doubling again, 0..100.
        continue_pct: u8,
    },
}

/// One generated arrival.
#[derive(Clone, Debug)]
pub struct WorkloadEvent {
    /// Arrival time, virtual ms.
    pub arrival_ms: u64,
    /// Consumer index the task belongs to.
    pub consumer: usize,
    /// The task.
    pub job: JobSpec,
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of tasks to generate.
    pub count: usize,
    /// Number of consumers tasks round-robin over.
    pub consumers: usize,
    /// Mean inter-arrival gap in ms (Poisson process).
    pub mean_interarrival_ms: u64,
    /// Size distribution.
    pub sizes: JobSizeDistribution,
    /// Memory footprint per task, MB.
    pub memory_mb: u64,
    /// Network traffic per task, MB.
    pub network_mb: u64,
}

impl WorkloadConfig {
    /// Generates the workload, sorted by arrival time.
    pub fn generate(&self) -> Vec<WorkloadEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::with_capacity(self.count);
        let mut t = 0u64;
        for i in 0..self.count {
            // Exponential inter-arrival via inverse transform.
            let u: f64 = rng.random_range(1e-12..1.0);
            let gap = (-u.ln() * self.mean_interarrival_ms as f64) as u64;
            t = t.saturating_add(gap.max(1));
            let work = match self.sizes {
                JobSizeDistribution::Constant(w) => w,
                JobSizeDistribution::Uniform { lo, hi } => rng.random_range(lo..=hi.max(lo)),
                JobSizeDistribution::HeavyTailed { base, continue_pct } => {
                    let mut w = base;
                    while rng.random_range(0..100u8) < continue_pct && w < u64::MAX / 4 {
                        w *= 2;
                    }
                    w
                }
            };
            events.push(WorkloadEvent {
                arrival_ms: t,
                consumer: i % self.consumers.max(1),
                job: JobSpec {
                    work,
                    parallelism: 1,
                    memory_mb: self.memory_mb,
                    storage_mb: 0,
                    network_mb: self.network_mb,
                    sys_pct: 5,
                },
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(sizes: JobSizeDistribution) -> WorkloadConfig {
        WorkloadConfig {
            seed: 42,
            count: 500,
            consumers: 4,
            mean_interarrival_ms: 100,
            sizes,
            memory_mb: 64,
            network_mb: 1,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = config(JobSizeDistribution::Uniform { lo: 10, hi: 100 });
        let a = c.generate();
        let b = c.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.job.work, y.job.work);
        }
        let mut c2 = c.clone();
        c2.seed = 43;
        let d = c2.generate();
        assert!(a.iter().zip(&d).any(|(x, y)| x.arrival_ms != y.arrival_ms));
    }

    #[test]
    fn arrivals_are_monotone_and_mean_is_plausible() {
        let c = config(JobSizeDistribution::Constant(5));
        let events = c.generate();
        assert_eq!(events.len(), 500);
        for w in events.windows(2) {
            assert!(w[0].arrival_ms <= w[1].arrival_ms);
        }
        // Mean inter-arrival within 3x of configured (loose sanity bound).
        let span = events.last().unwrap().arrival_ms as f64;
        let mean_gap = span / events.len() as f64;
        assert!(mean_gap > 30.0 && mean_gap < 300.0, "mean gap {mean_gap}");
    }

    #[test]
    fn consumers_round_robin() {
        let c = config(JobSizeDistribution::Constant(5));
        let events = c.generate();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.consumer, i % 4);
        }
    }

    #[test]
    fn uniform_sizes_stay_in_range() {
        let c = config(JobSizeDistribution::Uniform { lo: 10, hi: 100 });
        for e in c.generate() {
            assert!((10..=100).contains(&e.job.work));
        }
    }

    #[test]
    fn heavy_tail_produces_spread() {
        let c = config(JobSizeDistribution::HeavyTailed { base: 100, continue_pct: 50 });
        let events = c.generate();
        let min = events.iter().map(|e| e.job.work).min().unwrap();
        let max = events.iter().map(|e| e.job.work).max().unwrap();
        assert_eq!(min, 100);
        assert!(max >= 1_600, "expected a heavy tail, max {max}");
    }
}
