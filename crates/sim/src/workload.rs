//! Seeded workload generation.
//!
//! Grid workloads are bursts of parameterized tasks arriving over time.
//! [`WorkloadConfig`] draws Poisson arrivals (exponential inter-arrival
//! times) and task sizes from a chosen distribution, all from one seed.
//! Two market-shaped refinements layer on top:
//!
//! * [`DiurnalCurve`] — a day/night intensity cycle modulating the
//!   Poisson rate, so arrivals cluster into rush hours the way real
//!   grid traces do;
//! * [`ZipfSampler`] — a power-law popularity distribution over a
//!   population, so a small hot set of accounts receives most of the
//!   traffic (the contention shape that stresses per-account locks).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_meter::machine::JobSpec;

/// Task-size distributions.
#[derive(Clone, Copy, Debug)]
pub enum JobSizeDistribution {
    /// Every task has exactly this much work.
    Constant(u64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        /// Lower bound (work units).
        lo: u64,
        /// Upper bound.
        hi: u64,
    },
    /// Heavy-tailed: `base × 2^k` where `k` is geometric with the given
    /// continuation probability in percent (a few huge jobs dominate —
    /// typical of grid traces).
    HeavyTailed {
        /// Base work units.
        base: u64,
        /// Probability (percent) of doubling again, 0..100.
        continue_pct: u8,
    },
}

/// A day/night cycle modulating Poisson arrival intensity.
///
/// Intensity follows a raised cosine over one period: it peaks at the
/// middle of the "day" (multiplier 1) and bottoms out at
/// `trough_pct`/100 at "midnight". The generator divides the drawn
/// exponential gap by the intensity at the current virtual time, so
/// rush hours pack arrivals tighter and quiet hours stretch them out —
/// all still from the one seed.
#[derive(Clone, Copy, Debug)]
pub struct DiurnalCurve {
    /// Length of one day, virtual ms.
    pub period_ms: u64,
    /// Night-time intensity as a percentage of the peak, 1..=100.
    pub trough_pct: u32,
}

impl DiurnalCurve {
    /// Arrival-intensity multiplier at virtual time `t`, in `(0, 1]`.
    pub fn intensity(&self, t_ms: u64) -> f64 {
        let period = self.period_ms.max(1);
        let phase = (t_ms % period) as f64 / period as f64;
        let trough = (self.trough_pct.clamp(1, 100)) as f64 / 100.0;
        // Raised cosine: 0 at phase 0 (midnight), 1 at phase 0.5 (noon).
        let day = 0.5 - 0.5 * (2.0 * std::f64::consts::PI * phase).cos();
        trough + (1.0 - trough) * day
    }
}

/// A Zipf (power-law) sampler over `0..population`.
///
/// Rank `k` (0-based) is drawn with probability proportional to
/// `1 / (k+1)^s`. The cumulative weights are precomputed once, so each
/// sample is one uniform draw plus a binary search — cheap enough for
/// 100k-account populations. Exponent `s ≈ 1` matches classic
/// popularity skew: the hottest few accounts absorb most of the
/// traffic.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `population` ranks with exponent
    /// `s = s_permille / 1000` (e.g. `1000` for the classic `s = 1`).
    pub fn new(population: usize, s_permille: u32) -> Self {
        let n = population.max(1);
        let s = s_permille as f64 / 1000.0;
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(total);
        }
        ZipfSampler { cumulative }
    }

    /// Number of ranks.
    pub fn population(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one rank in `0..population` (0 is the hottest).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().unwrap_or(&1.0);
        let u: f64 = rng.random_range(0.0..total);
        self.cumulative.partition_point(|&c| c <= u).min(self.cumulative.len() - 1)
    }
}

/// One generated arrival.
#[derive(Clone, Debug)]
pub struct WorkloadEvent {
    /// Arrival time, virtual ms.
    pub arrival_ms: u64,
    /// Consumer index the task belongs to.
    pub consumer: usize,
    /// The task.
    pub job: JobSpec,
}

/// Workload generation parameters.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Number of tasks to generate.
    pub count: usize,
    /// Number of consumers tasks round-robin over.
    pub consumers: usize,
    /// Mean inter-arrival gap in ms (Poisson process).
    pub mean_interarrival_ms: u64,
    /// Size distribution.
    pub sizes: JobSizeDistribution,
    /// Memory footprint per task, MB.
    pub memory_mb: u64,
    /// Network traffic per task, MB.
    pub network_mb: u64,
    /// Optional day/night cycle modulating the Poisson rate.
    pub diurnal: Option<DiurnalCurve>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 1,
            count: 100,
            consumers: 4,
            mean_interarrival_ms: 100,
            sizes: JobSizeDistribution::Constant(10),
            memory_mb: 64,
            network_mb: 1,
            diurnal: None,
        }
    }
}

impl WorkloadConfig {
    /// Generates the workload, sorted by arrival time.
    pub fn generate(&self) -> Vec<WorkloadEvent> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut events = Vec::with_capacity(self.count);
        let mut t = 0u64;
        for i in 0..self.count {
            // Exponential inter-arrival via inverse transform; the
            // diurnal curve stretches the gap at quiet hours (thinning
            // the rate at the current virtual time).
            let u: f64 = rng.random_range(1e-12..1.0);
            let mut gap = -u.ln() * self.mean_interarrival_ms as f64;
            if let Some(curve) = self.diurnal {
                gap /= curve.intensity(t).max(1e-6);
            }
            let gap = gap as u64;
            t = t.saturating_add(gap.max(1));
            let work = match self.sizes {
                JobSizeDistribution::Constant(w) => w,
                JobSizeDistribution::Uniform { lo, hi } => rng.random_range(lo..=hi.max(lo)),
                JobSizeDistribution::HeavyTailed { base, continue_pct } => {
                    let mut w = base;
                    while rng.random_range(0..100u8) < continue_pct && w < u64::MAX / 4 {
                        w *= 2;
                    }
                    w
                }
            };
            events.push(WorkloadEvent {
                arrival_ms: t,
                consumer: i % self.consumers.max(1),
                job: JobSpec {
                    work,
                    parallelism: 1,
                    memory_mb: self.memory_mb,
                    storage_mb: 0,
                    network_mb: self.network_mb,
                    sys_pct: 5,
                },
            });
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(sizes: JobSizeDistribution) -> WorkloadConfig {
        WorkloadConfig {
            seed: 42,
            count: 500,
            consumers: 4,
            mean_interarrival_ms: 100,
            sizes,
            memory_mb: 64,
            network_mb: 1,
            diurnal: None,
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let c = config(JobSizeDistribution::Uniform { lo: 10, hi: 100 });
        let a = c.generate();
        let b = c.generate();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival_ms, y.arrival_ms);
            assert_eq!(x.job.work, y.job.work);
        }
        let mut c2 = c.clone();
        c2.seed = 43;
        let d = c2.generate();
        assert!(a.iter().zip(&d).any(|(x, y)| x.arrival_ms != y.arrival_ms));
    }

    #[test]
    fn arrivals_are_monotone_and_mean_is_plausible() {
        let c = config(JobSizeDistribution::Constant(5));
        let events = c.generate();
        assert_eq!(events.len(), 500);
        for w in events.windows(2) {
            assert!(w[0].arrival_ms <= w[1].arrival_ms);
        }
        // Mean inter-arrival within 3x of configured (loose sanity bound).
        let span = events.last().unwrap().arrival_ms as f64;
        let mean_gap = span / events.len() as f64;
        assert!(mean_gap > 30.0 && mean_gap < 300.0, "mean gap {mean_gap}");
    }

    #[test]
    fn consumers_round_robin() {
        let c = config(JobSizeDistribution::Constant(5));
        let events = c.generate();
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.consumer, i % 4);
        }
    }

    #[test]
    fn uniform_sizes_stay_in_range() {
        let c = config(JobSizeDistribution::Uniform { lo: 10, hi: 100 });
        for e in c.generate() {
            assert!((10..=100).contains(&e.job.work));
        }
    }

    #[test]
    fn heavy_tail_produces_spread() {
        let c = config(JobSizeDistribution::HeavyTailed { base: 100, continue_pct: 50 });
        let events = c.generate();
        let min = events.iter().map(|e| e.job.work).min().unwrap();
        let max = events.iter().map(|e| e.job.work).max().unwrap();
        assert_eq!(min, 100);
        assert!(max >= 1_600, "expected a heavy tail, max {max}");
    }

    #[test]
    fn diurnal_intensity_peaks_at_noon_and_bottoms_at_midnight() {
        let curve = DiurnalCurve { period_ms: 86_400_000, trough_pct: 20 };
        let midnight = curve.intensity(0);
        let noon = curve.intensity(43_200_000);
        assert!((midnight - 0.2).abs() < 1e-9, "midnight = {midnight}");
        assert!((noon - 1.0).abs() < 1e-9, "noon = {noon}");
        // Strictly inside (0, 1] everywhere, periodic across days.
        for h in 0..48u64 {
            let v = curve.intensity(h * 3_600_000);
            assert!(v > 0.0 && v <= 1.0, "hour {h}: {v}");
            assert!((v - curve.intensity(h * 3_600_000 + 86_400_000)).abs() < 1e-9);
        }
    }

    #[test]
    fn diurnal_curve_clusters_arrivals_into_rush_hours() {
        let day = 1_000_000u64;
        let mut c = config(JobSizeDistribution::Constant(5));
        c.count = 4_000;
        c.diurnal = Some(DiurnalCurve { period_ms: day, trough_pct: 10 });
        let events = c.generate();
        // Split each virtual day into a night half (phase 0.75..0.25, around
        // midnight) and a day half; the day half must carry clearly more.
        let (mut day_n, mut night_n) = (0usize, 0usize);
        for e in &events {
            let phase = (e.arrival_ms % day) as f64 / day as f64;
            if (0.25..0.75).contains(&phase) {
                day_n += 1;
            } else {
                night_n += 1;
            }
        }
        assert!(
            day_n as f64 > 1.5 * night_n as f64,
            "no diurnal clustering: day={day_n} night={night_n}"
        );
        // Still deterministic and sorted under modulation.
        let again = c.generate();
        assert!(events
            .iter()
            .zip(&again)
            .all(|(a, b)| a.arrival_ms == b.arrival_ms && a.job.work == b.job.work));
        assert!(events.windows(2).all(|w| w[0].arrival_ms <= w[1].arrival_ms));
    }

    #[test]
    fn zipf_sampler_concentrates_on_the_hot_set() {
        let zipf = ZipfSampler::new(10_000, 1_000);
        assert_eq!(zipf.population(), 10_000);
        let mut rng = StdRng::seed_from_u64(7);
        let mut hits = vec![0usize; 10_000];
        let draws = 50_000;
        for _ in 0..draws {
            let k = zipf.sample(&mut rng);
            assert!(k < 10_000);
            hits[k] += 1;
        }
        // With s = 1 over 10k ranks, the top 100 ranks carry roughly half
        // the mass (H(100)/H(10000) ≈ 0.53). Loose bound: at least 40%.
        let hot: usize = hits[..100].iter().sum();
        assert!(hot * 10 >= draws * 4, "hot set got {hot}/{draws}");
        // Rank 0 is the single hottest.
        assert_eq!(hits.iter().enumerate().max_by_key(|(_, &n)| n).unwrap().0, 0);
        // Degenerate populations stay in range instead of panicking.
        let tiny = ZipfSampler::new(0, 1_000);
        assert_eq!(tiny.sample(&mut rng), 0);
    }
}
