//! Scenario drivers behind the paper's figures.
//!
//! * [`run_open_market`] — Figure 1's end-to-end flow at grid scale:
//!   consumers discover providers through the directory, negotiate,
//!   schedule under QoS, pay by GridCheque, and the bank records
//!   everything.
//! * [`run_cooperative`] — Figure 4's barter community: participants both
//!   provide and consume; the report reproduces the per-participant
//!   consumed/provided annotations and the equilibrium gap.
//! * [`run_competitive`] — §4.2: providers register descriptions, trade
//!   happens, and the bank's estimator prices a hypothetical resource
//!   from confidential history.

use std::sync::Arc;

use gridbank_broker::broker::GridResourceBroker;
use gridbank_broker::job::{JobBatch, QosConstraints};
use gridbank_broker::payment::PaymentModule;
use gridbank_broker::scheduling::Algorithm;
use gridbank_core::api::BankRequest;
use gridbank_core::clock::Clock;
use gridbank_core::coop::BarterStats;
use gridbank_core::port::{BankPort, InProcessBank};
use gridbank_core::server::GridBank;
use gridbank_crypto::cert::SubjectName;
use gridbank_gsp::provider::GridServiceProvider;
use gridbank_meter::machine::JobSpec;
use gridbank_rur::Credits;
use gridbank_trade::directory::MarketDirectory;

use crate::topology::{build_grid, TopologyConfig};
use crate::workload::WorkloadConfig;

/// A constructed grid.
pub struct GridScenario {
    /// Shared virtual clock.
    pub clock: Clock,
    /// The bank.
    pub bank: Arc<GridBank>,
    /// Providers, index-aligned with the directory registrations.
    pub providers: Vec<GridServiceProvider<InProcessBank>>,
    /// The Grid Market Directory.
    pub directory: MarketDirectory,
    /// The bootstrap administrator identity.
    pub admin: SubjectName,
    /// The seed the grid was built from.
    pub seed: u64,
}

impl GridScenario {
    /// Creates a funded consumer with a budgeted broker.
    pub fn new_consumer(
        &self,
        cn: &str,
        deposit: Credits,
        budget: Credits,
    ) -> GridResourceBroker<InProcessBank> {
        let subject = SubjectName::new("Grid", "Users", cn);
        let mut gbpm =
            PaymentModule::new(InProcessBank::new(self.bank.clone(), subject.clone()), budget);
        let account = gbpm.ensure_account(Some("Grid".into())).expect("fresh consumer");
        self.bank.handle(&self.admin, BankRequest::AdminDeposit { account, amount: deposit });
        GridResourceBroker::new(subject.0, gbpm)
    }
}

/// Scenario-level configuration.
#[derive(Clone, Debug)]
pub struct ScenarioConfig {
    /// Grid shape.
    pub topology: TopologyConfig,
    /// Workload shape.
    pub workload: WorkloadConfig,
    /// Scheduling algorithm consumers use.
    pub algorithm: Algorithm,
    /// Deadline per batch, virtual ms.
    pub deadline_ms: u64,
    /// Budget per consumer.
    pub budget: Credits,
}

/// Open-market outcome.
#[derive(Clone, Debug)]
pub struct MarketReport {
    /// Tasks completed across all consumers.
    pub completed: usize,
    /// Tasks failed / unplaced.
    pub failed: usize,
    /// Total paid to providers.
    pub total_paid: Credits,
    /// Total itemized charges.
    pub total_charge: Credits,
    /// Largest observed makespan across consumer batches.
    pub makespan_ms: u64,
    /// Revenue per provider (aligned with the scenario's provider list).
    pub provider_revenue: Vec<Credits>,
    /// Bank funds conservation check: Σ(available+locked) after minus
    /// before (should be zero — payments only move credits).
    pub conservation_drift: Credits,
}

/// Runs Figure 1 at grid scale.
pub fn run_open_market(config: &ScenarioConfig) -> MarketReport {
    let mut grid = build_grid(&config.topology);
    let events = config.workload.generate();
    let consumers = config.workload.consumers.max(1);

    let before = grid.bank.accounts.db().total_funds().saturating_add(Credits::ZERO);

    // Group tasks per consumer into one batch each (Nimrod-G submits
    // parameter sweeps as units).
    let mut per_consumer: Vec<Vec<JobSpec>> = vec![Vec::new(); consumers];
    for e in &events {
        per_consumer[e.consumer].push(e.job.clone());
    }

    let mut report = MarketReport {
        completed: 0,
        failed: 0,
        total_paid: Credits::ZERO,
        total_charge: Credits::ZERO,
        makespan_ms: 0,
        provider_revenue: vec![Credits::ZERO; grid.providers.len()],
        conservation_drift: Credits::ZERO,
    };
    // Deposits change total funds; track how much we mint for consumers.
    let mut minted = Credits::ZERO;

    for (ci, tasks) in per_consumer.into_iter().enumerate() {
        if tasks.is_empty() {
            continue;
        }
        let deposit = config.budget.checked_mul(2).unwrap_or(config.budget);
        let mut broker = grid.new_consumer(&format!("consumer-{ci:02}"), deposit, config.budget);
        minted = minted.saturating_add(deposit);
        let batch = JobBatch {
            application: format!("sweep-{ci}"),
            tasks,
            qos: QosConstraints {
                deadline_ms: grid.clock.now_ms() + config.deadline_ms,
                budget: config.budget,
            },
        };
        match broker.run_batch(config.algorithm, &batch, &mut grid.providers, grid.clock.now_ms()) {
            Ok(r) => {
                report.completed += r.completed;
                report.failed += r.failed;
                report.total_paid = report.total_paid.saturating_add(r.total_paid);
                report.total_charge = report.total_charge.saturating_add(r.total_charge);
                report.makespan_ms = report.makespan_ms.max(r.makespan_ms);
            }
            Err(_) => report.failed += batch.len(),
        }
    }

    for (i, p) in grid.providers.iter_mut().enumerate() {
        report.provider_revenue[i] =
            p.gbcm.port.my_account().map(|r| r.available).unwrap_or(Credits::ZERO);
    }
    let after = grid.bank.accounts.db().total_funds();
    report.conservation_drift =
        after.checked_sub(before).and_then(|d| d.checked_sub(minted)).unwrap_or(Credits::MAX);
    feed_collector("open_market", &report, grid.providers.len());
    report
}

/// Feeds a market run's outcome into the global telemetry registry under
/// `sim.<scope>.` (no-op while telemetry is off), so `gridbank metrics`
/// and exporters see scenario results next to the bank's own telemetry.
fn feed_collector(scope: &str, report: &MarketReport, providers: usize) {
    if !gridbank_obs::telemetry_enabled() {
        return;
    }
    let c = gridbank_obs::Collector::new(scope);
    c.add("jobs_completed", report.completed as u64);
    c.add("jobs_failed", report.failed as u64);
    c.add("paid_micro", report.total_paid.metric_micro());
    c.gauge("providers", providers as i64);
    c.observe("makespan_ms", report.makespan_ms);
}

/// One participant row in the co-operative report (Figure 4's account
/// annotations).
#[derive(Clone, Debug)]
pub struct CoopRow {
    /// Participant name.
    pub name: String,
    /// Relative machine speed.
    pub speed: u32,
    /// Credits consumed from others.
    pub consumed: Credits,
    /// Credits earned providing to others.
    pub provided: Credits,
    /// Final account balance.
    pub balance: Credits,
}

/// Co-operative community outcome.
#[derive(Clone, Debug)]
pub struct CoopReport {
    /// Per-participant rows.
    pub rows: Vec<CoopRow>,
    /// max |provided − consumed| across participants.
    pub equilibrium_gap: Credits,
    /// Total value exchanged.
    pub total_exchanged: Credits,
}

/// Runs Figure 4: `n` participants in a ring, each consuming from the
/// next participant's resource for `rounds` rounds. All charge the same
/// CPU-hour price, so faster hardware simply finishes sooner while
/// earning the same — "the slower resources have to compensate by
/// running longer".
pub fn run_cooperative(n: usize, rounds: usize, work_per_job: u64, seed: u64) -> CoopReport {
    assert!(n >= 2, "a barter ring needs at least two participants");
    let topo = TopologyConfig {
        seed,
        providers: n,
        machines_per_provider: 1,
        // Heterogeneous speeds, but prices proportional to speed — the
        // community's resource valuation (§4.1) — so equal work costs the
        // same value on any machine: fast hardware charges more per hour,
        // slow hardware "compensates by running longer".
        speed_range: (100, 400),
        cpu_price_milli_range: (0, 0),
        price_milli_per_speed_unit: Some(10),
        cores: 4,
        pool_size: 4,
        dynamic_pricing: false,
        signer_height: 12,
    };
    let mut grid = build_grid(&topo);

    // Each participant gets an initial allocation and a broker bound to
    // the same identity as their provider, so earnings and spending meet
    // in one account (participants "both consume and provide").
    let mut brokers = Vec::with_capacity(n);
    let initial = Credits::from_gd(50);
    for (i, p) in grid.providers.iter().enumerate() {
        let subject = SubjectName(p.cert.clone());
        let account = grid.bank.accounts.account_by_cert(&subject.0).expect("exists").id;
        grid.bank.handle(&grid.admin, BankRequest::AdminDeposit { account, amount: initial });
        let gbpm = PaymentModule::new(
            InProcessBank::new(grid.bank.clone(), subject.clone()),
            Credits::from_gd(10_000),
        );
        let mut broker = GridResourceBroker::new(subject.0, gbpm);
        broker.gbpm.ensure_account(None).expect("account exists");
        let _ = i;
        brokers.push(broker);
    }

    for round in 0..rounds {
        #[allow(clippy::needless_range_loop)] // i pairs brokers with the *next* provider
        for i in 0..n {
            let target = (i + 1) % n;
            let batch = JobBatch::sweep(
                &format!("coop-r{round}"),
                JobSpec {
                    work: work_per_job,
                    parallelism: 1,
                    memory_mb: 0,
                    storage_mb: 0,
                    network_mb: 0,
                    sys_pct: 0,
                },
                1,
                // lint:allow(money-arith) u64::MAX/2 is a far-future deadline sentinel, not money
                QosConstraints { deadline_ms: u64::MAX / 2, budget: Credits::from_gd(1_000) },
            );
            let provider_slice = std::slice::from_mut(&mut grid.providers[target]);
            brokers[i]
                .run_batch(Algorithm::CostOpt, &batch, provider_slice, grid.clock.now_ms())
                .expect("coop job should run");
        }
    }

    let stats = BarterStats::compute(grid.bank.accounts.db(), 0, u64::MAX);
    let mut rows = Vec::with_capacity(n);
    for p in &grid.providers {
        let record = grid.bank.accounts.account_by_cert(&p.cert).expect("exists");
        let b = stats.balances.get(&record.id).copied().unwrap_or_default();
        rows.push(CoopRow {
            name: p.cert.clone(),
            speed: p.advertisement().cpu_speed,
            consumed: b.consumed,
            provided: b.provided,
            balance: record.available,
        });
    }
    CoopReport {
        equilibrium_gap: stats.equilibrium_gap(),
        total_exchanged: stats.total_exchanged(),
        rows,
    }
}

/// The event-driven market: per-arrival dispatch through the
/// discrete-event engine, yielding response-time statistics the batched
/// driver cannot produce.
pub struct DesMarketReport {
    /// Jobs completed.
    pub completed: usize,
    /// Jobs that could not be served.
    pub failed: usize,
    /// Total paid.
    pub total_paid: Credits,
    /// Per-job response times (arrival → completion), ms.
    pub response_times_ms: Vec<u64>,
    /// Virtual time at which the last event fired.
    pub horizon_ms: u64,
    /// Events processed by the engine.
    pub events: u64,
}

impl DesMarketReport {
    /// Mean response time in ms.
    pub fn mean_response_ms(&self) -> f64 {
        crate::metrics::mean(&self.response_times_ms.iter().map(|&v| v as f64).collect::<Vec<_>>())
    }
}

struct DesWorld {
    grid: GridScenario,
    brokers: Vec<GridResourceBroker<InProcessBank>>,
    completed: usize,
    failed: usize,
    total_paid: Credits,
    response_times_ms: Vec<u64>,
    deadline_ms: u64,
}

/// Runs the open market through the discrete-event engine: every workload
/// arrival is an event; each dispatch advances the shared bank clock to
/// the event time, so certificate expiry and quote windows see real time.
pub fn run_open_market_des(config: &ScenarioConfig) -> DesMarketReport {
    let grid = build_grid(&config.topology);
    let consumers = config.workload.consumers.max(1);
    let mut brokers = Vec::with_capacity(consumers);
    for ci in 0..consumers {
        let deposit = config.budget.checked_mul(4).unwrap_or(config.budget);
        brokers.push(grid.new_consumer(&format!("des-consumer-{ci:02}"), deposit, config.budget));
    }
    let mut world = DesWorld {
        grid,
        brokers,
        completed: 0,
        failed: 0,
        total_paid: Credits::ZERO,
        response_times_ms: Vec::new(),
        deadline_ms: config.deadline_ms,
    };

    let mut sim = crate::engine::Simulator::new();
    for event in config.workload.generate() {
        let algorithm = config.algorithm;
        sim.schedule_at(event.arrival_ms, move |w: &mut DesWorld, s| {
            // Virtual wall time follows the event queue.
            w.grid.clock.advance_to(s.now_ms());
            let batch = JobBatch {
                application: "des".into(),
                tasks: vec![event.job.clone()],
                qos: QosConstraints {
                    deadline_ms: s.now_ms() + w.deadline_ms,
                    budget: w.brokers[event.consumer].gbpm.tracker.remaining(),
                },
            };
            match w.brokers[event.consumer].run_batch(
                algorithm,
                &batch,
                &mut w.grid.providers,
                s.now_ms(),
            ) {
                Ok(r) if r.completed == 1 => {
                    w.completed += 1;
                    w.total_paid = w.total_paid.saturating_add(r.total_paid);
                    w.response_times_ms.push(r.makespan_ms);
                }
                _ => w.failed += 1,
            }
        });
    }
    let events = sim.run(&mut world);
    if gridbank_obs::telemetry_enabled() {
        let c = gridbank_obs::Collector::new("open_market_des");
        c.add("jobs_completed", world.completed as u64);
        c.add("jobs_failed", world.failed as u64);
        c.add("events", events);
        for &rt in &world.response_times_ms {
            c.observe("response_time_ms", rt);
        }
    }
    DesMarketReport {
        completed: world.completed,
        failed: world.failed,
        total_paid: world.total_paid,
        response_times_ms: world.response_times_ms,
        horizon_ms: sim.now_ms(),
        events,
    }
}

/// Competitive-model outcome (§4.2).
#[derive(Clone, Debug)]
pub struct CompetitiveReport {
    /// Realized average unit price across trades (G$/CPU-hour).
    pub realized_mean: Credits,
    /// The bank's estimate for the queried description.
    pub estimate: Credits,
    /// Number of history observations behind the estimate.
    pub observations: usize,
}

/// Runs §4.2: trade on a grid with registered resource descriptions,
/// then ask the bank to price a resource like provider 0's.
pub fn run_competitive(config: &ScenarioConfig) -> CompetitiveReport {
    let mut grid = build_grid(&config.topology);
    // Providers register their hardware descriptions with the bank.
    let descs: Vec<_> = grid
        .providers
        .iter()
        .map(|p| {
            let ad = p.advertisement();
            gridbank_core::pricing::ResourceDescription {
                cpu_speed: ad.cpu_speed,
                cpu_count: ad.cpu_count,
                memory_mb: ad.memory_mb,
                storage_mb: ad.storage_mb,
                bandwidth_mbps: ad.bandwidth_mbps,
            }
        })
        .collect();
    for (p, desc) in grid.providers.iter_mut().zip(&descs) {
        p.gbcm.port.register_resource_description(*desc).expect("registration");
    }

    let events = config.workload.generate();
    let mut broker = grid.new_consumer("estimator-probe", Credits::from_gd(100_000), config.budget);
    let batch = JobBatch {
        application: "market".into(),
        tasks: events.into_iter().map(|e| e.job).collect(),
        qos: QosConstraints { deadline_ms: config.deadline_ms, budget: config.budget },
    };
    let _ = broker.run_batch(config.algorithm, &batch, &mut grid.providers, 0);

    let estimate = grid.bank.estimator.estimate(&descs[0], 0).unwrap_or(Credits::ZERO);
    CompetitiveReport {
        realized_mean: estimate, // similarity-weighted mean IS the estimate
        estimate,
        observations: grid.bank.estimator.observation_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::JobSizeDistribution;

    fn small_config() -> ScenarioConfig {
        ScenarioConfig {
            topology: TopologyConfig {
                providers: 3,
                machines_per_provider: 2,
                signer_height: 9,
                ..TopologyConfig::default()
            },
            workload: WorkloadConfig {
                seed: 7,
                count: 12,
                consumers: 3,
                mean_interarrival_ms: 50,
                sizes: JobSizeDistribution::Uniform { lo: 50_000, hi: 200_000 },
                memory_mb: 64,
                network_mb: 1,
                diurnal: None,
            },
            algorithm: Algorithm::TimeOpt,
            deadline_ms: 3_600_000,
            budget: Credits::from_gd(500),
        }
    }

    #[test]
    fn open_market_completes_and_conserves() {
        let report = run_open_market(&small_config());
        assert_eq!(report.completed, 12, "{report:?}");
        assert_eq!(report.failed, 0);
        assert!(report.total_paid.is_positive());
        assert_eq!(report.conservation_drift, Credits::ZERO);
        // Someone earned revenue.
        assert!(report.provider_revenue.iter().any(|r| r.is_positive()));
        // Paid never exceeds charges (reservation caps only reduce).
        assert!(report.total_paid <= report.total_charge || report.total_charge.is_zero());
    }

    #[test]
    fn open_market_is_deterministic() {
        let a = run_open_market(&small_config());
        let b = run_open_market(&small_config());
        assert_eq!(a.total_paid, b.total_paid);
        assert_eq!(a.makespan_ms, b.makespan_ms);
        assert_eq!(a.provider_revenue, b.provider_revenue);
    }

    #[test]
    fn cooperative_ring_reaches_equilibrium() {
        let report = run_cooperative(4, 3, 3_600_000, 11);
        assert_eq!(report.rows.len(), 4);
        // With community valuation (price ∝ speed), everyone consumed and
        // provided the same value up to integer-division rounding of CPU
        // milliseconds — the paper's "approximately as much currency".
        let tolerance = Credits::from_micro(2_000); // 0.002 G$ over 12 jobs
        assert!(
            report.equilibrium_gap <= tolerance,
            "gap {} exceeds tolerance: {report:?}",
            report.equilibrium_gap
        );
        for row in &report.rows {
            let imbalance = row.provided.checked_sub(row.consumed).unwrap().abs();
            assert!(imbalance <= tolerance, "{row:?}");
            let drift = row.balance.checked_sub(Credits::from_gd(50)).unwrap().abs();
            assert!(drift <= tolerance, "{row:?}");
            assert!(row.consumed.is_positive());
        }
        assert!(report.total_exchanged.is_positive());
        // Heterogeneity is real: speeds differ across the ring.
        let speeds: std::collections::HashSet<u32> = report.rows.iter().map(|r| r.speed).collect();
        assert!(speeds.len() > 1);
    }

    #[test]
    fn des_market_processes_every_arrival_in_order() {
        let config = small_config();
        let report = run_open_market_des(&config);
        assert_eq!(report.events as usize, config.workload.count);
        assert_eq!(report.completed + report.failed, config.workload.count);
        assert!(report.completed > 0);
        assert!(report.total_paid.is_positive());
        assert_eq!(report.response_times_ms.len(), report.completed);
        // The horizon is at least the last arrival.
        let last_arrival = config.workload.generate().last().unwrap().arrival_ms;
        assert!(report.horizon_ms >= last_arrival);
        assert!(report.mean_response_ms() > 0.0);
        // Deterministic.
        let again = run_open_market_des(&config);
        assert_eq!(again.total_paid, report.total_paid);
        assert_eq!(again.response_times_ms, report.response_times_ms);
    }

    #[test]
    fn competitive_estimation_tracks_market() {
        let mut config = small_config();
        // CPU-only jobs so the realized unit price equals the CPU rate:
        // the estimate must land inside the configured 0.5-4 G$ band.
        config.workload.count = 9;
        config.workload.memory_mb = 0;
        config.workload.network_mb = 0;
        config.workload.sizes = JobSizeDistribution::Uniform { lo: 1_000_000, hi: 4_000_000 };
        let report = run_competitive(&config);
        assert!(report.observations > 0, "{report:?}");
        assert!(report.estimate.is_positive());
        assert!(
            report.estimate >= Credits::from_milli(400)
                && report.estimate <= Credits::from_milli(4_500),
            "estimate {} outside the price band",
            report.estimate
        );
    }
}
