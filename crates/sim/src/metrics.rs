//! Statistics helpers for experiment reports.
//!
//! The implementations moved to [`gridbank_obs::stats`] so simulation
//! reports and telemetry snapshots share one set of estimators; this
//! module re-exports them under the names sim callers always used.

pub use gridbank_obs::stats::{mean, percentile, std_dev, FixedHistogram as Histogram};
