//! # gridbank-sim
//!
//! The testing substrate the paper names: "'GridSim' is a Grid simulation
//! toolkit for resource modeling and application scheduling, which can be
//! used to simulate rather than build a computational Grid for testing
//! purposes" (§1). Everything is deterministic under a seed.
//!
//! * [`engine`] — a discrete-event simulation core: virtual clock, a
//!   stable (time, sequence)-ordered event queue, and a deferred
//!   scheduler so events can schedule further events while borrowing the
//!   world.
//! * [`workload`] — seeded workload generation: Poisson arrivals and job
//!   size distributions.
//! * [`topology`] — grid construction: heterogeneous providers (speed,
//!   price, OS flavour) and funded consumers around one GridBank.
//! * [`metrics`] — small statistics helpers for experiment reports.
//! * [`scenario`] — the drivers behind the paper's figures: the
//!   end-to-end open-market scenario (Figure 1), the co-operative barter
//!   community (Figure 4), and the competitive market with bank-assisted
//!   price estimation (§4.2).
//! * [`chaos`] — the E15 fault-injection harness: Figure-1 payment flows
//!   over a seeded lossy network, with conservation evidence for the
//!   exactly-once guarantees (see `docs/RESILIENCE.md`).
//! * [`federation`] — the §6 multi-branch scenario: N federated
//!   branches, seeded cross-VO traffic, netting settlement, and
//!   conservation evidence.
//! * [`recovery`] — the restart-to-serving drill: a live durable branch
//!   is killed and rebooted, and the report shows replay was bounded by
//!   the journal tail (docs/STORAGE.md §5, `gridbank-bench --recovery`).
//! * [`market`] — the population-scale market economy: Zipf/diurnal
//!   spot traffic, flash-crowd capacity auctions settled exactly-once
//!   through live servers, a co-op barter ring, and PayWord streams,
//!   all ending in hard conservation evidence.

pub mod chaos;
pub mod engine;
pub mod federation;
pub mod market;
pub mod metrics;
pub mod recovery;
pub mod scenario;
pub mod topology;
pub mod workload;

pub use chaos::{run_chaos, ChaosConfig, ChaosReport};
pub use engine::Simulator;
pub use federation::{run_federation, FederationConfig, FederationReport};
pub use market::{run_market, EconomyConfig, EconomyReport};
pub use recovery::{run_recovery, RecoveryConfig, RecoveryDrillReport};
pub use scenario::{CoopReport, GridScenario, MarketReport, ScenarioConfig};
pub use topology::{build_grid, TopologyConfig};
pub use workload::{JobSizeDistribution, WorkloadConfig, WorkloadEvent};
