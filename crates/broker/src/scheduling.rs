//! Deadline-and-budget-constrained (DBC) scheduling.
//!
//! The four Nimrod-G algorithms from the cited work \[2,5\], over an
//! abstract view of negotiated resources. All four are deterministic
//! greedy list schedulers; they differ in the objective each assignment
//! step optimizes:
//!
//! * **Cost-optimization** — cheapest completion first; time matters only
//!   against the deadline.
//! * **Time-optimization** — earliest completion first; cost matters only
//!   against the budget.
//! * **Cost-time-optimization** — like cost-optimization, but among
//!   resources of equal cost it packs for time (so equal-price resources
//!   behave like one big fast resource).
//! * **Conservative-time** — time-optimization that additionally keeps
//!   per-job spending within `budget / job_count`, guaranteeing every
//!   unscheduled job the same headroom.

use gridbank_rur::units::MS_PER_HOUR;
use gridbank_rur::Credits;

use crate::error::BrokerError;
use crate::job::QosConstraints;

/// The broker's negotiated view of one resource.
#[derive(Clone, Debug)]
pub struct ResourceView {
    /// Index into the broker's provider list.
    pub provider_idx: usize,
    /// Agreed headline price per CPU-hour.
    pub price_per_hour: Credits,
    /// Throughput: abstract work units per millisecond.
    pub speed: u64,
    /// Virtual time at which the resource is next free.
    pub free_at_ms: u64,
}

impl ResourceView {
    /// Execution time for `work` on this resource.
    pub fn exec_ms(&self, work: u64) -> u64 {
        work.div_ceil(self.speed.max(1))
    }

    /// Cost of executing `work` at the agreed rate.
    pub fn cost(&self, work: u64) -> Credits {
        self.price_per_hour.mul_ratio(self.exec_ms(work), MS_PER_HOUR).unwrap_or(Credits::MAX)
    }
}

/// The DBC algorithm menu.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Minimize cost within the deadline.
    CostOpt,
    /// Minimize completion time within the budget.
    TimeOpt,
    /// Cost first, time among cost ties.
    CostTimeOpt,
    /// Time-optimize with a per-job budget guarantee.
    ConservativeTime,
}

impl Algorithm {
    /// All algorithms, for sweeps.
    pub const ALL: [Algorithm; 4] = [
        Algorithm::CostOpt,
        Algorithm::TimeOpt,
        Algorithm::CostTimeOpt,
        Algorithm::ConservativeTime,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::CostOpt => "cost-opt",
            Algorithm::TimeOpt => "time-opt",
            Algorithm::CostTimeOpt => "cost-time-opt",
            Algorithm::ConservativeTime => "conservative-time",
        }
    }
}

/// One planned assignment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Task index within the batch.
    pub task_idx: usize,
    /// Resource index within the schedule's resource list.
    pub resource_idx: usize,
    /// Planned start (virtual ms).
    pub start_ms: u64,
    /// Planned end.
    pub end_ms: u64,
    /// Planned cost.
    pub cost: Credits,
}

/// A complete plan.
#[derive(Clone, Debug, Default)]
pub struct Schedule {
    /// Planned assignments in dispatch order.
    pub assignments: Vec<Assignment>,
    /// Planned total cost.
    pub total_cost: Credits,
    /// Planned makespan (latest end).
    pub makespan_ms: u64,
    /// Number of tasks that could not be placed within QoS.
    pub unscheduled: usize,
    /// Indices of the unplaced tasks (retry input).
    pub unscheduled_tasks: Vec<usize>,
}

impl Schedule {
    /// True when every task was placed.
    pub fn complete(&self) -> bool {
        self.unscheduled == 0
    }
}

/// Plans `task_works` (work units per task) onto `resources` under `qos`
/// starting at `now_ms`. Resources' `free_at_ms` are treated as queues
/// local to this plan (the input is not mutated).
pub fn schedule(
    algorithm: Algorithm,
    task_works: &[u64],
    resources: &[ResourceView],
    qos: QosConstraints,
    now_ms: u64,
) -> Result<Schedule, BrokerError> {
    if resources.is_empty() {
        return Err(BrokerError::NoProviders);
    }
    let mut queues: Vec<u64> = resources.iter().map(|r| r.free_at_ms.max(now_ms)).collect();
    let mut plan = Schedule::default();
    let mut spent = Credits::ZERO;
    let per_job_cap = if task_works.is_empty() {
        Credits::ZERO
    } else {
        let jobs = u64::try_from(task_works.len()).unwrap_or(u64::MAX);
        qos.budget.mul_ratio(1, jobs).unwrap_or(Credits::ZERO)
    };

    // Schedule longest tasks first (classic LPT) for better packing.
    let mut order: Vec<usize> = (0..task_works.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(task_works[i]));

    for &task_idx in &order {
        let work = task_works[task_idx];
        // Candidate (resource, end, cost) triples that satisfy hard QoS.
        let mut best: Option<(usize, u64, Credits)> = None;
        for (ri, r) in resources.iter().enumerate() {
            let start = queues[ri];
            let end = start.saturating_add(r.exec_ms(work));
            let cost = r.cost(work);
            if end > qos.deadline_ms {
                continue;
            }
            if spent.saturating_add(cost) > qos.budget {
                continue;
            }
            if algorithm == Algorithm::ConservativeTime && cost > per_job_cap {
                continue;
            }
            let better = match best {
                None => true,
                Some((bri, bend, bcost)) => match algorithm {
                    // Pure cost: time is only a feasibility constraint, so
                    // ties stay on the first (stable) resource.
                    Algorithm::CostOpt => (cost, ri) < (bcost, bri),
                    Algorithm::TimeOpt | Algorithm::ConservativeTime => {
                        (end, cost, ri) < (bend, bcost, bri)
                    }
                    // Cost buckets first; inside a bucket, pack for time —
                    // equal-price resources behave like one fast resource.
                    Algorithm::CostTimeOpt => (cost, end, ri) < (bcost, bend, bri),
                },
            };
            if better {
                best = Some((ri, end, cost));
            }
        }
        match best {
            Some((ri, end, cost)) => {
                let start = queues[ri];
                queues[ri] = end;
                spent = spent.saturating_add(cost);
                plan.total_cost = spent;
                plan.makespan_ms = plan.makespan_ms.max(end);
                plan.assignments.push(Assignment {
                    task_idx,
                    resource_idx: ri,
                    start_ms: start,
                    end_ms: end,
                    cost,
                });
            }
            None => {
                plan.unscheduled = plan.unscheduled.saturating_add(1);
                plan.unscheduled_tasks.push(task_idx);
            }
        }
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gd(v: i64) -> Credits {
        Credits::from_gd(v)
    }

    /// Two resources: slow+cheap (1 G$/h, 100 w/ms) and fast+dear
    /// (4 G$/h, 400 w/ms). Each task = 360_000 work → 3600 ms on slow
    /// (0.001 h → 0.001 G$? no: 3600ms = 1e-3 h... let's scale: work
    /// 360_000_000 → 1 hour on slow, 15 min on fast.
    fn resources() -> Vec<ResourceView> {
        vec![
            ResourceView { provider_idx: 0, price_per_hour: gd(1), speed: 100, free_at_ms: 0 },
            ResourceView { provider_idx: 1, price_per_hour: gd(4), speed: 400, free_at_ms: 0 },
        ]
    }

    const HOUR_WORK: u64 = 360_000_000; // 1h on the slow resource

    #[test]
    fn resource_view_math() {
        let r = &resources()[0];
        assert_eq!(r.exec_ms(HOUR_WORK), MS_PER_HOUR);
        assert_eq!(r.cost(HOUR_WORK), gd(1));
        let f = &resources()[1];
        assert_eq!(f.exec_ms(HOUR_WORK), MS_PER_HOUR / 4);
        assert_eq!(f.cost(HOUR_WORK), gd(1));
    }

    #[test]
    fn cost_opt_prefers_cheap_resource() {
        // Loose deadline: everything fits on the cheap machine.
        let tasks = vec![HOUR_WORK / 4; 4]; // 15 min each on slow
        let qos = QosConstraints { deadline_ms: 2 * MS_PER_HOUR, budget: gd(100) };
        let plan = schedule(Algorithm::CostOpt, &tasks, &resources(), qos, 0).unwrap();
        assert!(plan.complete());
        // Both resources cost the same per work unit here (1 G$/h at 100
        // vs 4 G$/h at 4x speed) so cost ties; tie-break goes to earlier
        // end... cost per task: slow 0.25, fast 0.25. Equal cost → CostOpt
        // tie-break by end time favours the fast machine first.
        assert_eq!(plan.total_cost, gd(1));
    }

    #[test]
    fn cost_opt_vs_time_opt_tradeoff() {
        // Make the fast resource genuinely more expensive per work unit:
        // price 8 G$/h at 400 w/ms → 2 G$ per hour-work vs 1 G$ on slow.
        let rs = vec![
            ResourceView { provider_idx: 0, price_per_hour: gd(1), speed: 100, free_at_ms: 0 },
            ResourceView { provider_idx: 1, price_per_hour: gd(8), speed: 400, free_at_ms: 0 },
        ];
        let tasks = vec![HOUR_WORK / 4; 8]; // 2h of slow work total
        let qos = QosConstraints { deadline_ms: 3 * MS_PER_HOUR, budget: gd(100) };

        let cost_plan = schedule(Algorithm::CostOpt, &tasks, &rs, qos, 0).unwrap();
        let time_plan = schedule(Algorithm::TimeOpt, &tasks, &rs, qos, 0).unwrap();
        assert!(cost_plan.complete() && time_plan.complete());
        // Cost-opt pays less, time-opt finishes sooner.
        assert!(cost_plan.total_cost < time_plan.total_cost);
        assert!(time_plan.makespan_ms < cost_plan.makespan_ms);
    }

    #[test]
    fn tight_deadline_forces_fast_resource() {
        let rs = vec![
            ResourceView { provider_idx: 0, price_per_hour: gd(1), speed: 100, free_at_ms: 0 },
            ResourceView { provider_idx: 1, price_per_hour: gd(8), speed: 400, free_at_ms: 0 },
        ];
        let tasks = vec![HOUR_WORK; 2];
        // Deadline of 35 min: the slow machine (1h/task) can never help.
        let qos = QosConstraints { deadline_ms: 35 * 60_000, budget: gd(100) };
        let plan = schedule(Algorithm::CostOpt, &tasks, &rs, qos, 0).unwrap();
        // Fast machine does one task in 15 min, the second by 30 min.
        assert!(plan.complete());
        assert!(plan.assignments.iter().all(|a| a.resource_idx == 1));
        assert_eq!(plan.total_cost, gd(4));
    }

    #[test]
    fn infeasible_deadline_leaves_tasks_unscheduled() {
        let tasks = vec![HOUR_WORK; 4];
        let qos = QosConstraints { deadline_ms: 10 * 60_000, budget: gd(100) };
        let plan = schedule(Algorithm::TimeOpt, &tasks, &resources(), qos, 0).unwrap();
        assert!(!plan.complete());
        assert!(plan.unscheduled > 0);
    }

    #[test]
    fn budget_limits_scheduling() {
        let tasks = vec![HOUR_WORK; 4]; // 1 G$ per task on either machine
        let qos = QosConstraints { deadline_ms: 100 * MS_PER_HOUR, budget: gd(2) };
        let plan = schedule(Algorithm::CostOpt, &tasks, &resources(), qos, 0).unwrap();
        assert_eq!(plan.assignments.len(), 2);
        assert_eq!(plan.unscheduled, 2);
        assert!(plan.total_cost <= gd(2));
    }

    #[test]
    fn conservative_time_caps_per_job_spend() {
        let rs = vec![
            ResourceView { provider_idx: 0, price_per_hour: gd(1), speed: 100, free_at_ms: 0 },
            ResourceView { provider_idx: 1, price_per_hour: gd(8), speed: 400, free_at_ms: 0 },
        ];
        let tasks = vec![HOUR_WORK; 4]; // slow: 1 G$, fast: 2 G$
                                        // Budget 6: per-job cap 1.5 G$ — the fast machine (2 G$/task) is
                                        // off limits for conservative-time even though the global budget
                                        // could afford some fast tasks.
        let qos = QosConstraints { deadline_ms: 100 * MS_PER_HOUR, budget: gd(6) };
        let cons = schedule(Algorithm::ConservativeTime, &tasks, &rs, qos, 0).unwrap();
        assert!(cons.assignments.iter().all(|a| a.resource_idx == 0));
        // Plain time-opt happily mixes in the fast machine.
        let time = schedule(Algorithm::TimeOpt, &tasks, &rs, qos, 0).unwrap();
        assert!(time.assignments.iter().any(|a| a.resource_idx == 1));
    }

    #[test]
    fn cost_time_beats_cost_on_makespan_at_equal_cost() {
        // Two resources with identical per-work cost (the second is 4×
        // the speed at 4× the price).
        let rs = resources();
        let tasks = vec![HOUR_WORK / 4; 8];
        let qos = QosConstraints { deadline_ms: 3 * MS_PER_HOUR, budget: gd(100) };
        let cost_plan = schedule(Algorithm::CostOpt, &tasks, &rs, qos, 0).unwrap();
        let ct_plan = schedule(Algorithm::CostTimeOpt, &tasks, &rs, qos, 0).unwrap();
        assert!(cost_plan.complete() && ct_plan.complete());
        // Same money...
        assert_eq!(cost_plan.total_cost, ct_plan.total_cost);
        // ...but cost-time finishes strictly sooner by spreading over the
        // equal-cost pair (this is exactly the distinction Nimrod-G's
        // cost-time algorithm exists for).
        assert!(ct_plan.makespan_ms < cost_plan.makespan_ms);
    }

    #[test]
    fn no_resources_is_an_error() {
        let qos = QosConstraints { deadline_ms: 1, budget: gd(1) };
        assert!(matches!(
            schedule(Algorithm::CostOpt, &[1], &[], qos, 0),
            Err(BrokerError::NoProviders)
        ));
    }

    #[test]
    fn queues_accumulate_and_respect_now() {
        let rs = vec![ResourceView {
            provider_idx: 0,
            price_per_hour: gd(1),
            speed: 100,
            free_at_ms: 1_000,
        }];
        let tasks = vec![100_000; 3]; // 1s each
        let qos = QosConstraints { deadline_ms: 10_000, budget: gd(10) };
        let plan = schedule(Algorithm::TimeOpt, &tasks, &rs, qos, 2_000).unwrap();
        assert!(plan.complete());
        // First task starts at max(free_at, now) = 2000.
        let mut starts: Vec<u64> = plan.assignments.iter().map(|a| a.start_ms).collect();
        starts.sort_unstable();
        assert_eq!(starts, vec![2_000, 3_000, 4_000]);
        assert_eq!(plan.makespan_ms, 5_000);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]
            /// Every plan from every algorithm respects budget, deadline
            /// and non-overlap — on arbitrary inputs, not just crafted
            /// markets.
            #[test]
            fn plans_always_respect_qos(
                works in prop::collection::vec(1_000_000u64..200_000_000, 1..20),
                resources in prop::collection::vec((1i64..10, 50u64..500), 1..6),
                deadline_h in 1u64..12,
                budget_gd in 1i64..50,
                alg_idx in 0usize..4,
            ) {
                let rs: Vec<ResourceView> = resources.into_iter().enumerate()
                    .map(|(i, (price, speed))| ResourceView {
                        provider_idx: i,
                        price_per_hour: Credits::from_gd(price),
                        speed,
                        free_at_ms: 0,
                    })
                    .collect();
                let qos = QosConstraints {
                    deadline_ms: deadline_h * MS_PER_HOUR,
                    budget: Credits::from_gd(budget_gd),
                };
                let alg = Algorithm::ALL[alg_idx];
                let plan = schedule(alg, &works, &rs, qos, 0).unwrap();

                prop_assert!(plan.total_cost <= qos.budget, "{}", alg.name());
                prop_assert!(plan.makespan_ms <= qos.deadline_ms);
                prop_assert_eq!(plan.assignments.len() + plan.unscheduled, works.len());
                prop_assert_eq!(plan.unscheduled_tasks.len(), plan.unscheduled);

                // Each assignment is internally consistent.
                let mut spans: std::collections::HashMap<usize, Vec<(u64, u64)>> = Default::default();
                let mut cost_sum = Credits::ZERO;
                for a in &plan.assignments {
                    let r = &rs[a.resource_idx];
                    prop_assert_eq!(a.end_ms - a.start_ms, r.exec_ms(works[a.task_idx]));
                    prop_assert_eq!(a.cost, r.cost(works[a.task_idx]));
                    cost_sum = cost_sum.saturating_add(a.cost);
                    spans.entry(a.resource_idx).or_default().push((a.start_ms, a.end_ms));
                }
                prop_assert_eq!(cost_sum, plan.total_cost);
                for s in spans.values_mut() {
                    s.sort_unstable();
                    for w in s.windows(2) {
                        prop_assert!(w[0].1 <= w[1].0, "overlap");
                    }
                }

                // No assigned task appears twice, none is also unscheduled.
                let mut seen = std::collections::HashSet::new();
                for a in &plan.assignments {
                    prop_assert!(seen.insert(a.task_idx));
                }
                for &u in &plan.unscheduled_tasks {
                    prop_assert!(!seen.contains(&u));
                }
            }

            /// More budget or a later deadline never hurts completion.
            #[test]
            fn qos_monotonicity(
                works in prop::collection::vec(10_000_000u64..100_000_000, 1..12),
                alg_idx in 0usize..4,
            ) {
                let rs = resources();
                let alg = Algorithm::ALL[alg_idx];
                let tight = QosConstraints { deadline_ms: MS_PER_HOUR, budget: Credits::from_gd(3) };
                let loose = QosConstraints { deadline_ms: 12 * MS_PER_HOUR, budget: Credits::from_gd(300) };
                let p_tight = schedule(alg, &works, &rs, tight, 0).unwrap();
                let p_loose = schedule(alg, &works, &rs, loose, 0).unwrap();
                prop_assert!(p_loose.assignments.len() >= p_tight.assignments.len());
            }
        }
    }

    #[test]
    fn all_algorithms_produce_valid_plans() {
        let tasks = vec![HOUR_WORK / 2; 6];
        let qos = QosConstraints { deadline_ms: 4 * MS_PER_HOUR, budget: gd(50) };
        for alg in Algorithm::ALL {
            let plan = schedule(alg, &tasks, &resources(), qos, 0).unwrap();
            assert!(plan.complete(), "{} failed to place all tasks", alg.name());
            assert!(plan.total_cost <= qos.budget);
            assert!(plan.makespan_ms <= qos.deadline_ms);
            // Assignments never overlap on one resource.
            let mut by_resource: std::collections::HashMap<usize, Vec<(u64, u64)>> =
                std::collections::HashMap::new();
            for a in &plan.assignments {
                by_resource.entry(a.resource_idx).or_default().push((a.start_ms, a.end_ms));
            }
            for spans in by_resource.values_mut() {
                spans.sort_unstable();
                for w in spans.windows(2) {
                    assert!(w[0].1 <= w[1].0, "overlap in {}", alg.name());
                }
            }
        }
    }
}
