//! Broker error type.

use std::fmt;

use gridbank_core::BankError;
use gridbank_gsp::GspError;
use gridbank_trade::TradeError;

/// Errors from the consumer-side pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BrokerError {
    /// No provider matched the discovery query.
    NoProviders,
    /// No schedule satisfies the deadline/budget constraints.
    Infeasible(String),
    /// The budget was exhausted mid-batch.
    BudgetExhausted {
        /// Jobs completed before exhaustion.
        completed: usize,
    },
    /// Negotiation with a provider failed.
    Negotiation(TradeError),
    /// Bank interaction failed.
    Bank(BankError),
    /// Provider-side failure.
    Provider(GspError),
}

impl BrokerError {
    /// Whether this failure is a transient bank-link condition — a
    /// retryable transport error or an open circuit breaker — rather
    /// than a real refusal. Transient failures mean "the bank is
    /// unreachable right now": the broker should defer the affected
    /// job and carry on (graceful degradation) instead of aborting the
    /// batch or treating the funds as gone.
    pub fn is_transient(&self) -> bool {
        match self {
            BrokerError::Bank(BankError::Net(e)) => {
                e.is_retryable() || matches!(e, gridbank_net::NetError::CircuitOpen)
            }
            _ => false,
        }
    }
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::NoProviders => write!(f, "no providers matched the query"),
            BrokerError::Infeasible(why) => write!(f, "no feasible schedule: {why}"),
            BrokerError::BudgetExhausted { completed } => {
                write!(f, "budget exhausted after {completed} jobs")
            }
            BrokerError::Negotiation(e) => write!(f, "negotiation: {e}"),
            BrokerError::Bank(e) => write!(f, "bank: {e}"),
            BrokerError::Provider(e) => write!(f, "provider: {e}"),
        }
    }
}

impl std::error::Error for BrokerError {}

impl From<TradeError> for BrokerError {
    fn from(e: TradeError) -> Self {
        BrokerError::Negotiation(e)
    }
}

impl From<BankError> for BrokerError {
    fn from(e: BankError) -> Self {
        BrokerError::Bank(e)
    }
}

impl From<GspError> for BrokerError {
    fn from(e: GspError) -> Self {
        BrokerError::Provider(e)
    }
}
