//! The assembled Grid Resource Broker.
//!
//! Figure 1's consumer-side flow: "the user submits application
//! processing requirements along with QoS requirements (e.g., deadline
//! and budget) to the Grid Resource Broker. The GRB interacts with GSP's
//! Grid Trading Service … to establish the cost of services and then
//! selects suitable GSP. It then submits user jobs to the GSP for
//! processing along with details of its chargeable account ID in the
//! GridBank or GridCheque purchased from the GridBank."

use gridbank_core::port::BankPort;
use gridbank_gsp::charging::PaymentInstrument;
use gridbank_gsp::provider::{GridServiceProvider, JobOutcome};
use gridbank_rur::Credits;

use crate::agent::GridAgent;
use crate::error::BrokerError;
use crate::job::JobBatch;
use crate::payment::PaymentModule;
use crate::scheduling::{schedule, Algorithm, ResourceView, Schedule};

/// What came back from running a batch.
#[derive(Debug)]
pub struct BrokerReport {
    /// Algorithm used.
    pub algorithm: Algorithm,
    /// The plan that was dispatched.
    pub planned: Schedule,
    /// Tasks completed and paid.
    pub completed: usize,
    /// Tasks that failed or were never dispatched.
    pub failed: usize,
    /// Total actually paid to providers.
    pub total_paid: Credits,
    /// Total itemized charges (may exceed paid when reservations capped).
    pub total_charge: Credits,
    /// Observed makespan: latest job completion minus batch start.
    pub makespan_ms: u64,
    /// Per-task outcomes, in dispatch order.
    pub outcomes: Vec<JobOutcome>,
    /// Indices (into the batch) of tasks that failed or were unplaced.
    pub failed_tasks: Vec<usize>,
}

impl BrokerReport {
    /// Fraction of the batch completed, in percent.
    pub fn completion_pct(&self) -> u32 {
        let total = self.completed.saturating_add(self.failed);
        if total == 0 {
            return 100;
        }
        self.completed.saturating_mul(100).checked_div(total).unwrap_or(0) as u32
    }
}

/// The broker.
pub struct GridResourceBroker<P: BankPort> {
    /// The consumer's certificate name.
    pub consumer_cert: String,
    /// The payment module.
    pub gbpm: PaymentModule<P>,
    /// The deployment agent.
    pub agent: GridAgent,
    /// Reservation margin over the cost estimate, percent (200 = reserve
    /// twice the estimate, since RURs also bill memory/storage/network).
    pub cheque_margin_pct: u32,
}

impl<P: BankPort> GridResourceBroker<P> {
    /// Builds a broker for a consumer identity.
    pub fn new(consumer_cert: impl Into<String>, gbpm: PaymentModule<P>) -> Self {
        GridResourceBroker {
            consumer_cert: consumer_cert.into(),
            gbpm,
            agent: GridAgent::new(0, 0, 0),
            cheque_margin_pct: 200,
        }
    }

    /// Negotiates a quote with every provider and builds resource views.
    pub fn negotiate<PP: BankPort>(
        &mut self,
        providers: &mut [GridServiceProvider<PP>],
        parallelism: u32,
        now_ms: u64,
        quote_validity_ms: u64,
    ) -> Result<Vec<ResourceView>, BrokerError> {
        let mut views = Vec::with_capacity(providers.len());
        for (idx, p) in providers.iter_mut().enumerate() {
            let quote = p.quote(now_ms, quote_validity_ms)?;
            // One view per machine: a provider with k machines is k
            // independent queues to the planner, matching the provider's
            // own least-loaded dispatch.
            for _ in 0..p.machine_count().max(1) {
                views.push(ResourceView {
                    provider_idx: idx,
                    price_per_hour: quote.rates.total_time_price_per_hour(),
                    speed: p.effective_speed(parallelism),
                    free_at_ms: now_ms,
                });
            }
        }
        Ok(views)
    }

    /// Runs a contract-net tender across the providers (the GRACE
    /// alternative to taking posted prices): announce, collect every
    /// GTS's quoted rates as bids, and award the cheapest. Returns the
    /// winning provider's index and agreed rates.
    pub fn tender<PP: BankPort>(
        &mut self,
        providers: &mut [GridServiceProvider<PP>],
        now_ms: u64,
        quote_validity_ms: u64,
    ) -> Result<(usize, gridbank_trade::rates::ServiceRates), BrokerError> {
        use gridbank_trade::negotiation::{Bid, Tender};
        if providers.is_empty() {
            return Err(BrokerError::NoProviders);
        }
        let mut tender = Tender::announce();
        for p in providers.iter_mut() {
            let quote = p.quote(now_ms, quote_validity_ms)?;
            tender.submit(Bid { provider: p.cert.clone(), rates: quote.rates })?;
        }
        let winner = tender.award()?;
        let idx = providers
            .iter()
            .position(|p| p.cert == winner.provider)
            .expect("winner came from this provider set");
        Ok((idx, winner.rates))
    }

    /// Like [`Self::run_batch`] but resubmits failed tasks up to
    /// `max_attempts` times — the broker-side resilience loop for flaky
    /// providers (execution failures consume no payment, so retries only
    /// cost what actually completes). Time advances by the previous
    /// attempt's makespan between rounds.
    pub fn run_batch_with_retry<PP: BankPort>(
        &mut self,
        algorithm: Algorithm,
        batch: &JobBatch,
        providers: &mut [GridServiceProvider<PP>],
        now_ms: u64,
        max_attempts: u32,
    ) -> Result<BrokerReport, BrokerError> {
        let mut report = self.run_batch(algorithm, batch, providers, now_ms)?;
        let mut attempt = 1;
        while !report.failed_tasks.is_empty() && attempt < max_attempts {
            attempt = attempt.saturating_add(1);
            let retry_indices = std::mem::take(&mut report.failed_tasks);
            let retry_batch = JobBatch {
                application: batch.application.clone(),
                tasks: retry_indices.iter().map(|&i| batch.tasks[i].clone()).collect(),
                qos: batch.qos,
            };
            let retry_now = now_ms.saturating_add(report.makespan_ms);
            match self.run_batch(algorithm, &retry_batch, providers, retry_now) {
                Ok(r) => {
                    report.completed = report.completed.saturating_add(r.completed);
                    report.failed = r.failed;
                    report.total_paid = report.total_paid.saturating_add(r.total_paid);
                    report.total_charge = report.total_charge.saturating_add(r.total_charge);
                    report.makespan_ms = report
                        .makespan_ms
                        .max(r.makespan_ms.saturating_add(retry_now.saturating_sub(now_ms)));
                    report.outcomes.extend(r.outcomes);
                    // Map retry-batch indices back into the original batch.
                    report.failed_tasks =
                        r.failed_tasks.iter().map(|&i| retry_indices[i]).collect();
                }
                Err(_) => {
                    // Whole retry round infeasible (e.g. deadline passed):
                    // the outstanding tasks stay failed.
                    report.failed_tasks = retry_indices;
                    break;
                }
            }
        }
        Ok(report)
    }

    /// Runs a whole batch: negotiate → schedule → dispatch with cheques →
    /// settle, enforcing the batch QoS budget throughout.
    pub fn run_batch<PP: BankPort>(
        &mut self,
        algorithm: Algorithm,
        batch: &JobBatch,
        providers: &mut [GridServiceProvider<PP>],
        now_ms: u64,
    ) -> Result<BrokerReport, BrokerError> {
        if providers.is_empty() {
            return Err(BrokerError::NoProviders);
        }
        self.gbpm.ensure_account(None)?;
        let parallelism = batch.tasks.first().map(|t| t.parallelism).unwrap_or(1);
        let quote_validity = batch.qos.deadline_ms.saturating_sub(now_ms).max(1);
        let views = self.negotiate(providers, parallelism, now_ms, quote_validity)?;

        let works: Vec<u64> = batch.tasks.iter().map(|t| t.work).collect();
        let plan = schedule(algorithm, &works, &views, batch.qos, now_ms)?;
        if plan.assignments.is_empty() && !batch.is_empty() {
            return Err(BrokerError::Infeasible(format!(
                "{} tasks, none schedulable under deadline {} / budget {}",
                batch.len(),
                batch.qos.deadline_ms,
                batch.qos.budget
            )));
        }

        // Re-quote once per provider actually used and hold those rates
        // for the whole batch (one rates agreement per provider, §2.1).
        let mut agreed = Vec::with_capacity(providers.len());
        for p in providers.iter_mut() {
            agreed.push(p.quote(now_ms, quote_validity)?.rates);
        }

        let mut report = BrokerReport {
            algorithm,
            completed: 0,
            failed: plan.unscheduled,
            total_paid: Credits::ZERO,
            total_charge: Credits::ZERO,
            makespan_ms: 0,
            outcomes: Vec::with_capacity(plan.assignments.len()),
            failed_tasks: plan.unscheduled_tasks.clone(),
            planned: Schedule::default(),
        };

        for assignment in &plan.assignments {
            let view = &views[assignment.resource_idx];
            let provider = &mut providers[view.provider_idx];
            // Reserve estimate × margin, capped by remaining budget.
            let est = assignment.cost.max(Credits::from_micro(1));
            let with_margin = est.mul_ratio(self.cheque_margin_pct as u64, 100).unwrap_or(est);
            let reserve = with_margin.min(self.gbpm.tracker.remaining());
            if !reserve.is_positive() {
                report.failed = report.failed.saturating_add(1);
                report.failed_tasks.push(assignment.task_idx);
                continue;
            }
            let cheque = match self.gbpm.obtain_cheque(&provider.cert, reserve, quote_validity) {
                Ok(c) => c,
                Err(_) => {
                    report.failed = report.failed.saturating_add(1);
                    report.failed_tasks.push(assignment.task_idx);
                    continue;
                }
            };
            let job = &batch.tasks[assignment.task_idx];
            let rates = &agreed[view.provider_idx];
            match self.agent.run(
                provider,
                &self.consumer_cert,
                PaymentInstrument::Cheque(cheque.clone()),
                job,
                rates,
                now_ms,
            ) {
                Ok(outcome) => {
                    self.gbpm.settle_cheque(&cheque, outcome.paid);
                    report.completed = report.completed.saturating_add(1);
                    report.total_paid = report.total_paid.saturating_add(outcome.paid);
                    report.total_charge = report.total_charge.saturating_add(outcome.charge);
                    report.makespan_ms =
                        report.makespan_ms.max(outcome.end_ms.saturating_sub(now_ms));
                    report.outcomes.push(outcome);
                }
                Err(_) => {
                    // The cheque was never redeemed; its lock will expire
                    // at the bank. Release the budget commitment.
                    self.gbpm.tracker.release(cheque.body.reserved);
                    report.failed = report.failed.saturating_add(1);
                    report.failed_tasks.push(assignment.task_idx);
                }
            }
        }
        report.planned = plan;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::QosConstraints;
    use gridbank_core::api::BankRequest;
    use gridbank_core::clock::Clock;
    use gridbank_core::port::InProcessBank;
    use gridbank_core::server::{GridBank, GridBankConfig};
    use gridbank_crypto::cert::SubjectName;
    use gridbank_meter::levels::AccountingLevel;
    use gridbank_meter::machine::{JobSpec, MachineSpec, OsFlavour};
    use gridbank_rur::record::ChargeableItem;
    use gridbank_rur::units::MS_PER_HOUR;
    use gridbank_trade::pricing::FlatPricing;
    use gridbank_trade::rates::ServiceRates;
    use std::sync::Arc;

    struct World {
        bank: Arc<GridBank>,
        broker: GridResourceBroker<InProcessBank>,
        providers: Vec<GridServiceProvider<InProcessBank>>,
    }

    fn provider(
        bank: &Arc<GridBank>,
        name: &str,
        speed: u32,
        price: Credits,
        seed: u64,
    ) -> GridServiceProvider<InProcessBank> {
        let cert = format!("/O=Grid/OU=GSP/CN={name}");
        let subject = SubjectName(cert.clone());
        let mut port = InProcessBank::new(bank.clone(), subject.clone());
        port.create_account(None).unwrap();
        GridServiceProvider::new(
            gridbank_gsp::provider::GspConfig {
                cert,
                host: format!("{name}.grid.org"),
                machines: vec![MachineSpec {
                    host: format!("{name}-node"),
                    os: OsFlavour::Linux,
                    speed,
                    cores: 4,
                    memory_mb: 16_384,
                }],
                base_rates: ServiceRates::new().with(ChargeableItem::Cpu, price),
                pool_size: 8,
                accounting_level: AccountingLevel::Standard,
                machine_seed: seed,
            },
            bank.verifying_key(),
            InProcessBank::new(bank.clone(), subject),
            Box::new(FlatPricing),
        )
    }

    fn world(budget_gd: i64) -> World {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 8, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let alice = SubjectName::new("UWA", "CSSE", "alice");
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let mut gbpm = PaymentModule::new(
            InProcessBank::new(bank.clone(), alice.clone()),
            Credits::from_gd(budget_gd),
        );
        let account = gbpm.ensure_account(None).unwrap();
        bank.handle(
            &admin,
            BankRequest::AdminDeposit { account, amount: Credits::from_gd(1_000_000) },
        );
        let providers = vec![
            provider(&bank, "cheap", 100, Credits::from_gd(1), 1),
            provider(&bank, "fast", 400, Credits::from_gd(8), 2),
        ];
        World { bank, broker: GridResourceBroker::new(alice.0, gbpm), providers }
    }

    fn batch(count: usize, work: u64, deadline_ms: u64, budget_gd: i64) -> JobBatch {
        JobBatch::sweep(
            "sweep",
            JobSpec {
                work,
                parallelism: 1,
                memory_mb: 64,
                storage_mb: 0,
                network_mb: 1,
                sys_pct: 5,
            },
            count,
            QosConstraints { deadline_ms, budget: Credits::from_gd(budget_gd) },
        )
    }

    #[test]
    fn batch_completes_within_qos() {
        let mut w = world(1_000);
        // 6 tasks × ~18 min each on the slow machine.
        let b = batch(6, 108_000_000, 4 * MS_PER_HOUR, 100);
        let report = w.broker.run_batch(Algorithm::TimeOpt, &b, &mut w.providers, 0).unwrap();
        assert_eq!(report.completed, 6, "report: {report:?}");
        assert_eq!(report.failed, 0);
        assert_eq!(report.completion_pct(), 100);
        assert!(report.total_paid.is_positive());
        // Observed makespan respects the deadline (within jitter).
        assert!(report.makespan_ms <= 4 * MS_PER_HOUR + MS_PER_HOUR / 10);
        // Budget was honoured.
        assert!(w.broker.gbpm.tracker.spent <= Credits::from_gd(100));
        // Providers were actually paid through the bank.
        let paid: Credits =
            w.providers.iter_mut().map(|p| p.gbcm.port.my_account().unwrap().available).sum();
        assert_eq!(paid, report.total_paid);
    }

    #[test]
    fn cost_opt_cheaper_time_opt_faster() {
        let mut w1 = world(1_000);
        let b = batch(8, 54_000_000, 2 * MS_PER_HOUR, 500);
        let cost_report =
            w1.broker.run_batch(Algorithm::CostOpt, &b, &mut w1.providers, 0).unwrap();
        let mut w2 = world(1_000);
        let time_report =
            w2.broker.run_batch(Algorithm::TimeOpt, &b, &mut w2.providers, 0).unwrap();
        assert_eq!(cost_report.completed, 8);
        assert_eq!(time_report.completed, 8);
        assert!(cost_report.total_paid <= time_report.total_paid);
        assert!(time_report.makespan_ms <= cost_report.makespan_ms);
    }

    #[test]
    fn infeasible_batch_is_reported() {
        let mut w = world(1_000);
        // 1 task needing ~15 hours on the fast machine, 1-hour deadline.
        let b = batch(1, 21_600_000_000, MS_PER_HOUR, 100);
        assert!(matches!(
            w.broker.run_batch(Algorithm::TimeOpt, &b, &mut w.providers, 0),
            Err(BrokerError::Infeasible(_))
        ));
    }

    #[test]
    fn budget_shortfall_degrades_gracefully() {
        let mut w = world(2);
        // Tasks cost ~0.3 G$ each (18 min at 1 G$/h) plus margin; a 2 G$
        // budget cannot cover 20 of them.
        let b = batch(20, 108_000_000, 100 * MS_PER_HOUR, 2);
        let report = w.broker.run_batch(Algorithm::CostOpt, &b, &mut w.providers, 0).unwrap();
        assert!(report.completed > 0);
        assert!(report.failed > 0);
        assert!(report.completed + report.failed == 20);
        assert!(w.broker.gbpm.tracker.spent <= Credits::from_gd(2));
    }

    #[test]
    fn tender_awards_cheapest_provider() {
        let mut w = world(100);
        let (idx, rates) = w.broker.tender(&mut w.providers, 0, 10_000).unwrap();
        assert_eq!(w.providers[idx].cert, "/O=Grid/OU=GSP/CN=cheap");
        assert_eq!(rates.price(ChargeableItem::Cpu), Some(Credits::from_gd(1)));
        let mut empty: Vec<GridServiceProvider<InProcessBank>> = Vec::new();
        assert!(matches!(w.broker.tender(&mut empty, 0, 10_000), Err(BrokerError::NoProviders)));
    }

    #[test]
    fn retry_recovers_from_flaky_providers() {
        let mut w = world(1_000);
        // Both providers fail half their executions.
        for p in &mut w.providers {
            p.inject_failures(50, 0xFA11);
        }
        let b = batch(10, 54_000_000, 48 * MS_PER_HOUR, 500);

        // One attempt: some failures are expected (seeded: statistically
        // certain at 50% over 10 jobs).
        let mut w1 = world(1_000);
        for p in &mut w1.providers {
            p.inject_failures(50, 0xFA11);
        }
        let single = w1.broker.run_batch(Algorithm::TimeOpt, &b, &mut w1.providers, 0).unwrap();
        assert!(single.failed > 0, "fault injection had no effect");
        assert_eq!(single.failed_tasks.len(), single.failed);

        // With retries the batch completes.
        let report =
            w.broker.run_batch_with_retry(Algorithm::TimeOpt, &b, &mut w.providers, 0, 10).unwrap();
        assert_eq!(report.completed, 10, "{report:?}");
        assert!(report.failed_tasks.is_empty());
        // Failed executions were never paid: paid equals sum of outcomes.
        let paid: Credits = report.outcomes.iter().map(|o| o.paid).sum();
        assert_eq!(paid, report.total_paid);
    }

    #[test]
    fn retry_gives_up_after_max_attempts() {
        let mut w = world(1_000);
        for p in &mut w.providers {
            p.inject_failures(100, 1); // always fails
        }
        let b = batch(4, 54_000_000, 48 * MS_PER_HOUR, 500);
        let report =
            w.broker.run_batch_with_retry(Algorithm::TimeOpt, &b, &mut w.providers, 0, 3).unwrap();
        assert_eq!(report.completed, 0);
        assert_eq!(report.failed_tasks.len(), 4);
        // Nothing was paid for failed work.
        assert_eq!(report.total_paid, Credits::ZERO);
        assert_eq!(w.broker.gbpm.tracker.spent, Credits::ZERO);
    }

    #[test]
    fn no_providers_error() {
        let mut w = world(10);
        let b = batch(1, 1_000, 1_000, 10);
        let mut empty: Vec<GridServiceProvider<InProcessBank>> = Vec::new();
        assert!(matches!(
            w.broker.run_batch(Algorithm::CostOpt, &b, &mut empty, 0),
            Err(BrokerError::NoProviders)
        ));
        let _ = &w.bank;
    }
}
