//! The Grid Agent.
//!
//! §2.2: the broker "deploys the Grid Agent responsible for setting up
//! execution environment on GSP's machine and downloading the application
//! and data from remote locations if they are not already on the
//! machine". The agent models that setup as a fixed deploy latency plus a
//! per-MB staging cost, and caches staged applications per provider so
//! repeat submissions skip the download — exactly the "if they are not
//! already on the machine" clause.

use std::collections::HashSet;

use gridbank_core::port::BankPort;
use gridbank_gsp::charging::PaymentInstrument;
use gridbank_gsp::provider::{GridServiceProvider, JobOutcome};
use gridbank_meter::machine::JobSpec;
use gridbank_trade::rates::ServiceRates;

use crate::error::BrokerError;

/// The agent and its staging cache.
pub struct GridAgent {
    /// Environment setup latency per submission, virtual ms.
    pub setup_ms: u64,
    /// Staging latency per MB of application+data on first contact.
    pub staging_ms_per_mb: u64,
    /// Application size to stage, MB.
    pub app_size_mb: u64,
    staged: HashSet<String>,
}

impl GridAgent {
    /// Creates an agent with the given overheads.
    pub fn new(setup_ms: u64, staging_ms_per_mb: u64, app_size_mb: u64) -> Self {
        GridAgent { setup_ms, staging_ms_per_mb, app_size_mb, staged: HashSet::new() }
    }

    /// Deploy overhead for a submission to `provider_cert` at this point:
    /// setup plus (first time only) staging.
    pub fn deploy_overhead_ms(&mut self, provider_cert: &str) -> u64 {
        let staging = if self.staged.insert(provider_cert.to_string()) {
            self.staging_ms_per_mb.saturating_mul(self.app_size_mb)
        } else {
            0
        };
        self.setup_ms.saturating_add(staging)
    }

    /// True if the application is already staged at the provider.
    pub fn is_staged(&self, provider_cert: &str) -> bool {
        self.staged.contains(provider_cert)
    }

    /// Deploys and runs one job: overheads shift the start time, then the
    /// provider executes the §2 pipeline.
    #[allow(clippy::too_many_arguments)]
    pub fn run<P: BankPort>(
        &mut self,
        provider: &mut GridServiceProvider<P>,
        consumer_cert: &str,
        instrument: PaymentInstrument,
        job: &JobSpec,
        agreed: &ServiceRates,
        now_ms: u64,
    ) -> Result<JobOutcome, BrokerError> {
        let start = now_ms.saturating_add(self.deploy_overhead_ms(&provider.cert));
        Ok(provider.execute_job(consumer_cert, instrument, job, agreed, start)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staging_happens_once_per_provider() {
        let mut agent = GridAgent::new(100, 10, 50);
        assert!(!agent.is_staged("/CN=gsp-a"));
        // First contact: setup + 500ms staging.
        assert_eq!(agent.deploy_overhead_ms("/CN=gsp-a"), 600);
        assert!(agent.is_staged("/CN=gsp-a"));
        // Second contact: setup only.
        assert_eq!(agent.deploy_overhead_ms("/CN=gsp-a"), 100);
        // A different provider stages afresh.
        assert_eq!(agent.deploy_overhead_ms("/CN=gsp-b"), 600);
    }

    #[test]
    fn zero_overhead_agent() {
        let mut agent = GridAgent::new(0, 0, 0);
        assert_eq!(agent.deploy_overhead_ms("/CN=x"), 0);
        assert_eq!(agent.deploy_overhead_ms("/CN=x"), 0);
    }
}
