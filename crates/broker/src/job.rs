//! Parameterized-application job model.
//!
//! Nimrod-G (the paper's reference broker) runs *parameter sweeps*: many
//! near-identical tasks differing in input parameters. [`JobBatch`]
//! models such a sweep; [`QosConstraints`] carries the user's deadline
//! and budget (§1: "resource allocation is performed based on users
//! quality-of-service requirements/constraints (e.g., deadline and
//! budget)").

use gridbank_meter::machine::JobSpec;
use gridbank_rur::Credits;

/// The user's QoS constraints for a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QosConstraints {
    /// Absolute virtual-time deadline (ms).
    pub deadline_ms: u64,
    /// Total budget for the batch.
    pub budget: Credits,
}

/// A sweep of tasks.
#[derive(Clone, Debug)]
pub struct JobBatch {
    /// Batch name (application name in RURs).
    pub application: String,
    /// The tasks; for classic sweeps these share one shape.
    pub tasks: Vec<JobSpec>,
    /// QoS constraints.
    pub qos: QosConstraints,
}

impl JobBatch {
    /// Builds a homogeneous sweep of `count` tasks.
    pub fn sweep(application: &str, template: JobSpec, count: usize, qos: QosConstraints) -> Self {
        JobBatch { application: application.to_string(), tasks: vec![template; count], qos }
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total abstract work in the batch.
    pub fn total_work(&self) -> u64 {
        self.tasks.iter().map(|t| t.work).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_replicates_template() {
        let qos = QosConstraints { deadline_ms: 1_000, budget: Credits::from_gd(10) };
        let batch = JobBatch::sweep("render", JobSpec::cpu_bound(5_000), 8, qos);
        assert_eq!(batch.len(), 8);
        assert!(!batch.is_empty());
        assert_eq!(batch.total_work(), 40_000);
        assert_eq!(batch.application, "render");
        assert_eq!(batch.qos.budget, Credits::from_gd(10));
    }

    #[test]
    fn empty_batch() {
        let qos = QosConstraints { deadline_ms: 1, budget: Credits::ZERO };
        let batch = JobBatch::sweep("x", JobSpec::cpu_bound(1), 0, qos);
        assert!(batch.is_empty());
        assert_eq!(batch.total_work(), 0);
    }
}
