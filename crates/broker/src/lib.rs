//! # gridbank-broker
//!
//! The **Grid Service Consumer** side: a Nimrod-G-style Grid Resource
//! Broker (paper §2.2) with the GridBank Payment Module.
//!
//! * [`job`] — parameterized application model: a sweep of tasks with
//!   quality-of-service constraints ("deadline and budget", §1).
//! * [`scheduling`] — the deadline-and-budget-constrained (DBC)
//!   algorithms from the cited Nimrod-G work \[2,5\]: cost-optimization,
//!   time-optimization, cost-time-optimization, and conservative-time.
//! * [`payment`] — the **GridBank Payment Module** (GBPM): manages funds
//!   on the user's behalf ("The user can then set the budget to prevent
//!   overspending", §2.2), obtains payment instruments, and submits jobs
//!   through the Grid Agent.
//! * [`agent`] — the Grid Agent that sets up the execution environment on
//!   the GSP machine (simulated as deploy overhead) and runs the job.
//! * [`broker`] — the assembled broker: discovery via the Grid Market
//!   Directory, rate negotiation with each GSP's Grid Trade Server,
//!   scheduling, dispatch, and QoS accounting.
//! * [`auction`] — consumer-side auction participation: drives an
//!   announced [`gridbank_trade::session::AuctionSession`] for a pool
//!   of valuations and settles the win through the live bank under the
//!   session's stable idempotency key (exactly-once).

// The workspace `clippy::arithmetic_side_effects` wall guards
// production money paths; test fixtures may build inputs with plain
// arithmetic (see docs/STATIC_ANALYSIS.md §lint wall).
#![cfg_attr(test, allow(clippy::arithmetic_side_effects))]

pub mod agent;
pub mod auction;
pub mod broker;
pub mod error;
pub mod job;
pub mod payment;
pub mod scheduling;

pub use auction::{run_auction, settle_award, AuctionBidder};
pub use broker::{BrokerReport, GridResourceBroker};
pub use error::BrokerError;
pub use job::{JobBatch, QosConstraints};
pub use payment::PaymentModule;
pub use scheduling::{Algorithm, ResourceView, Schedule};
