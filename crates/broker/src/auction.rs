//! Consumer-side auction participation and exactly-once settlement.
//!
//! The broker represents a pool of consumers in a provider's announced
//! auction (GRACE economic-model menu): it drives the
//! [`AuctionSession`] with each consumer's private valuation —
//! minimal-raise proxy bidding in English auctions, strike-at-valuation
//! in Dutch auctions, truthful sealed bids otherwise — and settles the
//! win through the live bank under the session's stable idempotency
//! key, so a retried settlement RPC applies **exactly once**.

use gridbank_core::api::{BankRequest, BankResponse};
use gridbank_core::client::GridBankClient;
use gridbank_core::db::AccountId;
use gridbank_core::direct::TransferConfirmation;
use gridbank_core::BankError;
use gridbank_rur::Credits;
use gridbank_trade::session::{AuctionKind, AuctionSession, Settlement};
use gridbank_trade::TradeError;

use crate::error::BrokerError;

/// One consumer the broker represents: identity plus the most they are
/// privately willing to pay.
#[derive(Clone, Debug)]
pub struct AuctionBidder {
    /// Bidder identity (certificate name).
    pub bidder: String,
    /// Private valuation: the bidder never pays above this.
    pub valuation: Credits,
}

/// Drives an announced auction to its settlement on behalf of a bidder
/// pool.
///
/// Strategy per mechanism:
/// * **English** — proxy bidding: each round, every outbid consumer
///   whose valuation covers the current floor raises by exactly the
///   floor (reserve first, standing + increment after). The price walks
///   up until only one bidder's valuation survives.
/// * **Dutch** — the clock ticks down until the first consumer whose
///   valuation meets the asking price takes it.
/// * **Sealed / Vickrey** — every consumer submits their valuation
///   (truthful bidding is the dominant strategy under Vickrey; the
///   uniform pool keeps first-price comparable).
///
/// Returns the [`Settlement`] to push through [`settle_award`], or
/// [`TradeError::NoMatch`] when no valuation met the market.
pub fn run_auction(
    session: &mut AuctionSession,
    bidders: &[AuctionBidder],
) -> Result<Settlement, TradeError> {
    gridbank_obs::count("auction.sessions", 1);
    let settlement = match session.announcement().kind {
        AuctionKind::English { reserve, increment } => {
            let mut floor = reserve;
            let mut standing: Option<usize> = None;
            loop {
                let mut raised = false;
                for (i, b) in bidders.iter().enumerate() {
                    if standing == Some(i) || b.valuation < floor {
                        continue;
                    }
                    session.submit_bid(&b.bidder, floor)?;
                    gridbank_obs::count("auction.bids", 1);
                    standing = Some(i);
                    floor = floor
                        .checked_add(increment)
                        .map_err(|e| TradeError::Numeric(e.to_string()))?;
                    raised = true;
                }
                if !raised {
                    break;
                }
            }
            session.close()?
        }
        AuctionKind::Dutch { .. } => loop {
            let price = session.current_price().ok_or_else(|| {
                TradeError::ProtocolViolation("dutch session lost its price clock".into())
            })?;
            if let Some(b) = bidders.iter().find(|b| b.valuation >= price) {
                gridbank_obs::count("auction.bids", 1);
                break session.take(&b.bidder)?;
            }
            session.tick()?;
        },
        AuctionKind::FirstPriceSealed { .. } | AuctionKind::Vickrey { .. } => {
            for b in bidders {
                session.submit_bid(&b.bidder, b.valuation)?;
                gridbank_obs::count("auction.bids", 1);
            }
            session.close()?
        }
    };
    gridbank_obs::count("auction.awards", 1);
    gridbank_obs::count("auction.volume_micro", settlement.award.price.metric_micro());
    Ok(settlement)
}

/// Settles an auction win through the live bank: the winner pays the
/// seller by direct transfer **under the settlement's stable
/// idempotency key**. Reconnects, timeouts, and deliberate re-sends of
/// the same settlement all dedup bank-side to one applied transfer —
/// the bank replays the remembered confirmation instead.
pub fn settle_award(
    winner: &mut GridBankClient,
    settlement: &Settlement,
    seller_account: AccountId,
    seller_address: &str,
) -> Result<TransferConfirmation, BrokerError> {
    let _span = gridbank_obs::span("broker.payment", "auction_settle");
    let request = BankRequest::DirectTransfer {
        to: seller_account,
        amount: settlement.award.price,
        recipient_address: seller_address.to_string(),
    };
    match winner.call_keyed(Some(settlement.idem_key), &request).map_err(BrokerError::Bank)? {
        BankResponse::Confirmed(confirmation) => {
            gridbank_obs::count("auction.settled", 1);
            Ok(confirmation)
        }
        other => {
            Err(BrokerError::Bank(BankError::Protocol(format!("unexpected response {other:?}"))))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_trade::session::Announcement;

    fn gd(v: i64) -> Credits {
        Credits::from_gd(v)
    }

    fn pool(valuations: &[i64]) -> Vec<AuctionBidder> {
        valuations
            .iter()
            .enumerate()
            .map(|(i, &v)| AuctionBidder { bidder: format!("c{i}"), valuation: gd(v) })
            .collect()
    }

    fn announce(kind: AuctionKind) -> AuctionSession {
        AuctionSession::open(Announcement {
            auction_id: 7,
            seller: "/O=Grid/OU=GSP/CN=alpha".into(),
            item: "burst capacity".into(),
            kind,
        })
    }

    #[test]
    fn english_price_walks_to_second_valuation() {
        let mut s = announce(AuctionKind::English { reserve: gd(2), increment: gd(1) });
        let settlement = run_auction(&mut s, &pool(&[5, 9, 3])).unwrap();
        // The 9-valuation bidder outlasts the 5-valuation one, paying at
        // most one increment above the runner-up's last affordable raise.
        assert_eq!(settlement.award.winner, "c1");
        assert!(settlement.award.price >= gd(2));
        assert!(settlement.award.price <= gd(9));
        assert!(
            settlement.award.price >= gd(5),
            "price {} below runner-up",
            settlement.award.price
        );
    }

    #[test]
    fn dutch_first_affordable_take() {
        let mut s = announce(AuctionKind::Dutch { start: gd(10), decrement: gd(2), floor: gd(2) });
        let settlement = run_auction(&mut s, &pool(&[5, 7])).unwrap();
        // Clock: 10 → 8 → 6; at 6 the 7-valuation consumer strikes.
        assert_eq!(settlement.award.winner, "c1");
        assert_eq!(settlement.award.price, gd(6));
    }

    #[test]
    fn dutch_dies_when_nobody_can_pay_the_floor() {
        let mut s = announce(AuctionKind::Dutch { start: gd(10), decrement: gd(3), floor: gd(6) });
        let err = run_auction(&mut s, &pool(&[2, 3])).unwrap_err();
        assert!(matches!(err, TradeError::NoMatch(_)));
    }

    #[test]
    fn vickrey_truthful_pool_pays_second_valuation() {
        let mut s = announce(AuctionKind::Vickrey { reserve: gd(1) });
        let settlement = run_auction(&mut s, &pool(&[4, 8, 6])).unwrap();
        assert_eq!(settlement.award.winner, "c1");
        assert_eq!(settlement.award.price, gd(6));
    }

    #[test]
    fn no_qualifying_valuation_is_no_match() {
        let mut s = announce(AuctionKind::English { reserve: gd(50), increment: gd(1) });
        assert!(matches!(run_auction(&mut s, &pool(&[5, 9])), Err(TradeError::NoMatch(_))));
    }
}
