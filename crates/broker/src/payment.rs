//! The GridBank Payment Module (GBPM).
//!
//! §2.2: "GRB interacts with GridBank Payment Module to manage funds on
//! user's behalf. The user can then set the budget to prevent
//! overspending." §6: "GridBank Payment Module receives requests for job
//! execution from the Grid Resource Broker, obtains a payment instrument
//! from the GridBank, forwards the payment to GBCM and submits the job."

use gridbank_core::cheque::GridCheque;
use gridbank_core::client::ClientHashChain;
use gridbank_core::db::AccountId;
use gridbank_core::direct::TransferConfirmation;
use gridbank_core::port::BankPort;
use gridbank_rur::Credits;

use crate::error::BrokerError;

/// Budget bookkeeping: the user's cap, what has been spent, and what is
/// committed to not-yet-settled instruments.
#[derive(Clone, Copy, Debug, Default)]
pub struct BudgetTracker {
    /// The user's total budget.
    pub budget: Credits,
    /// Finalized spending.
    pub spent: Credits,
    /// Value locked in outstanding instruments.
    pub committed: Credits,
}

impl BudgetTracker {
    /// Creates a tracker with the given cap.
    pub fn new(budget: Credits) -> Self {
        BudgetTracker { budget, ..Default::default() }
    }

    /// Headroom available for new commitments.
    pub fn remaining(&self) -> Credits {
        self.budget
            .checked_sub(self.spent)
            .and_then(|r| r.checked_sub(self.committed))
            .unwrap_or(Credits::ZERO)
            .max(Credits::ZERO)
    }

    /// Reserves headroom for a new instrument.
    pub fn commit(&mut self, amount: Credits) -> Result<(), BrokerError> {
        if amount > self.remaining() {
            return Err(BrokerError::BudgetExhausted { completed: 0 });
        }
        self.committed = self.committed.saturating_add(amount);
        Ok(())
    }

    /// Settles an instrument: `paid` becomes spending, the rest of the
    /// commitment is released.
    pub fn settle(&mut self, committed: Credits, paid: Credits) {
        self.committed = self.committed.checked_sub(committed).unwrap_or(Credits::ZERO);
        self.spent = self.spent.saturating_add(paid);
    }

    /// Releases a commitment entirely (instrument unused).
    pub fn release(&mut self, committed: Credits) {
        self.committed = self.committed.checked_sub(committed).unwrap_or(Credits::ZERO);
    }
}

/// The payment module: a bank port plus budget tracking.
pub struct PaymentModule<P: BankPort> {
    /// The bank port the module drives.
    pub port: P,
    /// Budget state.
    pub tracker: BudgetTracker,
    account: Option<AccountId>,
    /// Instrument requests that failed on a *transient* bank-link
    /// condition (retryable transport error / open circuit). The
    /// commitment was rolled back; the broker can re-issue these once
    /// the bank is reachable again instead of failing the batch.
    pub deferred: u64,
}

/// Classifies a bank failure for degraded-mode accounting: transient
/// link conditions count as deferrals, everything else propagates as-is.
fn note_degraded(e: &BrokerError, deferred: &mut u64) {
    if e.is_transient() {
        *deferred = deferred.saturating_add(1);
        gridbank_obs::count("broker.payment.deferred", 1);
    }
}

impl<P: BankPort> PaymentModule<P> {
    /// Wraps a port with a budget.
    pub fn new(port: P, budget: Credits) -> Self {
        PaymentModule { port, tracker: BudgetTracker::new(budget), account: None, deferred: 0 }
    }

    /// Ensures the user has an account (creating one on first use) and
    /// returns its id.
    pub fn ensure_account(
        &mut self,
        organization: Option<String>,
    ) -> Result<AccountId, BrokerError> {
        if let Some(id) = self.account {
            return Ok(id);
        }
        let id = match self.port.my_account() {
            Ok(record) => record.id,
            Err(_) => self.port.create_account(organization)?,
        };
        self.account = Some(id);
        Ok(id)
    }

    /// Current bank balance (available).
    pub fn balance(&mut self) -> Result<Credits, BrokerError> {
        Ok(self.port.my_account()?.available)
    }

    /// Obtains a cheque within the budget; the commitment is tracked.
    pub fn obtain_cheque(
        &mut self,
        payee_cert: &str,
        amount: Credits,
        validity_ms: u64,
    ) -> Result<GridCheque, BrokerError> {
        let _span = gridbank_obs::span("broker.payment", "obtain_cheque");
        self.tracker.commit(amount)?;
        match self.port.request_cheque(payee_cert, amount, validity_ms) {
            Ok(c) => Ok(c),
            Err(e) => {
                self.tracker.release(amount);
                let e: BrokerError = e.into();
                note_degraded(&e, &mut self.deferred);
                Err(e)
            }
        }
    }

    /// Settles a cheque outcome against the budget.
    pub fn settle_cheque(&mut self, cheque: &GridCheque, paid: Credits) {
        let _span = gridbank_obs::span("broker.payment", "settle_cheque");
        self.tracker.settle(cheque.body.reserved, paid);
    }

    /// Obtains a hash chain within the budget.
    pub fn obtain_chain(
        &mut self,
        payee_cert: &str,
        length: u32,
        value_per_word: Credits,
        validity_ms: u64,
    ) -> Result<ClientHashChain, BrokerError> {
        let _span = gridbank_obs::span("broker.payment", "obtain_chain");
        let total =
            value_per_word.checked_mul(length as i128).map_err(|e| BrokerError::Bank(e.into()))?;
        self.tracker.commit(total)?;
        match self.port.request_hash_chain(payee_cert, length, value_per_word, validity_ms) {
            Ok(c) => Ok(c),
            Err(e) => {
                self.tracker.release(total);
                let e: BrokerError = e.into();
                note_degraded(&e, &mut self.deferred);
                Err(e)
            }
        }
    }

    /// Pay-before-use: direct transfer of a fixed price.
    pub fn prepay(
        &mut self,
        to: AccountId,
        amount: Credits,
        recipient_address: &str,
    ) -> Result<TransferConfirmation, BrokerError> {
        let _span = gridbank_obs::span("broker.payment", "prepay");
        self.tracker.commit(amount)?;
        match self.port.direct_transfer(to, amount, recipient_address) {
            Ok(conf) => {
                self.tracker.settle(amount, amount);
                Ok(conf)
            }
            Err(e) => {
                self.tracker.release(amount);
                let e: BrokerError = e.into();
                note_degraded(&e, &mut self.deferred);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_core::api::BankRequest;
    use gridbank_core::clock::Clock;
    use gridbank_core::port::InProcessBank;
    use gridbank_core::server::{GridBank, GridBankConfig};
    use gridbank_crypto::cert::SubjectName;
    use std::sync::Arc;

    fn setup(budget: i64) -> (Arc<GridBank>, PaymentModule<InProcessBank>, SubjectName) {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 6, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let alice = SubjectName::new("UWA", "CSSE", "alice");
        let module = PaymentModule::new(
            InProcessBank::new(bank.clone(), alice.clone()),
            Credits::from_gd(budget),
        );
        (bank, module, alice)
    }

    #[test]
    fn tracker_arithmetic() {
        let mut t = BudgetTracker::new(Credits::from_gd(10));
        assert_eq!(t.remaining(), Credits::from_gd(10));
        t.commit(Credits::from_gd(6)).unwrap();
        assert_eq!(t.remaining(), Credits::from_gd(4));
        assert!(t.commit(Credits::from_gd(5)).is_err());
        // Paid 2 of the 6 committed.
        t.settle(Credits::from_gd(6), Credits::from_gd(2));
        assert_eq!(t.spent, Credits::from_gd(2));
        assert_eq!(t.remaining(), Credits::from_gd(8));
        t.commit(Credits::from_gd(3)).unwrap();
        t.release(Credits::from_gd(3));
        assert_eq!(t.remaining(), Credits::from_gd(8));
    }

    #[test]
    fn ensure_account_is_idempotent() {
        let (_bank, mut m, _alice) = setup(10);
        let a = m.ensure_account(Some("UWA".into())).unwrap();
        let b = m.ensure_account(None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cheque_respects_budget_and_settles() {
        let (bank, mut m, _alice) = setup(10);
        let account = m.ensure_account(None).unwrap();
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) });
        // GSP account for the payee.
        let gsp = SubjectName::new("O", "U", "gsp");
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp);
        gsp_port.create_account(None).unwrap();

        let cheque = m.obtain_cheque("/O=O/OU=U/CN=gsp", Credits::from_gd(6), 10_000).unwrap();
        assert_eq!(m.tracker.remaining(), Credits::from_gd(4));
        // Over-budget cheque refused even though the bank balance allows.
        assert!(matches!(
            m.obtain_cheque("/O=O/OU=U/CN=gsp", Credits::from_gd(5), 10_000),
            Err(BrokerError::BudgetExhausted { .. })
        ));
        m.settle_cheque(&cheque, Credits::from_gd(2));
        assert_eq!(m.tracker.spent, Credits::from_gd(2));
        assert_eq!(m.tracker.remaining(), Credits::from_gd(8));
    }

    #[test]
    fn transient_bank_failures_count_as_deferrals() {
        use gridbank_core::error::BankError;
        use gridbank_net::NetError;

        struct UnreachableBank;
        impl BankPort for UnreachableBank {
            fn create_account(&mut self, _o: Option<String>) -> Result<AccountId, BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
            fn my_account(&mut self) -> Result<gridbank_core::db::AccountRecord, BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
            fn check_funds(&mut self, _a: AccountId, _m: Credits) -> Result<(), BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
            fn direct_transfer(
                &mut self,
                _to: AccountId,
                _m: Credits,
                _r: &str,
            ) -> Result<TransferConfirmation, BankError> {
                Err(BankError::Net(NetError::CircuitOpen))
            }
            fn request_cheque(
                &mut self,
                _p: &str,
                _m: Credits,
                _v: u64,
            ) -> Result<GridCheque, BankError> {
                Err(BankError::Net(NetError::Disconnected))
            }
            fn redeem_cheque(
                &mut self,
                _c: GridCheque,
                _r: gridbank_rur::record::ResourceUsageRecord,
            ) -> Result<(Credits, Credits), BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
            fn request_hash_chain(
                &mut self,
                _p: &str,
                _l: u32,
                _v: Credits,
                _t: u64,
            ) -> Result<ClientHashChain, BankError> {
                Err(BankError::NotAuthorized("nope".into()))
            }
            fn redeem_payword(
                &mut self,
                _c: gridbank_core::payword::ChainCommitment,
                _s: gridbank_crypto::merkle::MerkleSignature,
                _w: gridbank_core::payword::PayWord,
                _b: Vec<u8>,
            ) -> Result<Credits, BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
            fn register_resource_description(
                &mut self,
                _d: gridbank_core::pricing::ResourceDescription,
            ) -> Result<(), BankError> {
                Err(BankError::Net(NetError::Timeout))
            }
        }

        let mut m = PaymentModule::new(UnreachableBank, Credits::from_gd(10));
        // Disconnected cheque request: transient, commitment released.
        let err = m.obtain_cheque("/CN=gsp", Credits::from_gd(2), 1_000).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(m.deferred, 1);
        // Circuit-open prepay: transient too.
        let err = m.prepay(AccountId::new(0, 1, 1), Credits::from_gd(1), "gsp").unwrap_err();
        assert!(err.is_transient());
        assert_eq!(m.deferred, 2);
        // A real refusal is NOT transient and not deferred.
        let Err(err) = m.obtain_chain("/CN=gsp", 2, Credits::from_gd(1), 1_000) else {
            panic!("expected an error");
        };
        assert!(!err.is_transient());
        assert_eq!(m.deferred, 2);
        // Every rollback happened: full budget headroom remains.
        assert_eq!(m.tracker.remaining(), Credits::from_gd(10));
    }

    #[test]
    fn failed_bank_call_releases_commitment() {
        let (_bank, mut m, _alice) = setup(10);
        m.ensure_account(None).unwrap();
        // No deposit: the bank refuses the reservation; the budget
        // commitment must be rolled back.
        let err = m.obtain_cheque("/CN=gsp", Credits::from_gd(5), 10_000);
        assert!(matches!(err, Err(BrokerError::Bank(_))));
        assert_eq!(m.tracker.remaining(), Credits::from_gd(10));
    }

    #[test]
    fn prepay_settles_immediately() {
        let (bank, mut m, _alice) = setup(10);
        let account = m.ensure_account(None).unwrap();
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) });
        let gsp = SubjectName::new("O", "U", "gsp");
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp);
        let gsp_acct = gsp_port.create_account(None).unwrap();

        let conf = m.prepay(gsp_acct, Credits::from_gd(3), "gsp.org").unwrap();
        assert_eq!(conf.body.amount, Credits::from_gd(3));
        assert_eq!(m.tracker.spent, Credits::from_gd(3));
        assert_eq!(m.tracker.committed, Credits::ZERO);
        assert_eq!(m.balance().unwrap(), Credits::from_gd(97));
    }

    #[test]
    fn chain_commitment_counts_whole_value() {
        let (bank, mut m, _alice) = setup(10);
        let account = m.ensure_account(None).unwrap();
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) });
        let gsp = SubjectName::new("O", "U", "gsp");
        let mut gsp_port = InProcessBank::new(bank.clone(), gsp);
        gsp_port.create_account(None).unwrap();

        m.obtain_chain("/O=O/OU=U/CN=gsp", 8, Credits::from_gd(1), 10_000).unwrap();
        assert_eq!(m.tracker.remaining(), Credits::from_gd(2));
        assert!(m.obtain_chain("/O=O/OU=U/CN=gsp", 3, Credits::from_gd(1), 10_000).is_err());
    }
}
