//! Error type for the network substrate.

use std::fmt;

use gridbank_crypto::CryptoError;

/// Errors from transport, handshake, secure channel, and RPC layers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No listener is bound at the target address.
    NoSuchAddress(String),
    /// The address is already bound by another listener.
    AddressInUse(String),
    /// The peer closed the connection.
    Disconnected,
    /// A blocking receive timed out.
    Timeout,
    /// The handshake failed (bad credentials, bad signature, ...).
    Handshake(String),
    /// The connection gate refused admission.
    Refused {
        /// Authenticated subject that was refused.
        subject: String,
        /// Gate-provided reason.
        reason: String,
    },
    /// A sealed frame failed authentication or replay checks.
    ChannelIntegrity(String),
    /// A malformed wire message.
    Malformed(String),
    /// Crypto layer failure during handshake or sealing.
    Crypto(CryptoError),
    /// A circuit breaker is open: the call failed fast without touching
    /// the network. Retryable only after the breaker's cooldown.
    CircuitOpen,
}

impl NetError {
    /// Whether a retry of the same operation can plausibly succeed.
    ///
    /// Transient transport conditions — a timed-out receive, a peer that
    /// went away, or a secure channel whose sequence discipline was
    /// violated by loss/reordering — are retryable after reconnecting.
    /// Protocol, credential, and crypto failures are deterministic and
    /// retrying them would only repeat the failure.
    pub fn is_retryable(&self) -> bool {
        matches!(self, NetError::Timeout | NetError::Disconnected | NetError::ChannelIntegrity(_))
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoSuchAddress(a) => write!(f, "no listener at address `{a}`"),
            NetError::AddressInUse(a) => write!(f, "address `{a}` already bound"),
            NetError::Disconnected => write!(f, "peer disconnected"),
            NetError::Timeout => write!(f, "receive timed out"),
            NetError::Handshake(why) => write!(f, "handshake failed: {why}"),
            NetError::Refused { subject, reason } => {
                write!(f, "connection refused for `{subject}`: {reason}")
            }
            NetError::ChannelIntegrity(why) => write!(f, "channel integrity violation: {why}"),
            NetError::Malformed(why) => write!(f, "malformed message: {why}"),
            NetError::Crypto(e) => write!(f, "crypto failure: {e}"),
            NetError::CircuitOpen => write!(f, "circuit breaker open: failing fast"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<CryptoError> for NetError {
    fn from(e: CryptoError) -> Self {
        NetError::Crypto(e)
    }
}
