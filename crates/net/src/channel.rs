//! Sealed message channel over an authenticated link.
//!
//! After the handshake both sides hold a shared transcript secret; this
//! module derives four directional keys from it (client→server and
//! server→client, each with an encryption key and a MAC key) and seals
//! every frame:
//!
//! ```text
//! frame := seq(8) || ciphertext || mac(32)
//! keystream := HKDF(enc_key, "ks" || seq, len(plaintext))
//! ciphertext := plaintext XOR keystream
//! mac := HMAC(mac_key, seq || ciphertext)
//! ```
//!
//! Sequence numbers are strict: a replayed, dropped or reordered frame is
//! an integrity error, matching the GSS wrap/unwrap semantics GridBank
//! assumes from Globus I/O.

use gridbank_crypto::hmac::{hkdf_expand, hmac_sha256, mac_eq};
use gridbank_crypto::sha256::{Digest, DIGEST_LEN};

use crate::error::NetError;
use crate::transport::{Duplex, RecvHalf, SendHalf};

/// Key material for one direction.
#[derive(Clone)]
struct DirectionKeys {
    enc: [u8; 32],
    mac: [u8; 32],
}

fn direction_keys(secret: &[u8], label: &[u8]) -> DirectionKeys {
    let mut enc = [0u8; 32];
    let mut mac = [0u8; 32];
    let mut info_enc = label.to_vec();
    info_enc.extend_from_slice(b"/enc");
    let mut info_mac = label.to_vec();
    info_mac.extend_from_slice(b"/mac");
    enc.copy_from_slice(&hkdf_expand(secret, &info_enc, 32));
    mac.copy_from_slice(&hkdf_expand(secret, &info_mac, 32));
    DirectionKeys { enc, mac }
}

fn keystream(keys: &DirectionKeys, seq: u64, len: usize) -> Vec<u8> {
    // Counter-mode blocks: block i = HMAC(enc, "ks" || seq || i). Unlike
    // HKDF-expand this has no output-length ceiling, and frames carrying
    // hash-based signatures run to tens of kilobytes.
    let mut out = Vec::with_capacity(len);
    let mut block: u64 = 0;
    while out.len() < len {
        let mut msg = Vec::with_capacity(18);
        msg.extend_from_slice(b"ks");
        msg.extend_from_slice(&seq.to_be_bytes());
        msg.extend_from_slice(&block.to_be_bytes());
        let ks = hmac_sha256(&keys.enc, &msg);
        let take = (len - out.len()).min(ks.as_bytes().len());
        out.extend_from_slice(&ks.as_bytes()[..take]);
        block += 1;
    }
    out
}

fn frame_mac(keys: &DirectionKeys, seq: u64, ciphertext: &[u8]) -> Digest {
    let mut msg = Vec::with_capacity(8 + ciphertext.len());
    msg.extend_from_slice(&seq.to_be_bytes());
    msg.extend_from_slice(ciphertext);
    hmac_sha256(&keys.mac, &msg)
}

/// Seals one plaintext under the direction keys at sequence `seq`.
fn seal_frame(keys: &DirectionKeys, seq: u64, plaintext: &[u8]) -> Vec<u8> {
    let ks = keystream(keys, seq, plaintext.len());
    let mut frame = Vec::with_capacity(8 + plaintext.len() + DIGEST_LEN);
    frame.extend_from_slice(&seq.to_be_bytes());
    frame.extend(plaintext.iter().zip(ks.iter()).map(|(p, k)| p ^ k));
    let mac = frame_mac(keys, seq, &frame[8..]);
    frame.extend_from_slice(mac.as_bytes());
    frame
}

/// Authenticates and opens one frame, enforcing the strict sequence.
fn open_frame(keys: &DirectionKeys, expected_seq: u64, frame: &[u8]) -> Result<Vec<u8>, NetError> {
    if frame.len() < 8 + DIGEST_LEN {
        return Err(NetError::ChannelIntegrity("frame too short".into()));
    }
    let (head, rest) = frame.split_at(8);
    let (ciphertext, mac_bytes) = rest.split_at(rest.len() - DIGEST_LEN);
    let mut seq_arr = [0u8; 8];
    seq_arr.copy_from_slice(head);
    let seq = u64::from_be_bytes(seq_arr);
    if seq != expected_seq {
        return Err(NetError::ChannelIntegrity(format!(
            "sequence violation: expected {expected_seq}, got {seq} (replay or drop)"
        )));
    }
    let mut mac_arr = [0u8; DIGEST_LEN];
    mac_arr.copy_from_slice(mac_bytes);
    let claimed = Digest(mac_arr);
    let expected = frame_mac(keys, seq, ciphertext);
    if !mac_eq(&claimed, &expected) {
        return Err(NetError::ChannelIntegrity("MAC mismatch".into()));
    }
    let ks = keystream(keys, seq, ciphertext.len());
    Ok(ciphertext.iter().zip(ks.iter()).map(|(c, k)| c ^ k).collect())
}

/// An established secure channel.
pub struct SecureChannel {
    duplex: Duplex,
    send_keys: DirectionKeys,
    recv_keys: DirectionKeys,
    send_seq: u64,
    recv_seq: u64,
}

impl SecureChannel {
    /// Builds a channel from a raw link and the handshake secret.
    ///
    /// `is_client` selects which directional keys to send/receive with.
    pub fn new(duplex: Duplex, transcript_secret: &Digest, is_client: bool) -> Self {
        let c2s = direction_keys(transcript_secret.as_bytes(), b"c2s");
        let s2c = direction_keys(transcript_secret.as_bytes(), b"s2c");
        let (send_keys, recv_keys) = if is_client { (c2s, s2c) } else { (s2c, c2s) };
        SecureChannel { duplex, send_keys, recv_keys, send_seq: 0, recv_seq: 0 }
    }

    /// Seals and sends one message.
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), NetError> {
        let seq = self.send_seq;
        self.send_seq += 1;
        self.duplex.send(seal_frame(&self.send_keys, seq, plaintext))
    }

    /// Receives, authenticates, and opens one message.
    pub fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let frame = self.duplex.recv()?;
        self.open(frame)
    }

    /// Receives with an explicit timeout.
    pub fn recv_timeout(&mut self, timeout: std::time::Duration) -> Result<Vec<u8>, NetError> {
        let frame = self.duplex.recv_timeout(timeout)?;
        self.open(frame)
    }

    fn open(&mut self, frame: Vec<u8>) -> Result<Vec<u8>, NetError> {
        let plain = open_frame(&self.recv_keys, self.recv_seq, &frame)?;
        self.recv_seq += 1;
        Ok(plain)
    }

    /// The remote transport address (diagnostics).
    pub fn peer(&self) -> &crate::transport::Address {
        &self.duplex.peer
    }

    /// Splits the channel into independently owned sealed send and
    /// receive halves. Each direction keeps its own strict sequence, so
    /// the wire format is identical to an unsplit channel — the peer
    /// cannot tell the difference. This is what lets a pipelined server
    /// block on receive in one thread while workers send responses from
    /// others.
    pub fn split(self) -> (SecureSender, SecureReceiver) {
        let (tx, rx) = self.duplex.split();
        (
            SecureSender { half: tx, keys: self.send_keys, seq: self.send_seq },
            SecureReceiver { half: rx, keys: self.recv_keys, seq: self.recv_seq },
        )
    }
}

/// The sealing send half of a split [`SecureChannel`].
pub struct SecureSender {
    half: SendHalf,
    keys: DirectionKeys,
    seq: u64,
}

impl SecureSender {
    /// Seals and sends one message (same semantics as
    /// [`SecureChannel::send`]).
    pub fn send(&mut self, plaintext: &[u8]) -> Result<(), NetError> {
        let seq = self.seq;
        self.seq += 1;
        self.half.send(seal_frame(&self.keys, seq, plaintext))
    }
}

/// The opening receive half of a split [`SecureChannel`].
pub struct SecureReceiver {
    half: RecvHalf,
    keys: DirectionKeys,
    seq: u64,
}

impl SecureReceiver {
    /// Receives, authenticates, and opens one message.
    pub fn recv(&mut self) -> Result<Vec<u8>, NetError> {
        let frame = self.half.recv()?;
        let plain = open_frame(&self.keys, self.seq, &frame)?;
        self.seq += 1;
        Ok(plain)
    }

    /// Receives with an explicit timeout.
    pub fn recv_timeout(&mut self, timeout: std::time::Duration) -> Result<Vec<u8>, NetError> {
        let frame = self.half.recv_timeout(timeout)?;
        let plain = open_frame(&self.keys, self.seq, &frame)?;
        self.seq += 1;
        Ok(plain)
    }

    /// The remote transport address (diagnostics).
    pub fn peer(&self) -> &crate::transport::Address {
        &self.half.peer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Address, Network};
    use gridbank_crypto::sha256::sha256;

    fn pair(secret: &Digest) -> (SecureChannel, SecureChannel) {
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        (
            SecureChannel::new(client_link, secret, true),
            SecureChannel::new(server_link, secret, false),
        )
    }

    #[test]
    fn round_trip_both_directions() {
        let secret = sha256(b"shared");
        let (mut c, mut s) = pair(&secret);
        c.send(b"to server").unwrap();
        assert_eq!(s.recv().unwrap(), b"to server");
        s.send(b"to client").unwrap();
        assert_eq!(c.recv().unwrap(), b"to client");
        // Several in a row, including empty.
        for msg in [&b""[..], b"x", b"a longer message with some length to it"] {
            c.send(msg).unwrap();
            assert_eq!(s.recv().unwrap(), msg);
        }
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let secret = sha256(b"s");
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        let mut c = SecureChannel::new(client_link, &secret, true);
        c.send(b"SECRET BALANCE 1000").unwrap();
        // Inspect the raw frame on the wire.
        let frame = server_link.recv().unwrap();
        let body = &frame[8..frame.len() - DIGEST_LEN];
        assert_eq!(body.len(), b"SECRET BALANCE 1000".len());
        assert_ne!(body, b"SECRET BALANCE 1000");
    }

    #[test]
    fn wrong_secret_fails_mac() {
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        let mut c = SecureChannel::new(client_link, &sha256(b"secret-a"), true);
        let mut s = SecureChannel::new(server_link, &sha256(b"secret-b"), false);
        c.send(b"msg").unwrap();
        assert!(matches!(s.recv(), Err(NetError::ChannelIntegrity(_))));
    }

    #[test]
    fn tampered_frame_rejected() {
        let secret = sha256(b"s");
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        let mut c = SecureChannel::new(client_link, &secret, true);
        c.send(b"pay 1 G$").unwrap();
        let mut frame = server_link.recv().unwrap();
        frame[9] ^= 0x80; // flip a ciphertext bit
        let mut s = SecureChannel::new(
            {
                // rebuild a channel around a fresh link carrying the tampered frame
                let l2 = net.bind(Address::new("srv2")).unwrap();
                let c2 = net.connect(Address::new("x"), &Address::new("srv2")).unwrap();
                c2.send(frame).unwrap();
                l2.accept().unwrap()
            },
            &secret,
            false,
        );
        assert!(matches!(s.recv(), Err(NetError::ChannelIntegrity(_))));
    }

    #[test]
    fn replay_rejected() {
        let secret = sha256(b"s");
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        let mut c = SecureChannel::new(client_link, &secret, true);
        c.send(b"withdraw").unwrap();

        let frame = server_link.recv().unwrap();
        let mut s = SecureChannel::new(
            {
                let l2 = net.bind(Address::new("srv2")).unwrap();
                let c2 = net.connect(Address::new("x"), &Address::new("srv2")).unwrap();
                c2.send(frame.clone()).unwrap();
                c2.send(frame).unwrap(); // replay
                l2.accept().unwrap()
            },
            &secret,
            false,
        );
        assert_eq!(s.recv().unwrap(), b"withdraw");
        assert!(matches!(s.recv(), Err(NetError::ChannelIntegrity(_))));
    }

    #[test]
    fn split_channel_is_wire_compatible_with_unsplit_peer() {
        let secret = sha256(b"shared");
        let (c, mut s) = pair(&secret);
        // Exchange a frame each way first so the split inherits nonzero
        // sequence numbers.
        let mut c = c;
        c.send(b"pre").unwrap();
        assert_eq!(s.recv().unwrap(), b"pre");
        s.send(b"ack").unwrap();
        assert_eq!(c.recv().unwrap(), b"ack");
        let (mut ctx, mut crx) = c.split();
        // Client halves talk to the unsplit server channel: sends from one
        // thread while the receive half blocks in another.
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for _ in 0..3 {
                    let m = s.recv().unwrap();
                    s.send(&m).unwrap();
                }
            });
            for msg in [&b"one"[..], b"two", b"three"] {
                ctx.send(msg).unwrap();
                assert_eq!(crx.recv().unwrap(), msg);
            }
        });
    }

    #[test]
    fn directions_use_distinct_keys() {
        // A frame sent client->server must not be accepted as server->client.
        let secret = sha256(b"s");
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let client_link = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let server_link = listener.accept().unwrap();
        let mut c = SecureChannel::new(client_link, &secret, true);
        c.send(b"msg").unwrap();
        let frame = server_link.recv().unwrap();
        // Feed the c2s frame into the *client* side (expects s2c keys).
        let l2 = net.bind(Address::new("srv2")).unwrap();
        let c2 = net.connect(Address::new("x"), &Address::new("srv2")).unwrap();
        c2.send(frame).unwrap();
        let mut reflected = SecureChannel::new(l2.accept().unwrap(), &secret, true);
        assert!(matches!(reflected.recv(), Err(NetError::ChannelIntegrity(_))));
    }
}
