//! Request/response correlation over a secure channel, with pipelining.
//!
//! Every GridBank protocol interaction (§5.2's operations) is a request
//! followed by one response. The 8-byte frame id is a **correlation id**:
//! [`RpcClient`] may keep several requests in flight on one connection
//! ([`RpcClient::send_request`] / [`RpcClient::recv_response`]) and
//! matches responses to requests by id, buffering responses that arrive
//! for other in-flight ids. [`RpcClient::call`] is the depth-1 special
//! case.
//!
//! On the server, [`RpcServer::serve_pipelined`] splits the channel and
//! hands each decoded request to an executor (typically a bounded worker
//! pool); a [`ResponseWriter`] re-sequences completions so **responses
//! always leave in request-arrival order** no matter how workers
//! interleave. [`RpcServer::serve_connection`] remains the sequential
//! reference implementation. See `docs/PROTOCOLS.md` §1 for the
//! pipelining state machine.
//!
//! Mutating requests may carry a client-generated **idempotency key**
//! (flagged on the kind byte, like the trace context), which the server
//! uses to deduplicate retries — see `docs/RESILIENCE.md`.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use gridbank_obs::TraceContext;

use crate::channel::{SecureChannel, SecureSender};
use crate::error::NetError;
use crate::handshake::PeerIdentity;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
/// Flag bit on the kind byte: a [`TraceContext`] (16 bytes) follows the
/// kind byte, before the payload. Absent for untraced peers, so old and
/// new frames interoperate.
const FLAG_TRACE: u8 = 0x80;
/// Flag bit on the kind byte: an 8-byte idempotency key follows the
/// (optional) trace context, before the payload. Absent for requests
/// that are safe to re-apply, so old and new frames interoperate.
const FLAG_IDEM: u8 = 0x40;
const FLAGS: u8 = FLAG_TRACE | FLAG_IDEM;

fn encode(
    id: u64,
    kind: u8,
    trace: Option<TraceContext>,
    idem_key: Option<u64>,
    payload: &[u8],
) -> Vec<u8> {
    let trace_len = trace.map_or(0, |_| TraceContext::WIRE_LEN);
    let idem_len = idem_key.map_or(0, |_| 8);
    let mut out = Vec::with_capacity(9 + trace_len + idem_len + payload.len());
    out.extend_from_slice(&id.to_be_bytes());
    let mut kind_byte = kind;
    if trace.is_some() {
        kind_byte |= FLAG_TRACE;
    }
    if idem_key.is_some() {
        kind_byte |= FLAG_IDEM;
    }
    out.push(kind_byte);
    if let Some(ctx) = trace {
        out.extend_from_slice(&ctx.to_bytes());
    }
    if let Some(key) = idem_key {
        out.extend_from_slice(&key.to_be_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// A decoded frame: `(id, kind, trace context, idempotency key, payload)`.
type Frame<'a> = (u64, u8, Option<TraceContext>, Option<u64>, &'a [u8]);

fn decode(msg: &[u8]) -> Result<Frame<'_>, NetError> {
    if msg.len() < 9 {
        return Err(NetError::Malformed("rpc frame too short".into()));
    }
    let mut id_arr = [0u8; 8];
    id_arr.copy_from_slice(&msg[..8]);
    let id = u64::from_be_bytes(id_arr);
    let kind = msg[8] & !FLAGS;
    let mut at = 9;
    let trace = if msg[8] & FLAG_TRACE != 0 {
        let end = at + TraceContext::WIRE_LEN;
        if msg.len() < end {
            return Err(NetError::Malformed("rpc frame truncates trace context".into()));
        }
        let ctx = TraceContext::from_bytes(&msg[at..end])
            .ok_or_else(|| NetError::Malformed("bad trace context".into()))?;
        at = end;
        Some(ctx)
    } else {
        None
    };
    let idem = if msg[8] & FLAG_IDEM != 0 {
        let end = at + 8;
        if msg.len() < end {
            return Err(NetError::Malformed("rpc frame truncates idempotency key".into()));
        }
        let mut key_arr = [0u8; 8];
        key_arr.copy_from_slice(&msg[at..end]);
        at = end;
        Some(u64::from_be_bytes(key_arr))
    } else {
        None
    };
    Ok((id, kind, trace, idem, &msg[at..]))
}

/// Client end: correlation-id request/response calls, pipelined or
/// sequential.
pub struct RpcClient {
    channel: SecureChannel,
    next_id: u64,
    timeout: Option<Duration>,
    /// Correlation ids sent but not yet resolved.
    outstanding: HashSet<u64>,
    /// Responses that arrived for a still-unclaimed in-flight id.
    ready: HashMap<u64, Vec<u8>>,
    /// Authenticated identity of the server.
    pub server: PeerIdentity,
}

impl RpcClient {
    /// Wraps an established secure channel.
    pub fn new(channel: SecureChannel, server: PeerIdentity) -> Self {
        RpcClient {
            channel,
            next_id: 1,
            timeout: None,
            outstanding: HashSet::new(),
            ready: HashMap::new(),
            server,
        }
    }

    /// Overrides the per-call response timeout. `None` (the default)
    /// uses the transport's standard timeout; resilient clients set a
    /// short timeout so faulted calls fail fast and retry.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Sends `payload` and waits for the matching response. The caller's
    /// active trace context (if telemetry is on) rides in the frame, so
    /// the server's spans join the client's trace.
    pub fn call(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_inner(None, payload)
    }

    /// Like [`RpcClient::call`], but stamps the request with an
    /// idempotency key so the server can deduplicate retries of the
    /// same logical operation.
    pub fn call_with_key(&mut self, idem_key: u64, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_inner(Some(idem_key), payload)
    }

    fn call_inner(&mut self, idem_key: Option<u64>, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut span = gridbank_obs::span("net", "rpc_call");
        let timer = gridbank_obs::Stopwatch::start();
        let id = self.send_request_inner(idem_key, payload)?;
        span.attr("request_id", id.to_string());
        let body = self.recv_response(id)?;
        timer.record_named("rpc.client.call_ns");
        Ok(body)
    }

    /// Sends a request without waiting, returning its correlation id.
    /// Pair with [`RpcClient::recv_response`]; any number of requests may
    /// be in flight on the connection at once.
    pub fn send_request(&mut self, payload: &[u8]) -> Result<u64, NetError> {
        self.send_request_inner(None, payload)
    }

    /// [`RpcClient::send_request`] with an idempotency key stamped on the
    /// frame.
    pub fn send_request_with_key(
        &mut self,
        idem_key: u64,
        payload: &[u8],
    ) -> Result<u64, NetError> {
        self.send_request_inner(Some(idem_key), payload)
    }

    fn send_request_inner(
        &mut self,
        idem_key: Option<u64>,
        payload: &[u8],
    ) -> Result<u64, NetError> {
        let id = self.next_id;
        self.next_id += 1;
        self.channel.send(&encode(
            id,
            KIND_REQUEST,
            gridbank_obs::current_context(),
            idem_key,
            payload,
        ))?;
        self.outstanding.insert(id);
        gridbank_obs::observe("rpc.client.in_flight", self.outstanding.len() as u64);
        Ok(id)
    }

    /// Waits for the response to correlation id `id`. Responses arriving
    /// for *other* in-flight ids are buffered and handed out when their
    /// id is claimed; a response for an id that was never issued (or was
    /// already resolved) is a protocol error.
    pub fn recv_response(&mut self, id: u64) -> Result<Vec<u8>, NetError> {
        if !self.outstanding.contains(&id) {
            return Err(NetError::Malformed(format!("correlation id {id} is not in flight")));
        }
        loop {
            if let Some(body) = self.ready.remove(&id) {
                self.outstanding.remove(&id);
                return Ok(body);
            }
            let reply = match self.timeout {
                Some(t) => self.channel.recv_timeout(t)?,
                None => self.channel.recv()?,
            };
            let (rid, kind, _trace, _idem, body) = decode(&reply)?;
            if kind != KIND_RESPONSE {
                return Err(NetError::Malformed(format!("expected response, got kind {kind}")));
            }
            if !self.outstanding.contains(&rid) || self.ready.contains_key(&rid) {
                return Err(NetError::Malformed(format!(
                    "response id {rid} does not match any in-flight request"
                )));
            }
            self.ready.insert(rid, body.to_vec());
        }
    }

    /// Number of requests currently awaiting a response.
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }
}

/// One decoded request handed to a pipelined executor.
///
/// `seq` is the arrival index on this connection (0, 1, 2, …); the
/// [`ResponseWriter`] uses it to emit responses in arrival order. `id`
/// is the client's correlation id, echoed verbatim on the response
/// frame.
pub struct PipelinedRequest {
    /// Arrival index on this connection — the response-ordering key.
    pub seq: u64,
    /// Client correlation id to echo on the response.
    pub id: u64,
    /// Trace context carried by the frame, if any.
    pub trace: Option<TraceContext>,
    /// Idempotency key carried by the frame, if any.
    pub idem_key: Option<u64>,
    /// Request payload.
    pub payload: Vec<u8>,
    /// When the read loop decoded the frame, stamped only while
    /// telemetry is on. Executors subtract it at job start to measure
    /// queue wait (`server.stage.queue_ns`).
    pub enqueued: Option<std::time::Instant>,
}

/// Re-sequencing response sender shared by the workers serving one
/// pipelined connection.
///
/// Workers complete requests in any order; `complete` parks finished
/// responses until every earlier-arriving request has been sent, so the
/// wire carries responses in request-arrival order (the per-caller
/// ordering guarantee). Each request must be completed exactly once, or
/// later responses stall forever.
pub struct ResponseWriter {
    state: Mutex<WriterState>,
}

struct WriterState {
    sender: SecureSender,
    /// Arrival index of the next response to go on the wire.
    next_seq: u64,
    /// Completions waiting for their turn, keyed by arrival index.
    parked: BTreeMap<u64, (u64, Vec<u8>)>,
}

impl ResponseWriter {
    /// Records the response for arrival index `seq` (correlation id `id`)
    /// and sends every response that is now in order. An error means the
    /// connection is gone; pending work for it can be abandoned.
    pub fn complete(&self, seq: u64, id: u64, response: Vec<u8>) -> Result<(), NetError> {
        let mut st = self.state.lock();
        st.parked.insert(seq, (id, response));
        loop {
            let next = st.next_seq;
            let Some((id, body)) = st.parked.remove(&next) else {
                return Ok(());
            };
            st.sender.send(&encode(id, KIND_RESPONSE, None, None, &body))?;
            st.next_seq += 1;
        }
    }

    /// Responses parked out of order right now (diagnostics).
    pub fn parked(&self) -> usize {
        self.state.lock().parked.len()
    }
}

/// Server-side connection loops.
pub struct RpcServer;

impl RpcServer {
    /// Serves one connection sequentially: for each request, calls
    /// `handler` with the authenticated peer, the request's idempotency
    /// key (if any), and the payload, and sends back its response before
    /// reading the next request. Returns when the peer disconnects;
    /// propagates integrity errors. The sequential reference
    /// implementation — production serving goes through
    /// [`RpcServer::serve_pipelined`].
    pub fn serve_connection<F>(
        mut channel: SecureChannel,
        peer: &PeerIdentity,
        mut handler: F,
    ) -> Result<(), NetError>
    where
        F: FnMut(&PeerIdentity, Option<u64>, &[u8]) -> Vec<u8>,
    {
        loop {
            let msg = match channel.recv() {
                Ok(m) => m,
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(e),
            };
            let (id, kind, trace, idem_key, payload) = decode(&msg)?;
            if kind != KIND_REQUEST {
                return Err(NetError::Malformed(format!("expected request, got kind {kind}")));
            }
            let response = {
                // Join the client's trace (if the frame carried one) so
                // everything the handler does nests under this span.
                let mut span = gridbank_obs::span_under(trace, "net", "rpc_serve");
                span.attr("peer", peer.base.0.clone());
                handler(peer, idem_key, payload)
            };
            channel.send(&encode(id, KIND_RESPONSE, None, None, &response))?;
        }
    }

    /// Serves one connection with pipelining: the channel is split, the
    /// read loop decodes each request and hands it to `submit` together
    /// with the shared [`ResponseWriter`]. `submit` is expected to
    /// enqueue the request on an executor (e.g. a bounded worker pool)
    /// whose workers eventually call [`ResponseWriter::complete`] exactly
    /// once per request; the writer re-sequences completions into
    /// arrival order. Returns when the peer disconnects; propagates
    /// integrity and submit errors.
    pub fn serve_pipelined<S>(channel: SecureChannel, mut submit: S) -> Result<(), NetError>
    where
        S: FnMut(PipelinedRequest, &Arc<ResponseWriter>) -> Result<(), NetError>,
    {
        let (sender, mut receiver) = channel.split();
        let writer = Arc::new(ResponseWriter {
            state: Mutex::new(WriterState { sender, next_seq: 0, parked: BTreeMap::new() }),
        });
        let mut seq = 0u64;
        loop {
            let msg = match receiver.recv() {
                Ok(m) => m,
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(e),
            };
            let (id, kind, trace, idem_key, payload) = decode(&msg)?;
            if kind != KIND_REQUEST {
                return Err(NetError::Malformed(format!("expected request, got kind {kind}")));
            }
            gridbank_obs::count("rpc.server.pipelined_requests", 1);
            let enqueued = gridbank_obs::telemetry_enabled().then(std::time::Instant::now);
            let req =
                PipelinedRequest { seq, id, trace, idem_key, payload: payload.to_vec(), enqueued };
            seq += 1;
            submit(req, &writer)?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Address, Network};
    use gridbank_crypto::cert::SubjectName;
    use gridbank_crypto::sha256::sha256;
    use proptest::prelude::*;

    fn channel_pair() -> (SecureChannel, SecureChannel) {
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let c = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let s = listener.accept().unwrap();
        let secret = sha256(b"test-secret");
        (SecureChannel::new(c, &secret, true), SecureChannel::new(s, &secret, false))
    }

    fn peer(cn: &str) -> PeerIdentity {
        let subject = SubjectName::new("O", "U", cn);
        PeerIdentity { base: subject.clone(), subject }
    }

    #[test]
    fn echo_round_trips() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("alice"), |p, _key, payload| {
                    let mut out = p.base.common_name().unwrap().as_bytes().to_vec();
                    out.push(b':');
                    out.extend_from_slice(payload);
                    out
                })
                .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            assert_eq!(client.call(b"ping").unwrap(), b"alice:ping");
            assert_eq!(client.call(b"pong").unwrap(), b"alice:pong");
            // Dropping the client ends the server loop cleanly (join on scope exit).
        });
    }

    #[test]
    fn many_sequential_calls_keep_ids_aligned() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("x"), |_p, _key, payload| payload.to_vec())
                    .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            for i in 0..100u32 {
                let msg = i.to_be_bytes();
                assert_eq!(client.call(&msg).unwrap(), msg);
            }
        });
    }

    #[test]
    fn idempotency_key_reaches_the_handler() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("x"), |_p, key, _payload| {
                    key.unwrap_or(0).to_be_bytes().to_vec()
                })
                .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            assert_eq!(client.call(b"no-key").unwrap(), 0u64.to_be_bytes());
            assert_eq!(client.call_with_key(0xFEED, b"keyed").unwrap(), 0xFEEDu64.to_be_bytes());
            // The key is per-call, not sticky.
            assert_eq!(client.call(b"no-key").unwrap(), 0u64.to_be_bytes());
        });
    }

    #[test]
    fn pipelined_responses_match_their_correlation_ids() {
        // The server answers the two pipelined requests in *reverse*
        // order; the client must still hand each caller the body for its
        // own correlation id, buffering the early-arriving other one.
        let (c, mut s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut frames = Vec::new();
                for _ in 0..2 {
                    let msg = s.recv().unwrap();
                    let (id, kind, _t, _k, payload) = decode(&msg).unwrap();
                    assert_eq!(kind, KIND_REQUEST);
                    frames.push((id, payload.to_vec()));
                }
                for (id, payload) in frames.into_iter().rev() {
                    let mut out = b"re:".to_vec();
                    out.extend_from_slice(&payload);
                    s.send(&encode(id, KIND_RESPONSE, None, None, &out)).unwrap();
                }
            });
            let mut client = RpcClient::new(c, peer("bank"));
            let a = client.send_request(b"alpha").unwrap();
            let b = client.send_request(b"beta").unwrap();
            assert_eq!(client.in_flight(), 2);
            // Claim in send order even though arrival order is reversed.
            assert_eq!(client.recv_response(a).unwrap(), b"re:alpha");
            assert_eq!(client.recv_response(b).unwrap(), b"re:beta");
            assert_eq!(client.in_flight(), 0);
        });
    }

    #[test]
    fn unknown_correlation_ids_are_protocol_errors() {
        let (c, mut s) = channel_pair();
        let mut client = RpcClient::new(c, peer("bank"));
        // Claiming an id that was never issued fails immediately.
        assert!(matches!(client.recv_response(99), Err(NetError::Malformed(_))));
        // A response for an id that is not in flight is rejected.
        let id = client.send_request(b"x").unwrap();
        let req = s.recv().unwrap();
        let (rid, _, _, _, _) = decode(&req).unwrap();
        assert_eq!(rid, id);
        s.send(&encode(id + 1000, KIND_RESPONSE, None, None, b"bogus")).unwrap();
        assert!(matches!(client.recv_response(id), Err(NetError::Malformed(_))));
    }

    #[test]
    fn serve_pipelined_emits_responses_in_arrival_order() {
        const N: u64 = 8;
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(move || {
                // Executor: run every request on its own thread, finishing
                // in roughly reverse order; the ResponseWriter must still
                // emit responses in arrival order.
                let mut workers = Vec::new();
                RpcServer::serve_pipelined(s, |req, writer| {
                    let writer = Arc::clone(writer);
                    workers.push(std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(2 * (N - req.seq)));
                        let mut out = req.payload.clone();
                        out.push(b'!');
                        writer.complete(req.seq, req.id, out).map(|_| ())
                    }));
                    Ok(())
                })
                .unwrap();
                for w in workers {
                    let _ = w.join();
                }
            });
            let mut client = RpcClient::new(c, peer("bank"));
            let ids: Vec<u64> = (0..N)
                .map(|i| client.send_request(format!("req{i}").as_bytes()).unwrap())
                .collect();
            // Raw wire order check: claim ids in reverse — each claim may
            // only buffer responses that arrived before it, so in-order
            // emission means the LAST id claimed first forces reading all.
            for (i, id) in ids.iter().enumerate() {
                assert_eq!(client.recv_response(*id).unwrap(), format!("req{i}!").as_bytes());
            }
        });
    }

    #[test]
    fn malformed_frame_detected() {
        assert!(matches!(decode(&[1, 2, 3]), Err(NetError::Malformed(_))));
        let frame = encode(7, KIND_REQUEST, None, None, b"abc");
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!((id, kind, trace, idem, body), (7, KIND_REQUEST, None, None, &b"abc"[..]));
    }

    #[test]
    fn trace_context_rides_the_kind_flag() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, parent_span: 42 };
        let frame = encode(9, KIND_REQUEST, Some(ctx), None, b"xyz");
        assert_eq!(frame.len(), 9 + TraceContext::WIRE_LEN + 3);
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!((id, kind, trace, idem, body), (9, KIND_REQUEST, Some(ctx), None, &b"xyz"[..]));
        // A frame that claims a trace context but truncates it is rejected.
        assert!(matches!(decode(&frame[..12]), Err(NetError::Malformed(_))));
    }

    #[test]
    fn idempotency_key_rides_after_the_trace_context() {
        let ctx = TraceContext { trace_id: 7, parent_span: 3 };
        let frame = encode(4, KIND_REQUEST, Some(ctx), Some(0xAB), b"p");
        assert_eq!(frame.len(), 9 + TraceContext::WIRE_LEN + 8 + 1);
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!(
            (id, kind, trace, idem, body),
            (4, KIND_REQUEST, Some(ctx), Some(0xAB), &b"p"[..])
        );
        // A frame that claims a key but truncates it is rejected.
        let frame = encode(4, KIND_REQUEST, None, Some(0xAB), b"");
        assert!(matches!(decode(&frame[..12]), Err(NetError::Malformed(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Idempotency-key frame codec round-trips for every combination
        // of id, key presence, trace presence, and payload.
        #[test]
        fn frame_codec_round_trips(
            id in any::<u64>(),
            key in proptest::option::of(any::<u64>()),
            trace in proptest::option::of((any::<u64>(), any::<u64>())),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let ctx = trace.map(|(t, s)| TraceContext { trace_id: t, parent_span: s });
            let frame = encode(id, KIND_REQUEST, ctx, key, &payload);
            let (rid, kind, rtrace, ridem, body) = decode(&frame).unwrap();
            prop_assert_eq!(rid, id);
            prop_assert_eq!(kind, KIND_REQUEST);
            prop_assert_eq!(rtrace, ctx);
            prop_assert_eq!(ridem, key);
            prop_assert_eq!(body, &payload[..]);
        }
    }
}
