//! Request/response correlation over a secure channel.
//!
//! Every GridBank protocol interaction (§5.2's operations) is a request
//! followed by one response. [`RpcClient`] numbers requests and checks the
//! response id; [`RpcServer::serve_connection`] runs a handler loop until
//! the peer disconnects. Transport-level concurrency comes from one
//! connection (and one serving thread) per client, as the paper's
//! connection-oriented GSS model implies.
//!
//! Mutating requests may carry a client-generated **idempotency key**
//! (flagged on the kind byte, like the trace context), which the server
//! uses to deduplicate retries — see `docs/RESILIENCE.md`.

use std::time::Duration;

use gridbank_obs::TraceContext;

use crate::channel::SecureChannel;
use crate::error::NetError;
use crate::handshake::PeerIdentity;

const KIND_REQUEST: u8 = 0;
const KIND_RESPONSE: u8 = 1;
/// Flag bit on the kind byte: a [`TraceContext`] (16 bytes) follows the
/// kind byte, before the payload. Absent for untraced peers, so old and
/// new frames interoperate.
const FLAG_TRACE: u8 = 0x80;
/// Flag bit on the kind byte: an 8-byte idempotency key follows the
/// (optional) trace context, before the payload. Absent for requests
/// that are safe to re-apply, so old and new frames interoperate.
const FLAG_IDEM: u8 = 0x40;
const FLAGS: u8 = FLAG_TRACE | FLAG_IDEM;

fn encode(
    id: u64,
    kind: u8,
    trace: Option<TraceContext>,
    idem_key: Option<u64>,
    payload: &[u8],
) -> Vec<u8> {
    let trace_len = trace.map_or(0, |_| TraceContext::WIRE_LEN);
    let idem_len = idem_key.map_or(0, |_| 8);
    let mut out = Vec::with_capacity(9 + trace_len + idem_len + payload.len());
    out.extend_from_slice(&id.to_be_bytes());
    let mut kind_byte = kind;
    if trace.is_some() {
        kind_byte |= FLAG_TRACE;
    }
    if idem_key.is_some() {
        kind_byte |= FLAG_IDEM;
    }
    out.push(kind_byte);
    if let Some(ctx) = trace {
        out.extend_from_slice(&ctx.to_bytes());
    }
    if let Some(key) = idem_key {
        out.extend_from_slice(&key.to_be_bytes());
    }
    out.extend_from_slice(payload);
    out
}

/// A decoded frame: `(id, kind, trace context, idempotency key, payload)`.
type Frame<'a> = (u64, u8, Option<TraceContext>, Option<u64>, &'a [u8]);

fn decode(msg: &[u8]) -> Result<Frame<'_>, NetError> {
    if msg.len() < 9 {
        return Err(NetError::Malformed("rpc frame too short".into()));
    }
    let mut id_arr = [0u8; 8];
    id_arr.copy_from_slice(&msg[..8]);
    let id = u64::from_be_bytes(id_arr);
    let kind = msg[8] & !FLAGS;
    let mut at = 9;
    let trace = if msg[8] & FLAG_TRACE != 0 {
        let end = at + TraceContext::WIRE_LEN;
        if msg.len() < end {
            return Err(NetError::Malformed("rpc frame truncates trace context".into()));
        }
        let ctx = TraceContext::from_bytes(&msg[at..end])
            .ok_or_else(|| NetError::Malformed("bad trace context".into()))?;
        at = end;
        Some(ctx)
    } else {
        None
    };
    let idem = if msg[8] & FLAG_IDEM != 0 {
        let end = at + 8;
        if msg.len() < end {
            return Err(NetError::Malformed("rpc frame truncates idempotency key".into()));
        }
        let mut key_arr = [0u8; 8];
        key_arr.copy_from_slice(&msg[at..end]);
        at = end;
        Some(u64::from_be_bytes(key_arr))
    } else {
        None
    };
    Ok((id, kind, trace, idem, &msg[at..]))
}

/// Client end: sequential request/response calls.
pub struct RpcClient {
    channel: SecureChannel,
    next_id: u64,
    timeout: Option<Duration>,
    /// Authenticated identity of the server.
    pub server: PeerIdentity,
}

impl RpcClient {
    /// Wraps an established secure channel.
    pub fn new(channel: SecureChannel, server: PeerIdentity) -> Self {
        RpcClient { channel, next_id: 1, timeout: None, server }
    }

    /// Overrides the per-call response timeout. `None` (the default)
    /// uses the transport's standard timeout; resilient clients set a
    /// short timeout so faulted calls fail fast and retry.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) {
        self.timeout = timeout;
    }

    /// Sends `payload` and waits for the matching response. The caller's
    /// active trace context (if telemetry is on) rides in the frame, so
    /// the server's spans join the client's trace.
    pub fn call(&mut self, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_inner(None, payload)
    }

    /// Like [`RpcClient::call`], but stamps the request with an
    /// idempotency key so the server can deduplicate retries of the
    /// same logical operation.
    pub fn call_with_key(&mut self, idem_key: u64, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        self.call_inner(Some(idem_key), payload)
    }

    fn call_inner(&mut self, idem_key: Option<u64>, payload: &[u8]) -> Result<Vec<u8>, NetError> {
        let mut span = gridbank_obs::span("net", "rpc_call");
        let timer = gridbank_obs::Stopwatch::start();
        let id = self.next_id;
        self.next_id += 1;
        span.attr("request_id", id.to_string());
        self.channel.send(&encode(
            id,
            KIND_REQUEST,
            gridbank_obs::current_context(),
            idem_key,
            payload,
        ))?;
        let reply = match self.timeout {
            Some(t) => self.channel.recv_timeout(t)?,
            None => self.channel.recv()?,
        };
        let (rid, kind, _trace, _idem, body) = decode(&reply)?;
        if kind != KIND_RESPONSE {
            return Err(NetError::Malformed(format!("expected response, got kind {kind}")));
        }
        if rid != id {
            return Err(NetError::Malformed(format!(
                "response id {rid} does not match request id {id}"
            )));
        }
        timer.record_named("rpc.client.call_ns");
        Ok(body.to_vec())
    }
}

/// Server-side connection loop.
pub struct RpcServer;

impl RpcServer {
    /// Serves one connection: for each request, calls `handler` with the
    /// authenticated peer, the request's idempotency key (if any), and
    /// the payload, and sends back its response. Returns when the peer
    /// disconnects; propagates integrity errors.
    pub fn serve_connection<F>(
        mut channel: SecureChannel,
        peer: &PeerIdentity,
        mut handler: F,
    ) -> Result<(), NetError>
    where
        F: FnMut(&PeerIdentity, Option<u64>, &[u8]) -> Vec<u8>,
    {
        loop {
            let msg = match channel.recv() {
                Ok(m) => m,
                Err(NetError::Disconnected) => return Ok(()),
                Err(e) => return Err(e),
            };
            let (id, kind, trace, idem_key, payload) = decode(&msg)?;
            if kind != KIND_REQUEST {
                return Err(NetError::Malformed(format!("expected request, got kind {kind}")));
            }
            let response = {
                // Join the client's trace (if the frame carried one) so
                // everything the handler does nests under this span.
                let mut span = gridbank_obs::span_under(trace, "net", "rpc_serve");
                span.attr("peer", peer.base.0.clone());
                handler(peer, idem_key, payload)
            };
            channel.send(&encode(id, KIND_RESPONSE, None, None, &response))?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{Address, Network};
    use gridbank_crypto::cert::SubjectName;
    use gridbank_crypto::sha256::sha256;
    use proptest::prelude::*;

    fn channel_pair() -> (SecureChannel, SecureChannel) {
        let net = Network::new();
        let listener = net.bind(Address::new("srv")).unwrap();
        let c = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let s = listener.accept().unwrap();
        let secret = sha256(b"test-secret");
        (SecureChannel::new(c, &secret, true), SecureChannel::new(s, &secret, false))
    }

    fn peer(cn: &str) -> PeerIdentity {
        let subject = SubjectName::new("O", "U", cn);
        PeerIdentity { base: subject.clone(), subject }
    }

    #[test]
    fn echo_round_trips() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("alice"), |p, _key, payload| {
                    let mut out = p.base.common_name().unwrap().as_bytes().to_vec();
                    out.push(b':');
                    out.extend_from_slice(payload);
                    out
                })
                .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            assert_eq!(client.call(b"ping").unwrap(), b"alice:ping");
            assert_eq!(client.call(b"pong").unwrap(), b"alice:pong");
            // Dropping the client ends the server loop cleanly (join on scope exit).
        });
    }

    #[test]
    fn many_sequential_calls_keep_ids_aligned() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("x"), |_p, _key, payload| payload.to_vec())
                    .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            for i in 0..100u32 {
                let msg = i.to_be_bytes();
                assert_eq!(client.call(&msg).unwrap(), msg);
            }
        });
    }

    #[test]
    fn idempotency_key_reaches_the_handler() {
        let (c, s) = channel_pair();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                RpcServer::serve_connection(s, &peer("x"), |_p, key, _payload| {
                    key.unwrap_or(0).to_be_bytes().to_vec()
                })
                .unwrap();
            });
            let mut client = RpcClient::new(c, peer("bank"));
            assert_eq!(client.call(b"no-key").unwrap(), 0u64.to_be_bytes());
            assert_eq!(client.call_with_key(0xFEED, b"keyed").unwrap(), 0xFEEDu64.to_be_bytes());
            // The key is per-call, not sticky.
            assert_eq!(client.call(b"no-key").unwrap(), 0u64.to_be_bytes());
        });
    }

    #[test]
    fn malformed_frame_detected() {
        assert!(matches!(decode(&[1, 2, 3]), Err(NetError::Malformed(_))));
        let frame = encode(7, KIND_REQUEST, None, None, b"abc");
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!((id, kind, trace, idem, body), (7, KIND_REQUEST, None, None, &b"abc"[..]));
    }

    #[test]
    fn trace_context_rides_the_kind_flag() {
        let ctx = TraceContext { trace_id: 0xDEAD_BEEF, parent_span: 42 };
        let frame = encode(9, KIND_REQUEST, Some(ctx), None, b"xyz");
        assert_eq!(frame.len(), 9 + TraceContext::WIRE_LEN + 3);
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!((id, kind, trace, idem, body), (9, KIND_REQUEST, Some(ctx), None, &b"xyz"[..]));
        // A frame that claims a trace context but truncates it is rejected.
        assert!(matches!(decode(&frame[..12]), Err(NetError::Malformed(_))));
    }

    #[test]
    fn idempotency_key_rides_after_the_trace_context() {
        let ctx = TraceContext { trace_id: 7, parent_span: 3 };
        let frame = encode(4, KIND_REQUEST, Some(ctx), Some(0xAB), b"p");
        assert_eq!(frame.len(), 9 + TraceContext::WIRE_LEN + 8 + 1);
        let (id, kind, trace, idem, body) = decode(&frame).unwrap();
        assert_eq!(
            (id, kind, trace, idem, body),
            (4, KIND_REQUEST, Some(ctx), Some(0xAB), &b"p"[..])
        );
        // A frame that claims a key but truncates it is rejected.
        let frame = encode(4, KIND_REQUEST, None, Some(0xAB), b"");
        assert!(matches!(decode(&frame[..12]), Err(NetError::Malformed(_))));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Idempotency-key frame codec round-trips for every combination
        // of id, key presence, trace presence, and payload.
        #[test]
        fn frame_codec_round_trips(
            id in any::<u64>(),
            key in proptest::option::of(any::<u64>()),
            trace in proptest::option::of((any::<u64>(), any::<u64>())),
            payload in proptest::collection::vec(any::<u8>(), 0..64),
        ) {
            let ctx = trace.map(|(t, s)| TraceContext { trace_id: t, parent_span: s });
            let frame = encode(id, KIND_REQUEST, ctx, key, &payload);
            let (rid, kind, rtrace, ridem, body) = decode(&frame).unwrap();
            prop_assert_eq!(rid, id);
            prop_assert_eq!(kind, KIND_REQUEST);
            prop_assert_eq!(rtrace, ctx);
            prop_assert_eq!(ridem, key);
            prop_assert_eq!(body, &payload[..]);
        }
    }
}
