//! # gridbank-net
//!
//! In-process "Grid I/O": the communication substrate standing in for the
//! Globus I/O API / GSS-API stack the paper builds GridBank's transport on
//! (§3.2: "Secure communication between all participants of any GridBank
//! transaction use Globus I/O API, which implements GSS API").
//!
//! Layers, bottom-up:
//!
//! * [`transport`] — a process-local message network: named endpoints,
//!   bind/connect/accept, bounded duplex links built on crossbeam
//!   channels. Deterministic and dependency-free, so tests and the
//!   discrete-event simulator can run thousands of connections.
//! * [`handshake`] — GSS-style **mutual authentication**: the client
//!   presents its proxy-certificate chain (single sign-on), the server its
//!   certificate; both sign the session transcript; session keys are
//!   derived from the transcript via HKDF.
//! * [`channel`] — [`channel::SecureChannel`]: sealed frames with
//!   keystream encryption, per-direction HMAC, and strict sequence numbers
//!   (replay/reorder rejection). Confidentiality here is keystream-based
//!   rather than a negotiated DH secret — a documented simulation
//!   substitute (DESIGN.md §2) — while authenticity and integrity are real
//!   signatures/MACs from `gridbank-crypto`.
//! * [`gate`] — the paper's DoS limiter: "Only clients with existing
//!   account or administrator privilege are authorized and connected";
//!   the gate decides from the authenticated subject name *before* the
//!   handshake completes.
//! * [`rpc`] — request/response correlation over a secure channel, the
//!   shape every GridBank protocol message uses. Frame ids are
//!   **correlation ids**: clients may pipeline many requests per
//!   connection, and servers re-sequence worker completions so responses
//!   leave in arrival order (see `docs/PROTOCOLS.md` §1).
//! * [`fault`] — deterministic fault injection at the transport layer
//!   (drop/duplicate/reorder/reset, seed-driven) for chaos testing.
//! * [`retry`] — capped-exponential-backoff retry policy with
//!   decorrelated jitter plus a circuit breaker for failing peers.

pub mod channel;
pub mod error;
pub mod fault;
pub mod gate;
pub mod handshake;
pub mod retry;
pub mod rpc;
pub mod transport;
pub(crate) mod wire;

pub use channel::{SecureChannel, SecureReceiver, SecureSender};
pub use error::NetError;
pub use fault::{FaultCounts, FaultInjector, FaultPlan, FaultRates};
pub use gate::{AdmissionDecision, ConnectionGate};
pub use handshake::{client_handshake, server_handshake, HandshakeConfig, PeerIdentity};
pub use retry::{BackoffSchedule, BreakerState, CircuitBreaker, RetryPolicy};
pub use rpc::{PipelinedRequest, ResponseWriter, RpcClient, RpcServer};
pub use transport::{Address, Duplex, Listener, Network, RecvHalf, SendHalf};
