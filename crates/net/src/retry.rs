//! Retry policy and circuit breaker for resilient RPC clients.
//!
//! [`RetryPolicy`] is capped exponential backoff with decorrelated
//! jitter (each delay is drawn uniformly from `[base, 3·previous]`,
//! clamped to the cap) under two hard terminators: a maximum attempt
//! count and an overall deadline on accumulated backoff. The jitter RNG
//! is seeded, so a policy plus a seed yields one reproducible delay
//! schedule — chaos runs replay exactly.
//!
//! [`CircuitBreaker`] is the graceful-degradation gate: after N
//! consecutive failures the circuit opens and calls fail fast with
//! [`NetError::CircuitOpen`] instead of hammering a dead peer; after a
//! cooldown one probe is allowed through (half-open), and its outcome
//! closes or re-opens the circuit. Time is caller-supplied milliseconds,
//! so the breaker works under the simulation's virtual clock.

use crate::error::NetError;
use crate::fault::splitmix64;

/// Capped exponential backoff + decorrelated jitter + overall deadline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Minimum (and first) backoff delay, ms.
    pub base_delay_ms: u64,
    /// Hard cap on any single delay, ms.
    pub max_delay_ms: u64,
    /// Maximum total attempts (1 = no retries).
    pub max_attempts: u32,
    /// Budget on *accumulated backoff*: once the sum of delays would
    /// exceed this, the schedule terminates.
    pub deadline_ms: u64,
    /// Seed for the jitter RNG.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base_delay_ms: 10,
            max_delay_ms: 640,
            max_attempts: 8,
            deadline_ms: 5_000,
            seed: 0xB0FF,
        }
    }
}

impl RetryPolicy {
    /// Starts a fresh delay schedule for one logical operation.
    pub fn schedule(&self) -> BackoffSchedule {
        BackoffSchedule {
            policy: *self,
            rng: self.seed,
            prev_ms: 0,
            attempts: 1, // the initial attempt is not a retry
            spent_ms: 0,
        }
    }

    /// Re-seeds the jitter stream (per-client decorrelation).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Iterator over backoff delays; `None` means "stop retrying".
#[derive(Clone, Debug)]
pub struct BackoffSchedule {
    policy: RetryPolicy,
    rng: u64,
    prev_ms: u64,
    attempts: u32,
    spent_ms: u64,
}

impl BackoffSchedule {
    /// Backoff time handed out so far, ms.
    pub fn spent_ms(&self) -> u64 {
        self.spent_ms
    }

    /// Attempts permitted so far (including the initial one).
    pub fn attempts(&self) -> u32 {
        self.attempts
    }
}

impl Iterator for BackoffSchedule {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.attempts >= self.policy.max_attempts {
            return None;
        }
        let base = self.policy.base_delay_ms.max(1);
        let cap = self.policy.max_delay_ms.max(base);
        // Decorrelated jitter: uniform in [base, 3·prev], capped. The
        // first retry has no history, so it draws from [base, 3·base].
        let hi = (self.prev_ms.max(base)).saturating_mul(3).min(cap);
        let span = hi - base + 1;
        let delay = base + splitmix64(&mut self.rng) % span;
        if self.spent_ms.saturating_add(delay) > self.policy.deadline_ms {
            return None;
        }
        self.attempts += 1;
        self.spent_ms += delay;
        self.prev_ms = delay;
        Some(delay)
    }
}

/// Breaker state, observable for telemetry and tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: calls pass through.
    Closed,
    /// Tripped at the contained time: calls fail fast until cooldown.
    Open {
        /// Virtual time (ms) the circuit opened.
        since_ms: u64,
    },
    /// Cooldown elapsed: one probe call is in flight.
    HalfOpen,
}

/// Consecutive-failure circuit breaker with half-open probing.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    cooldown_ms: u64,
    consecutive_failures: u32,
    state: BreakerState,
}

impl CircuitBreaker {
    /// `failure_threshold` consecutive failures open the circuit for
    /// `cooldown_ms` of caller-supplied time.
    pub fn new(failure_threshold: u32, cooldown_ms: u64) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            cooldown_ms,
            consecutive_failures: 0,
            state: BreakerState::Closed,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Gate check before an attempt. `Ok(())` admits the call; an open
    /// circuit fails fast with [`NetError::CircuitOpen`]. While a
    /// half-open probe is in flight every other caller also fails fast:
    /// exactly one call owns the probe window until its outcome is
    /// reported.
    pub fn admit(&mut self, now_ms: u64) -> Result<(), NetError> {
        match self.state {
            BreakerState::Closed => Ok(()),
            BreakerState::HalfOpen => {
                gridbank_obs::count("net.breaker.fast_fail", 1);
                Err(NetError::CircuitOpen)
            }
            BreakerState::Open { since_ms } => {
                if now_ms.saturating_sub(since_ms) >= self.cooldown_ms {
                    self.state = BreakerState::HalfOpen;
                    Ok(())
                } else {
                    gridbank_obs::count("net.breaker.fast_fail", 1);
                    Err(NetError::CircuitOpen)
                }
            }
        }
    }

    /// Reports a successful call: closes the circuit.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.state = BreakerState::Closed;
    }

    /// Reports a failed call; may trip the circuit (a failed half-open
    /// probe re-opens immediately).
    pub fn record_failure(&mut self, now_ms: u64) {
        self.consecutive_failures += 1;
        let tripped = matches!(self.state, BreakerState::HalfOpen)
            || self.consecutive_failures >= self.failure_threshold;
        if tripped {
            if !matches!(self.state, BreakerState::Open { .. }) {
                gridbank_obs::count("net.breaker.open", 1);
            }
            self.state = BreakerState::Open { since_ms: now_ms };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let p = RetryPolicy::default();
        let a: Vec<u64> = p.schedule().collect();
        let b: Vec<u64> = p.schedule().collect();
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c: Vec<u64> = p.with_seed(1).schedule().collect();
        assert_ne!(a, c);
    }

    #[test]
    fn breaker_trips_cools_down_and_probes() {
        let mut b = CircuitBreaker::new(3, 100);
        assert!(b.admit(0).is_ok());
        b.record_failure(0);
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(2);
        assert!(matches!(b.state(), BreakerState::Open { .. }));
        // Fails fast during cooldown.
        assert_eq!(b.admit(50), Err(NetError::CircuitOpen));
        // After cooldown one probe is admitted.
        assert!(b.admit(150).is_ok());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A failed probe re-opens instantly (one strike in half-open).
        b.record_failure(150);
        assert!(matches!(b.state(), BreakerState::Open { since_ms: 150 }));
        // A successful probe closes.
        assert!(b.admit(300).is_ok());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_resets_failure_count_on_success() {
        let mut b = CircuitBreaker::new(2, 10);
        b.record_failure(0);
        b.record_success();
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        // Every delay respects the bounds: never below base, never above
        // the cap (jitter stays in bounds; backoff is monotonically
        // capped).
        #[test]
        fn delays_stay_within_base_and_cap(
            base in 1u64..50, cap in 1u64..2_000, attempts in 1u32..12,
            deadline in 1u64..10_000, seed in any::<u64>(),
        ) {
            let p = RetryPolicy {
                base_delay_ms: base, max_delay_ms: cap,
                max_attempts: attempts, deadline_ms: deadline, seed,
            };
            for d in p.schedule() {
                prop_assert!(d >= base.max(1));
                prop_assert!(d <= cap.max(base));
            }
        }

        // The deadline always terminates the sequence: total backoff
        // never exceeds it, and the attempt count never exceeds the max.
        #[test]
        fn deadline_and_attempts_terminate_the_schedule(
            base in 1u64..50, cap in 1u64..2_000, attempts in 1u32..12,
            deadline in 1u64..10_000, seed in any::<u64>(),
        ) {
            let p = RetryPolicy {
                base_delay_ms: base, max_delay_ms: cap,
                max_attempts: attempts, deadline_ms: deadline, seed,
            };
            let mut s = p.schedule();
            let mut total = 0u64;
            let mut yields = 0u32;
            for d in s.by_ref() {
                total += d;
                yields += 1;
                prop_assert!(yields < 1_000, "schedule failed to terminate");
            }
            prop_assert!(total <= deadline);
            prop_assert!(yields < attempts.max(1));
            prop_assert_eq!(s.spent_ms(), total);
        }

        // Decorrelated jitter growth: each delay is at most 3x the
        // previous one (before capping), so backoff cannot explode.
        #[test]
        fn growth_is_bounded_by_3x(seed in any::<u64>()) {
            let p = RetryPolicy { seed, ..RetryPolicy::default() };
            let delays: Vec<u64> = p.schedule().collect();
            let mut prev = p.base_delay_ms;
            for d in delays {
                prop_assert!(d <= (prev * 3).min(p.max_delay_ms).max(p.base_delay_ms));
                prev = d;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Loom model: the circuit breaker behind a shared mutex.
// ---------------------------------------------------------------------------
//
// Built only under `RUSTFLAGS="--cfg loom"`: the breaker is driven the
// way `ResilientBankClient` drives it — behind a mutex, from racing
// callers — under the vendored yield-injecting scheduler (see
// docs/STATIC_ANALYSIS.md).

#[cfg(all(loom, test))]
mod loom_model {
    use super::*;
    use loom::sync::{Arc, Mutex};

    /// Racing callers against a tripped breaker: exactly one wins the
    /// half-open probe window after cooldown, everyone else fails fast,
    /// and the probe's reported outcome decides the next state.
    #[test]
    fn half_open_admits_exactly_one_probe() {
        loom::model(|| {
            let breaker = Arc::new(Mutex::new(CircuitBreaker::new(2, 100)));
            // Trip it from two racing failure reporters.
            let reporters: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&breaker);
                    loom::thread::spawn(move || b.lock().record_failure(5))
                })
                .collect();
            for h in reporters {
                h.join().expect("reporter thread");
            }
            assert!(matches!(breaker.lock().state(), BreakerState::Open { since_ms: 5 }));
            // Cooldown not elapsed: every caller fails fast.
            assert_eq!(breaker.lock().admit(60), Err(NetError::CircuitOpen));
            // Cooldown elapsed: exactly one racer is admitted as the
            // half-open probe.
            let racers: Vec<_> = (0..3)
                .map(|_| {
                    let b = Arc::clone(&breaker);
                    loom::thread::spawn(move || b.lock().admit(205).is_ok())
                })
                .collect();
            let outcomes: Vec<bool> =
                racers.into_iter().map(|h| h.join().expect("racer thread")).collect();
            assert_eq!(
                outcomes.iter().filter(|&&ok| ok).count(),
                1,
                "probe window shared: {outcomes:?}"
            );
            // While the probe is in flight, later callers keep failing
            // fast instead of piling onto a possibly-sick peer.
            assert_eq!(breaker.lock().admit(210), Err(NetError::CircuitOpen));
            // A failed probe re-opens for a fresh cooldown...
            breaker.lock().record_failure(300);
            assert!(matches!(breaker.lock().state(), BreakerState::Open { since_ms: 300 }));
            assert_eq!(breaker.lock().admit(350), Err(NetError::CircuitOpen));
            // ...and a successful probe closes the circuit for everyone.
            assert!(breaker.lock().admit(420).is_ok());
            breaker.lock().record_success();
            assert_eq!(breaker.lock().state(), BreakerState::Closed);
            let reopened: Vec<_> = (0..2)
                .map(|_| {
                    let b = Arc::clone(&breaker);
                    loom::thread::spawn(move || b.lock().admit(421).is_ok())
                })
                .collect();
            for h in reopened {
                assert!(h.join().expect("caller thread"), "closed breaker rejected a call");
            }
        });
    }
}
