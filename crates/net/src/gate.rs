//! Connection admission — the paper's denial-of-service limiter.
//!
//! §3.2: "the certificate subject name is retrieved … and is checked
//! against the database. If the subject name appears either in the
//! accounts or in administrator tables, then the client is authorized to
//! establish a connection. Otherwise connection is refused, and this
//! provides a mechanism to limit denial-of-service attacks. Clients simply
//! cannot send any requests before a connection is established."
//!
//! The gate runs *inside* the server handshake, after authentication but
//! before any channel exists, so refused clients never get to submit a
//! request.

use gridbank_crypto::cert::SubjectName;

/// Outcome of an admission check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Admit the subject.
    Allow,
    /// Refuse with a reason (sent to the client before dropping the link).
    Deny(String),
}

/// An admission policy over authenticated subject names.
pub trait ConnectionGate: Send + Sync {
    /// Decides whether `subject` may establish a connection.
    fn admit(&self, subject: &SubjectName) -> AdmissionDecision;
}

/// Admits everyone — for tests and client-side use.
#[derive(Default, Clone, Copy, Debug)]
pub struct OpenGate;

impl ConnectionGate for OpenGate {
    fn admit(&self, _subject: &SubjectName) -> AdmissionDecision {
        AdmissionDecision::Allow
    }
}

/// Admits a fixed allow-list of subjects (simple standalone deployments;
/// GridBank itself implements [`ConnectionGate`] over its account tables).
#[derive(Default, Debug)]
pub struct AllowListGate {
    allowed: std::collections::HashSet<SubjectName>,
}

impl AllowListGate {
    /// Builds from an iterator of subjects.
    pub fn new(subjects: impl IntoIterator<Item = SubjectName>) -> Self {
        AllowListGate { allowed: subjects.into_iter().collect() }
    }

    /// Adds a subject.
    pub fn allow(&mut self, subject: SubjectName) {
        self.allowed.insert(subject);
    }
}

impl ConnectionGate for AllowListGate {
    fn admit(&self, subject: &SubjectName) -> AdmissionDecision {
        // Proxies speak for their base identity: check the base DN.
        if self.allowed.contains(&subject.base_identity()) {
            AdmissionDecision::Allow
        } else {
            AdmissionDecision::Deny("no account or administrator privilege".into())
        }
    }
}

impl<F> ConnectionGate for F
where
    F: Fn(&SubjectName) -> AdmissionDecision + Send + Sync,
{
    fn admit(&self, subject: &SubjectName) -> AdmissionDecision {
        self(subject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_gate_admits_anyone() {
        assert_eq!(
            OpenGate.admit(&SubjectName::new("O", "U", "whoever")),
            AdmissionDecision::Allow
        );
    }

    #[test]
    fn allow_list_checks_base_identity() {
        let alice = SubjectName::new("UWA", "CSSE", "alice");
        let gate = AllowListGate::new([alice.clone()]);
        assert_eq!(gate.admit(&alice), AdmissionDecision::Allow);
        // Her proxy is admitted too.
        assert_eq!(gate.admit(&alice.proxy_name()), AdmissionDecision::Allow);
        // Strangers are refused.
        assert!(matches!(
            gate.admit(&SubjectName::new("Evil", "Org", "mallory")),
            AdmissionDecision::Deny(_)
        ));
    }

    #[test]
    fn closure_gates_work() {
        let gate = |s: &SubjectName| {
            if s.common_name() == Some("admin") {
                AdmissionDecision::Allow
            } else {
                AdmissionDecision::Deny("admins only".into())
            }
        };
        assert_eq!(gate.admit(&SubjectName::new("O", "U", "admin")), AdmissionDecision::Allow);
        assert!(matches!(
            gate.admit(&SubjectName::new("O", "U", "user")),
            AdmissionDecision::Deny(_)
        ));
    }
}
