//! Process-local message transport.
//!
//! A [`Network`] is a cheaply clonable handle to a registry of named
//! listeners. [`Network::connect`] builds a bounded duplex link (a pair of
//! crossbeam channels) and delivers the server end to the listener's
//! accept queue. Messages are whole byte vectors — the transport is
//! message-oriented like Globus I/O's message mode, so no stream
//! re-framing is needed above it.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::NetError;

/// Capacity of each direction of a duplex link; a full peer applies
/// backpressure rather than unbounded buffering.
const LINK_CAPACITY: usize = 256;

/// Capacity of a listener's accept queue.
const ACCEPT_CAPACITY: usize = 1024;

/// Default blocking-receive timeout; generous for tests, short enough that
/// a wedged peer fails fast.
pub const DEFAULT_TIMEOUT: StdDuration = StdDuration::from_secs(10);

/// A network endpoint name, e.g. `"gridbank.vo-physics.org"`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Address(pub String);

impl Address {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        Address(s.into())
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Address {
    fn from(s: &str) -> Self {
        Address(s.to_string())
    }
}

/// One end of a bidirectional message link.
pub struct Duplex {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Address of the remote side, for diagnostics.
    pub peer: Address,
}

impl Duplex {
    /// Sends one message; fails if the peer hung up.
    pub fn send(&self, msg: Vec<u8>) -> Result<(), NetError> {
        self.tx.send(msg).map_err(|_| NetError::Disconnected)
    }

    /// Receives one message with the default timeout.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.recv_timeout(DEFAULT_TIMEOUT)
    }

    /// Receives one message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: StdDuration) -> Result<Vec<u8>, NetError> {
        self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking receive; `Ok(None)` when no message is waiting.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, NetError> {
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

/// A bound listener: accepts inbound duplex links.
pub struct Listener {
    incoming: Receiver<Duplex>,
    address: Address,
    network: Network,
}

impl Listener {
    /// The bound address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// Accepts the next inbound connection with the default timeout.
    pub fn accept(&self) -> Result<Duplex, NetError> {
        self.accept_timeout(DEFAULT_TIMEOUT)
    }

    /// Accepts with an explicit timeout.
    pub fn accept_timeout(&self, timeout: StdDuration) -> Result<Duplex, NetError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking accept.
    pub fn try_accept(&self) -> Result<Option<Duplex>, NetError> {
        match self.incoming.try_recv() {
            Ok(d) => Ok(Some(d)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.network.registry.lock().remove(&self.address);
    }
}

/// A handle to an in-process network. Clones share the same namespace.
#[derive(Clone, Default)]
pub struct Network {
    registry: Arc<Mutex<HashMap<Address, Sender<Duplex>>>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds a listener at `address`.
    pub fn bind(&self, address: Address) -> Result<Listener, NetError> {
        let mut reg = self.registry.lock();
        if reg.contains_key(&address) {
            return Err(NetError::AddressInUse(address.0.clone()));
        }
        let (tx, rx) = bounded(ACCEPT_CAPACITY);
        reg.insert(address.clone(), tx);
        Ok(Listener { incoming: rx, address, network: self.clone() })
    }

    /// Connects to the listener at `address`, identifying ourselves (for
    /// diagnostics only — authentication happens in the handshake) as
    /// `from`.
    pub fn connect(&self, from: Address, address: &Address) -> Result<Duplex, NetError> {
        let accept_tx = {
            let reg = self.registry.lock();
            reg.get(address).cloned().ok_or_else(|| NetError::NoSuchAddress(address.0.clone()))?
        };
        let (c2s_tx, c2s_rx) = bounded(LINK_CAPACITY);
        let (s2c_tx, s2c_rx) = bounded(LINK_CAPACITY);
        let client_end = Duplex { tx: c2s_tx, rx: s2c_rx, peer: address.clone() };
        let server_end = Duplex { tx: s2c_tx, rx: c2s_rx, peer: from };
        accept_tx.send(server_end).map_err(|_| NetError::NoSuchAddress(address.0.clone()))?;
        Ok(client_end)
    }

    /// Number of currently bound listeners (diagnostics).
    pub fn listener_count(&self) -> usize {
        self.registry.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_connect_send_recv() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("alice"), &Address::new("bank")).unwrap();
        client.send(b"hello".to_vec()).unwrap();
        let server = listener.accept().unwrap();
        assert_eq!(server.peer.0, "alice");
        assert_eq!(server.recv().unwrap(), b"hello");
        server.send(b"world".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"world");
    }

    #[test]
    fn connect_to_unbound_address_fails() {
        let net = Network::new();
        assert!(matches!(
            net.connect(Address::new("x"), &Address::new("nowhere")),
            Err(NetError::NoSuchAddress(_))
        ));
    }

    #[test]
    fn double_bind_fails() {
        let net = Network::new();
        let _l = net.bind(Address::new("bank")).unwrap();
        assert!(matches!(net.bind(Address::new("bank")), Err(NetError::AddressInUse(_))));
    }

    #[test]
    fn listener_drop_releases_address() {
        let net = Network::new();
        {
            let _l = net.bind(Address::new("bank")).unwrap();
            assert_eq!(net.listener_count(), 1);
        }
        assert_eq!(net.listener_count(), 0);
        let _l2 = net.bind(Address::new("bank")).unwrap();
    }

    #[test]
    fn disconnection_is_detected() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert!(matches!(server.recv(), Err(NetError::Disconnected)));
        assert!(server.send(b"x".to_vec()).is_err());
    }

    #[test]
    fn try_recv_and_try_accept() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        assert!(matches!(listener.try_accept(), Ok(None)));
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.try_accept().unwrap().unwrap();
        assert!(matches!(server.try_recv(), Ok(None)));
        client.send(b"m".to_vec()).unwrap();
        assert_eq!(server.try_recv().unwrap().unwrap(), b"m");
    }

    #[test]
    fn timeout_fires() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let _server = listener.accept().unwrap();
        assert!(matches!(
            client.recv_timeout(StdDuration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn separate_networks_are_isolated() {
        let net1 = Network::new();
        let net2 = Network::new();
        let _l = net1.bind(Address::new("bank")).unwrap();
        assert!(net2.connect(Address::new("a"), &Address::new("bank")).is_err());
    }

    #[test]
    fn many_concurrent_connections() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let mut handles = Vec::new();
        for i in 0..32 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let c = net
                    .connect(Address::new(format!("client-{i}")), &Address::new("bank"))
                    .unwrap();
                c.send(format!("ping {i}").into_bytes()).unwrap();
                c.recv().unwrap()
            }));
        }
        for _ in 0..32 {
            let s = listener.accept().unwrap();
            let msg = s.recv().unwrap();
            let mut reply = b"pong ".to_vec();
            reply.extend_from_slice(&msg[5..]);
            s.send(reply).unwrap();
        }
        for h in handles {
            let reply = h.join().unwrap();
            assert!(reply.starts_with(b"pong "));
        }
    }
}
