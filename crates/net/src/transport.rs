//! Process-local message transport.
//!
//! A [`Network`] is a cheaply clonable handle to a registry of named
//! listeners. [`Network::connect`] builds a bounded duplex link (a pair of
//! crossbeam channels) and delivers the server end to the listener's
//! accept queue. Messages are whole byte vectors — the transport is
//! message-oriented like Globus I/O's message mode, so no stream
//! re-framing is needed above it.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::NetError;
use crate::fault::{FaultInjector, FaultVerdict, LinkFaults};

/// Capacity of each direction of a duplex link; a full peer applies
/// backpressure rather than unbounded buffering.
const LINK_CAPACITY: usize = 256;

/// Capacity of a listener's accept queue.
const ACCEPT_CAPACITY: usize = 1024;

/// Default blocking-receive timeout; generous for tests, short enough that
/// a wedged peer fails fast.
pub const DEFAULT_TIMEOUT: StdDuration = StdDuration::from_secs(10);

/// A network endpoint name, e.g. `"gridbank.vo-physics.org"`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Address(pub String);

impl Address {
    /// Convenience constructor.
    pub fn new(s: impl Into<String>) -> Self {
        Address(s.into())
    }
}

impl std::fmt::Display for Address {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Address {
    fn from(s: &str) -> Self {
        Address(s.to_string())
    }
}

/// Sends one message through the fault model (when installed): drops,
/// duplicates, reorders, or resets per the link's verdict stream. Shared
/// by [`Duplex`] and [`SendHalf`] so split and unsplit links behave
/// identically.
fn faulted_send(
    tx: &Sender<Vec<u8>>,
    faults: Option<&LinkFaults>,
    msg: Vec<u8>,
) -> Result<(), NetError> {
    let raw_send = |m: Vec<u8>| tx.send(m).map_err(|_| NetError::Disconnected);
    let Some(faults) = faults else {
        return raw_send(msg);
    };
    if faults.is_reset() {
        return Err(NetError::Disconnected);
    }
    let verdict = faults.draw();
    match verdict {
        FaultVerdict::Drop => return Ok(()),
        FaultVerdict::Reset => {
            faults.poison();
            return Err(NetError::Disconnected);
        }
        _ => {}
    }
    // A message held back by an earlier reorder verdict goes out
    // *after* this one, completing the one-slot swap.
    let held = faults.take_held();
    match verdict {
        FaultVerdict::Duplicate => {
            raw_send(msg.clone())?;
            raw_send(msg)?;
        }
        FaultVerdict::Reorder if held.is_none() => faults.hold(msg),
        _ => raw_send(msg)?,
    }
    if let Some(h) = held {
        raw_send(h)?;
    }
    Ok(())
}

fn faulted_recv(
    rx: &Receiver<Vec<u8>>,
    faults: Option<&LinkFaults>,
    timeout: StdDuration,
) -> Result<Vec<u8>, NetError> {
    if faults.is_some_and(|f| f.is_reset()) {
        return Err(NetError::Disconnected);
    }
    rx.recv_timeout(timeout).map_err(|e| match e {
        RecvTimeoutError::Timeout => NetError::Timeout,
        RecvTimeoutError::Disconnected => NetError::Disconnected,
    })
}

/// One end of a bidirectional message link.
pub struct Duplex {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    /// Fault state for the direction this end sends in; `None` when no
    /// injector was installed on the network. Shared (`Arc`) so the two
    /// halves of a [`Duplex::split`] keep one verdict stream.
    faults: Option<Arc<LinkFaults>>,
    /// Address of the remote side, for diagnostics.
    pub peer: Address,
}

impl Duplex {
    /// Sends one message; fails if the peer hung up (or the link was
    /// reset by fault injection).
    pub fn send(&self, msg: Vec<u8>) -> Result<(), NetError> {
        faulted_send(&self.tx, self.faults.as_deref(), msg)
    }

    /// Receives one message with the default timeout.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.recv_timeout(DEFAULT_TIMEOUT)
    }

    /// Receives one message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: StdDuration) -> Result<Vec<u8>, NetError> {
        faulted_recv(&self.rx, self.faults.as_deref(), timeout)
    }

    /// Non-blocking receive; `Ok(None)` when no message is waiting.
    pub fn try_recv(&self) -> Result<Option<Vec<u8>>, NetError> {
        if self.faults.as_ref().is_some_and(|f| f.is_reset()) {
            return Err(NetError::Disconnected);
        }
        match self.rx.try_recv() {
            Ok(m) => Ok(Some(m)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }

    /// Splits the link into independently owned send and receive halves,
    /// so one thread can block on receive while others send — the basis
    /// of pipelined RPC serving. Fault state stays shared: a reset on
    /// either half poisons both, and the send-direction verdict stream is
    /// unchanged by the split.
    pub fn split(self) -> (SendHalf, RecvHalf) {
        let send = SendHalf { tx: self.tx, faults: self.faults.clone(), peer: self.peer.clone() };
        let recv = RecvHalf { rx: self.rx, faults: self.faults, peer: self.peer };
        (send, recv)
    }
}

/// The sending half of a split [`Duplex`].
pub struct SendHalf {
    tx: Sender<Vec<u8>>,
    faults: Option<Arc<LinkFaults>>,
    /// Address of the remote side, for diagnostics.
    pub peer: Address,
}

impl SendHalf {
    /// Sends one message (same fault semantics as [`Duplex::send`]).
    pub fn send(&self, msg: Vec<u8>) -> Result<(), NetError> {
        faulted_send(&self.tx, self.faults.as_deref(), msg)
    }
}

/// The receiving half of a split [`Duplex`].
pub struct RecvHalf {
    rx: Receiver<Vec<u8>>,
    faults: Option<Arc<LinkFaults>>,
    /// Address of the remote side, for diagnostics.
    pub peer: Address,
}

impl RecvHalf {
    /// Receives one message with the default timeout.
    pub fn recv(&self) -> Result<Vec<u8>, NetError> {
        self.recv_timeout(DEFAULT_TIMEOUT)
    }

    /// Receives one message, waiting at most `timeout`.
    pub fn recv_timeout(&self, timeout: StdDuration) -> Result<Vec<u8>, NetError> {
        faulted_recv(&self.rx, self.faults.as_deref(), timeout)
    }
}

/// A bound listener: accepts inbound duplex links.
pub struct Listener {
    incoming: Receiver<Duplex>,
    address: Address,
    network: Network,
}

impl Listener {
    /// The bound address.
    pub fn address(&self) -> &Address {
        &self.address
    }

    /// Accepts the next inbound connection with the default timeout.
    pub fn accept(&self) -> Result<Duplex, NetError> {
        self.accept_timeout(DEFAULT_TIMEOUT)
    }

    /// Accepts with an explicit timeout.
    pub fn accept_timeout(&self, timeout: StdDuration) -> Result<Duplex, NetError> {
        self.incoming.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => NetError::Timeout,
            RecvTimeoutError::Disconnected => NetError::Disconnected,
        })
    }

    /// Non-blocking accept.
    pub fn try_accept(&self) -> Result<Option<Duplex>, NetError> {
        match self.incoming.try_recv() {
            Ok(d) => Ok(Some(d)),
            Err(crossbeam::channel::TryRecvError::Empty) => Ok(None),
            Err(crossbeam::channel::TryRecvError::Disconnected) => Err(NetError::Disconnected),
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        self.network.registry.lock().remove(&self.address);
    }
}

/// A handle to an in-process network. Clones share the same namespace.
#[derive(Clone, Default)]
pub struct Network {
    registry: Arc<Mutex<HashMap<Address, Sender<Duplex>>>>,
    injector: Arc<Mutex<Option<Arc<FaultInjector>>>>,
}

impl Network {
    /// Creates an empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a fault injector: every link created from now on carries
    /// its fault state (faults fire only while the injector is armed).
    pub fn install_faults(&self, injector: Arc<FaultInjector>) {
        *self.injector.lock() = Some(injector);
    }

    /// Binds a listener at `address`.
    pub fn bind(&self, address: Address) -> Result<Listener, NetError> {
        let mut reg = self.registry.lock();
        if reg.contains_key(&address) {
            return Err(NetError::AddressInUse(address.0.clone()));
        }
        let (tx, rx) = bounded(ACCEPT_CAPACITY);
        reg.insert(address.clone(), tx);
        Ok(Listener { incoming: rx, address, network: self.clone() })
    }

    /// Connects to the listener at `address`, identifying ourselves (for
    /// diagnostics only — authentication happens in the handshake) as
    /// `from`.
    pub fn connect(&self, from: Address, address: &Address) -> Result<Duplex, NetError> {
        let accept_tx = {
            let reg = self.registry.lock();
            reg.get(address).cloned().ok_or_else(|| NetError::NoSuchAddress(address.0.clone()))?
        };
        let (c2s_tx, c2s_rx) = bounded(LINK_CAPACITY);
        let (s2c_tx, s2c_rx) = bounded(LINK_CAPACITY);
        let (client_faults, server_faults) = match self.injector.lock().as_ref() {
            Some(inj) => {
                let (c, s) = inj.attach();
                (Some(Arc::new(c)), Some(Arc::new(s)))
            }
            None => (None, None),
        };
        let client_end =
            Duplex { tx: c2s_tx, rx: s2c_rx, faults: client_faults, peer: address.clone() };
        let server_end = Duplex { tx: s2c_tx, rx: c2s_rx, faults: server_faults, peer: from };
        accept_tx.send(server_end).map_err(|_| NetError::NoSuchAddress(address.0.clone()))?;
        Ok(client_end)
    }

    /// Number of currently bound listeners (diagnostics).
    pub fn listener_count(&self) -> usize {
        self.registry.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_connect_send_recv() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("alice"), &Address::new("bank")).unwrap();
        client.send(b"hello".to_vec()).unwrap();
        let server = listener.accept().unwrap();
        assert_eq!(server.peer.0, "alice");
        assert_eq!(server.recv().unwrap(), b"hello");
        server.send(b"world".to_vec()).unwrap();
        assert_eq!(client.recv().unwrap(), b"world");
    }

    #[test]
    fn connect_to_unbound_address_fails() {
        let net = Network::new();
        assert!(matches!(
            net.connect(Address::new("x"), &Address::new("nowhere")),
            Err(NetError::NoSuchAddress(_))
        ));
    }

    #[test]
    fn double_bind_fails() {
        let net = Network::new();
        let _l = net.bind(Address::new("bank")).unwrap();
        assert!(matches!(net.bind(Address::new("bank")), Err(NetError::AddressInUse(_))));
    }

    #[test]
    fn listener_drop_releases_address() {
        let net = Network::new();
        {
            let _l = net.bind(Address::new("bank")).unwrap();
            assert_eq!(net.listener_count(), 1);
        }
        assert_eq!(net.listener_count(), 0);
        let _l2 = net.bind(Address::new("bank")).unwrap();
    }

    #[test]
    fn disconnection_is_detected() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.accept().unwrap();
        drop(client);
        assert!(matches!(server.recv(), Err(NetError::Disconnected)));
        assert!(server.send(b"x".to_vec()).is_err());
    }

    #[test]
    fn try_recv_and_try_accept() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        assert!(matches!(listener.try_accept(), Ok(None)));
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.try_accept().unwrap().unwrap();
        assert!(matches!(server.try_recv(), Ok(None)));
        client.send(b"m".to_vec()).unwrap();
        assert_eq!(server.try_recv().unwrap().unwrap(), b"m");
    }

    #[test]
    fn timeout_fires() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let _server = listener.accept().unwrap();
        assert!(matches!(
            client.recv_timeout(StdDuration::from_millis(10)),
            Err(NetError::Timeout)
        ));
    }

    #[test]
    fn separate_networks_are_isolated() {
        let net1 = Network::new();
        let net2 = Network::new();
        let _l = net1.bind(Address::new("bank")).unwrap();
        assert!(net2.connect(Address::new("a"), &Address::new("bank")).is_err());
    }

    // Regression: the retry layer distinguishes retry-after-reconnect
    // (peer gone) from retry-on-same-connection (slow peer). A hung-up
    // peer must surface as Disconnected, never as a timeout.
    #[test]
    fn disconnect_and_timeout_stay_distinct() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.accept().unwrap();
        // Silent peer: timeout, and it is retryable.
        let e = client.recv_timeout(StdDuration::from_millis(5)).unwrap_err();
        assert_eq!(e, NetError::Timeout);
        assert!(e.is_retryable());
        // Hung-up peer: disconnected (not a timeout), also retryable.
        drop(server);
        let e = client.recv_timeout(StdDuration::from_millis(5)).unwrap_err();
        assert_eq!(e, NetError::Disconnected);
        assert!(e.is_retryable());
    }

    mod faults {
        use super::*;
        use crate::fault::{FaultInjector, FaultPlan, FaultRates};

        fn faulty_pair(plan: FaultPlan) -> (std::sync::Arc<FaultInjector>, Duplex, Duplex) {
            let net = Network::new();
            let inj = FaultInjector::new(plan);
            net.install_faults(inj.clone());
            inj.arm(true);
            let listener = net.bind(Address::new("srv")).unwrap();
            let client = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
            let server = listener.accept().unwrap();
            (inj, client, server)
        }

        #[test]
        fn dropped_messages_never_arrive() {
            let (inj, client, server) = faulty_pair(FaultPlan {
                seed: 5,
                to_server: FaultRates { drop_pm: 1000, ..FaultRates::NONE },
                to_client: FaultRates::NONE,
                skip_first: 0,
            });
            for i in 0..4u8 {
                client.send(vec![i]).unwrap();
            }
            assert_eq!(server.recv_timeout(StdDuration::from_millis(10)), Err(NetError::Timeout));
            assert_eq!(inj.counts().dropped, 4);
        }

        #[test]
        fn duplicates_arrive_twice() {
            let (inj, client, server) = faulty_pair(FaultPlan {
                seed: 5,
                to_server: FaultRates { duplicate_pm: 1000, ..FaultRates::NONE },
                to_client: FaultRates::NONE,
                skip_first: 0,
            });
            client.send(vec![7]).unwrap();
            assert_eq!(server.recv().unwrap(), vec![7]);
            assert_eq!(server.recv().unwrap(), vec![7]);
            assert_eq!(inj.counts().duplicated, 1);
        }

        #[test]
        fn reorder_swaps_adjacent_messages() {
            let (inj, client, server) = faulty_pair(FaultPlan {
                seed: 5,
                to_server: FaultRates { reorder_pm: 1000, ..FaultRates::NONE },
                to_client: FaultRates::NONE,
                skip_first: 0,
            });
            client.send(vec![1]).unwrap(); // held
            client.send(vec![2]).unwrap(); // delivered, then releases [1]
            assert_eq!(server.recv().unwrap(), vec![2]);
            assert_eq!(server.recv().unwrap(), vec![1]);
            assert!(inj.counts().reordered >= 1);
        }

        #[test]
        fn reset_poisons_the_link_for_both_ends() {
            let (inj, client, server) = faulty_pair(FaultPlan {
                seed: 5,
                to_server: FaultRates { reset_pm: 1000, ..FaultRates::NONE },
                to_client: FaultRates::NONE,
                skip_first: 0,
            });
            assert_eq!(client.send(vec![1]), Err(NetError::Disconnected));
            assert_eq!(client.send(vec![2]), Err(NetError::Disconnected));
            assert_eq!(server.try_recv(), Err(NetError::Disconnected));
            assert_eq!(inj.counts().resets, 1);
        }

        #[test]
        fn skip_first_lets_early_traffic_through() {
            let (_inj, client, server) = faulty_pair(FaultPlan {
                seed: 5,
                to_server: FaultRates { drop_pm: 1000, ..FaultRates::NONE },
                to_client: FaultRates::NONE,
                skip_first: 2,
            });
            client.send(vec![1]).unwrap();
            client.send(vec![2]).unwrap();
            client.send(vec![3]).unwrap(); // dropped
            assert_eq!(server.recv().unwrap(), vec![1]);
            assert_eq!(server.recv().unwrap(), vec![2]);
            assert_eq!(server.recv_timeout(StdDuration::from_millis(10)), Err(NetError::Timeout));
        }

        #[test]
        fn disarmed_and_fault_free_networks_behave_identically() {
            let (inj, client, server) =
                faulty_pair(FaultPlan::symmetric(9, FaultRates::uniform(250)));
            inj.arm(false);
            for i in 0..20u8 {
                client.send(vec![i]).unwrap();
                assert_eq!(server.recv().unwrap(), vec![i]);
            }
            assert_eq!(inj.counts().total(), 0);
        }
    }

    #[test]
    fn split_halves_carry_traffic_and_share_reset_state() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let client = net.connect(Address::new("a"), &Address::new("bank")).unwrap();
        let server = listener.accept().unwrap();
        let (ctx, crx) = client.split();
        assert_eq!(ctx.peer.0, "bank");
        assert_eq!(crx.peer.0, "bank");
        // Echo from another thread (which owns the server end) while this
        // one drives the split halves.
        let echo = std::thread::spawn(move || {
            let msg = server.recv().unwrap();
            server.send(msg).unwrap();
            // Dropping both client halves hangs up the link like
            // dropping a whole Duplex.
            matches!(server.recv(), Err(NetError::Disconnected))
        });
        ctx.send(b"ping".to_vec()).unwrap();
        assert_eq!(crx.recv().unwrap(), b"ping");
        drop(ctx);
        drop(crx);
        assert!(echo.join().unwrap());
    }

    #[test]
    fn split_halves_share_fault_reset() {
        use crate::fault::{FaultInjector, FaultPlan, FaultRates};
        let net = Network::new();
        let inj = FaultInjector::new(FaultPlan {
            seed: 5,
            to_server: FaultRates { reset_pm: 1000, ..FaultRates::NONE },
            to_client: FaultRates::NONE,
            skip_first: 0,
        });
        net.install_faults(inj.clone());
        inj.arm(true);
        let listener = net.bind(Address::new("srv")).unwrap();
        let client = net.connect(Address::new("cli"), &Address::new("srv")).unwrap();
        let _server = listener.accept().unwrap();
        let (ctx, crx) = client.split();
        // The first send draws a reset verdict; the receive half observes
        // the same poisoned link immediately.
        assert_eq!(ctx.send(vec![1]), Err(NetError::Disconnected));
        assert_eq!(crx.recv(), Err(NetError::Disconnected));
    }

    #[test]
    fn many_concurrent_connections() {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let mut handles = Vec::new();
        for i in 0..32 {
            let net = net.clone();
            handles.push(std::thread::spawn(move || {
                let c = net
                    .connect(Address::new(format!("client-{i}")), &Address::new("bank"))
                    .unwrap();
                c.send(format!("ping {i}").into_bytes()).unwrap();
                c.recv().unwrap()
            }));
        }
        for _ in 0..32 {
            let s = listener.accept().unwrap();
            let msg = s.recv().unwrap();
            let mut reply = b"pong ".to_vec();
            reply.extend_from_slice(&msg[5..]);
            s.send(reply).unwrap();
        }
        for h in handles {
            let reply = h.join().unwrap();
            assert!(reply.starts_with(b"pong "));
        }
    }
}
