//! Deterministic fault injection for the transport layer.
//!
//! A [`FaultInjector`] installed on a [`crate::transport::Network`]
//! attaches per-link fault state to every subsequently created duplex
//! link. Faults are drawn at *send* time from a seeded per-link,
//! per-direction RNG, so a given `(seed, connect-order, traffic)` triple
//! always produces the same loss pattern — chaos tests are reproducible
//! from their seed alone.
//!
//! Fault kinds (all rates in per-mille of sent messages):
//!
//! * **drop** — the message is silently discarded.
//! * **duplicate** — the message is delivered twice.
//! * **reorder** — the message is held back and delivered after the next
//!   one (a one-slot swap), modelling out-of-order delivery.
//! * **reset** — the link is poisoned: this send and every later
//!   operation on either end fails with `Disconnected`, modelling a
//!   connection reset.
//!
//! Above the secure channel, drop/duplicate/reorder surface as `Timeout`
//! or `ChannelIntegrity` (strict sequence numbers reject tampered
//! streams) and reset as `Disconnected` — all retryable, forcing the
//! resilient client through its full reconnect-and-retry path.
//!
//! The first `skip_first` sends in each direction of each link are never
//! faulted. The mutual handshake is exactly two messages per direction,
//! so the default (2) lets connections establish and then faults only
//! RPC traffic; set it to 0 to attack handshakes too. Scoping faults to
//! specific operations (e.g. only payment RPCs) is done by arming the
//! injector around those calls — see `docs/RESILIENCE.md`.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// SplitMix64 step — the deterministic RNG behind fault draws and retry
/// jitter (shared so both subsystems stay dependency-free).
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-direction fault rates, in per-mille (0..=1000) of sent messages.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Probability (‰) a message is silently dropped.
    pub drop_pm: u32,
    /// Probability (‰) a message is delivered twice.
    pub duplicate_pm: u32,
    /// Probability (‰) a message is held back one slot (reordered).
    pub reorder_pm: u32,
    /// Probability (‰) the connection is reset on this send.
    pub reset_pm: u32,
}

impl FaultRates {
    /// No faults.
    pub const NONE: FaultRates =
        FaultRates { drop_pm: 0, duplicate_pm: 0, reorder_pm: 0, reset_pm: 0 };

    /// A uniform mix: each kind at `pm`‰ (total fault rate = 4·`pm`‰).
    pub fn uniform(pm: u32) -> FaultRates {
        FaultRates { drop_pm: pm, duplicate_pm: pm, reorder_pm: pm, reset_pm: pm }
    }

    fn total(&self) -> u32 {
        self.drop_pm + self.duplicate_pm + self.reorder_pm + self.reset_pm
    }
}

/// A full fault plan: seed, per-direction rates, handshake grace.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    /// Master seed; every link derives its RNG from this.
    pub seed: u64,
    /// Faults applied to client→server traffic.
    pub to_server: FaultRates,
    /// Faults applied to server→client traffic.
    pub to_client: FaultRates,
    /// Number of initial sends per direction per link that are never
    /// faulted (2 = spare the mutual handshake).
    pub skip_first: u32,
}

impl FaultPlan {
    /// Symmetric plan: same rates both directions, handshake spared.
    pub fn symmetric(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan { seed, to_server: rates, to_client: rates, skip_first: 2 }
    }
}

/// What the injector decided for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum FaultVerdict {
    /// Deliver normally.
    Deliver,
    /// Discard silently.
    Drop,
    /// Deliver twice.
    Duplicate,
    /// Hold back one slot.
    Reorder,
    /// Poison the link.
    Reset,
}

/// Counts of injected faults, for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Messages dropped.
    pub dropped: u64,
    /// Messages duplicated.
    pub duplicated: u64,
    /// Messages reordered.
    pub reordered: u64,
    /// Connections reset.
    pub resets: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.dropped + self.duplicated + self.reordered + self.resets
    }
}

/// The installable injector. Create one, install it on a `Network`, and
/// arm it once setup traffic is done.
pub struct FaultInjector {
    plan: FaultPlan,
    armed: AtomicBool,
    links: AtomicU64,
    dropped: AtomicU64,
    duplicated: AtomicU64,
    reordered: AtomicU64,
    resets: AtomicU64,
}

impl FaultInjector {
    /// Builds an injector (initially disarmed) from a plan.
    pub fn new(plan: FaultPlan) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            plan,
            armed: AtomicBool::new(false),
            links: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            reordered: AtomicU64::new(0),
            resets: AtomicU64::new(0),
        })
    }

    /// Arms or disarms fault injection. Disarmed links deliver normally,
    /// so tests can set up a clean world and then let chaos loose —
    /// or scope faults to specific RPC kinds by arming around them.
    pub fn arm(&self, on: bool) {
        self.armed.store(on, Ordering::SeqCst);
    }

    /// Whether faults are currently being injected.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::SeqCst)
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of injected-fault counters.
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }

    /// Builds the two per-direction fault ends for a new link. The link
    /// id comes from a connect-order counter, so single-threaded drivers
    /// get fully deterministic fault sequences.
    pub(crate) fn attach(self: &Arc<Self>) -> (LinkFaults, LinkFaults) {
        let link = self.links.fetch_add(1, Ordering::SeqCst);
        let reset = Arc::new(AtomicBool::new(false));
        let client_end = LinkFaults {
            injector: Arc::clone(self),
            rates: self.plan.to_server,
            rng: Mutex::new(self.plan.seed ^ (link << 1)),
            sent: AtomicU32::new(0),
            held: Mutex::new(None),
            reset: Arc::clone(&reset),
        };
        let server_end = LinkFaults {
            injector: Arc::clone(self),
            rates: self.plan.to_client,
            rng: Mutex::new(self.plan.seed ^ (link << 1) ^ 1),
            sent: AtomicU32::new(0),
            held: Mutex::new(None),
            reset,
        };
        (client_end, server_end)
    }

    fn record(&self, verdict: FaultVerdict) {
        let (counter, name) = match verdict {
            FaultVerdict::Deliver => return,
            FaultVerdict::Drop => (&self.dropped, "net.fault.injected.drop"),
            FaultVerdict::Duplicate => (&self.duplicated, "net.fault.injected.duplicate"),
            FaultVerdict::Reorder => (&self.reordered, "net.fault.injected.reorder"),
            FaultVerdict::Reset => (&self.resets, "net.fault.injected.reset"),
        };
        counter.fetch_add(1, Ordering::Relaxed);
        gridbank_obs::count(name, 1);
    }
}

/// One direction's fault state on one link, owned by the sending end.
pub(crate) struct LinkFaults {
    injector: Arc<FaultInjector>,
    rates: FaultRates,
    rng: Mutex<u64>,
    sent: AtomicU32,
    held: Mutex<Option<Vec<u8>>>,
    /// Shared with the opposite end: a reset poisons the whole link.
    reset: Arc<AtomicBool>,
}

impl LinkFaults {
    /// Whether a reset fault has poisoned this link.
    pub(crate) fn is_reset(&self) -> bool {
        self.reset.load(Ordering::SeqCst)
    }

    pub(crate) fn poison(&self) {
        self.reset.store(true, Ordering::SeqCst);
    }

    /// Takes the held-back (reordered) message, if any.
    pub(crate) fn take_held(&self) -> Option<Vec<u8>> {
        self.held.lock().take()
    }

    pub(crate) fn hold(&self, msg: Vec<u8>) {
        *self.held.lock() = Some(msg);
    }

    /// Draws the verdict for the next message in this direction.
    pub(crate) fn draw(&self) -> FaultVerdict {
        let seq = self.sent.fetch_add(1, Ordering::SeqCst);
        if !self.injector.is_armed() || seq < self.injector.plan.skip_first {
            return FaultVerdict::Deliver;
        }
        if self.rates.total() == 0 {
            return FaultVerdict::Deliver;
        }
        let roll = (splitmix64(&mut self.rng.lock()) % 1000) as u32;
        let verdict = if roll < self.rates.drop_pm {
            FaultVerdict::Drop
        } else if roll < self.rates.drop_pm + self.rates.duplicate_pm {
            FaultVerdict::Duplicate
        } else if roll < self.rates.drop_pm + self.rates.duplicate_pm + self.rates.reorder_pm {
            FaultVerdict::Reorder
        } else if roll < self.rates.total() {
            FaultVerdict::Reset
        } else {
            FaultVerdict::Deliver
        };
        self.injector.record(verdict);
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(end: &LinkFaults, n: usize) -> Vec<FaultVerdict> {
        (0..n).map(|_| end.draw()).collect()
    }

    #[test]
    fn disarmed_injector_never_faults() {
        let inj = FaultInjector::new(FaultPlan::symmetric(7, FaultRates::uniform(250)));
        let (c, _s) = inj.attach();
        assert!(drain(&c, 100).iter().all(|v| *v == FaultVerdict::Deliver));
        assert_eq!(inj.counts().total(), 0);
    }

    #[test]
    fn skip_first_spares_the_handshake() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 1,
            to_server: FaultRates { drop_pm: 1000, ..FaultRates::NONE },
            to_client: FaultRates::NONE,
            skip_first: 2,
        });
        inj.arm(true);
        let (c, s) = inj.attach();
        // First two client sends (the handshake share) always deliver.
        assert_eq!(drain(&c, 2), vec![FaultVerdict::Deliver; 2]);
        // Everything after is dropped at 1000‰.
        assert_eq!(drain(&c, 5), vec![FaultVerdict::Drop; 5]);
        // The server direction has zero rates: never faulted.
        assert!(drain(&s, 20).iter().all(|v| *v == FaultVerdict::Deliver));
        assert_eq!(inj.counts().dropped, 5);
    }

    #[test]
    fn same_seed_same_verdict_sequence() {
        let draw_all = |seed: u64| {
            let inj = FaultInjector::new(FaultPlan::symmetric(seed, FaultRates::uniform(100)));
            inj.arm(true);
            let (c, _s) = inj.attach();
            drain(&c, 200)
        };
        assert_eq!(draw_all(42), draw_all(42));
        assert_ne!(draw_all(42), draw_all(43));
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let inj = FaultInjector::new(FaultPlan {
            seed: 99,
            to_server: FaultRates { drop_pm: 200, ..FaultRates::NONE },
            to_client: FaultRates::NONE,
            skip_first: 0,
        });
        inj.arm(true);
        let (c, _s) = inj.attach();
        let verdicts = drain(&c, 2000);
        let drops = verdicts.iter().filter(|v| **v == FaultVerdict::Drop).count();
        // 200‰ of 2000 = 400 expected; accept a generous band.
        assert!((250..550).contains(&drops), "got {drops} drops");
    }

    #[test]
    fn reset_poisons_both_ends() {
        let inj = FaultInjector::new(FaultPlan::symmetric(3, FaultRates::NONE));
        let (c, s) = inj.attach();
        assert!(!c.is_reset() && !s.is_reset());
        c.poison();
        assert!(c.is_reset() && s.is_reset());
    }
}
