//! Minimal wire encoding for crypto types used during the handshake.
//!
//! Deliberately local to this crate: the *payloads* that flow over
//! established channels use the shared codec in `gridbank-rur`; only the
//! handshake itself (certificates, signatures) needs these helpers, and
//! keeping them here avoids a dependency cycle.

use gridbank_crypto::cert::{Certificate, CertificateBody, ProxyCertificate, SubjectName};
use gridbank_crypto::keys::VerifyingKey;
use gridbank_crypto::lamport::{OneTimePublicKey, OneTimeSignature};
use gridbank_crypto::merkle::{AuthPath, MerkleSignature};
use gridbank_crypto::sha256::{Digest, DIGEST_LEN};

use crate::error::NetError;

pub(crate) struct Writer {
    pub buf: Vec<u8>,
}

impl Writer {
    pub fn new() -> Self {
        Writer { buf: Vec::with_capacity(256) }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    pub fn bytes(&mut self, v: &[u8]) {
        self.u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    pub fn str(&mut self, v: &str) {
        self.bytes(v.as_bytes());
    }

    pub fn digest(&mut self, d: &Digest) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    pub fn sig(&mut self, s: &MerkleSignature) {
        self.u64(s.leaf_index as u64);
        self.bytes(&s.ots.to_bytes());
        self.digest(&s.leaf_pk.0);
        self.u64(s.path.index as u64);
        self.u64(s.path.siblings.len() as u64);
        for sib in &s.path.siblings {
            self.digest(sib);
        }
    }

    pub fn cert(&mut self, c: &Certificate) {
        self.str(&c.body.subject.0);
        self.str(&c.body.issuer.0);
        self.digest(&c.body.subject_key.0);
        self.u64(c.body.not_before);
        self.u64(c.body.not_after);
        self.u64(c.body.serial);
        self.sig(&c.signature);
    }

    pub fn proxy(&mut self, p: &ProxyCertificate) {
        self.str(&p.body.subject.0);
        self.str(&p.body.issuer.0);
        self.digest(&p.body.subject_key.0);
        self.u64(p.body.not_before);
        self.u64(p.body.not_after);
        self.u64(p.body.serial);
        self.sig(&p.signature);
        self.cert(&p.user_cert);
        self.u8(p.delegation_depth);
    }
}

pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.buf.len() - self.pos < n {
            return Err(NetError::Malformed(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    pub fn u64(&mut self) -> Result<u64, NetError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_be_bytes(a))
    }

    pub fn bytes(&mut self) -> Result<&'a [u8], NetError> {
        let len = self.u64()? as usize;
        if len > 1 << 24 {
            return Err(NetError::Malformed(format!("implausible length {len}")));
        }
        self.take(len)
    }

    pub fn str(&mut self) -> Result<String, NetError> {
        String::from_utf8(self.bytes()?.to_vec())
            .map_err(|e| NetError::Malformed(format!("bad utf-8: {e}")))
    }

    pub fn digest(&mut self) -> Result<Digest, NetError> {
        let b = self.take(DIGEST_LEN)?;
        let mut a = [0u8; DIGEST_LEN];
        a.copy_from_slice(b);
        Ok(Digest(a))
    }

    pub fn sig(&mut self) -> Result<MerkleSignature, NetError> {
        let leaf_index = self.u64()? as usize;
        let ots = OneTimeSignature::from_bytes(self.bytes()?)
            .map_err(|e| NetError::Malformed(e.to_string()))?;
        let leaf_pk = OneTimePublicKey(self.digest()?);
        let path_index = self.u64()? as usize;
        let n = self.u64()? as usize;
        if n > 64 {
            return Err(NetError::Malformed(format!("auth path depth {n} too large")));
        }
        let mut siblings = Vec::with_capacity(n);
        for _ in 0..n {
            siblings.push(self.digest()?);
        }
        Ok(MerkleSignature {
            leaf_index,
            ots,
            leaf_pk,
            path: AuthPath { index: path_index, siblings },
        })
    }

    pub fn cert(&mut self) -> Result<Certificate, NetError> {
        let body = CertificateBody {
            subject: SubjectName(self.str()?),
            issuer: SubjectName(self.str()?),
            subject_key: VerifyingKey(self.digest()?),
            not_before: self.u64()?,
            not_after: self.u64()?,
            serial: self.u64()?,
        };
        let signature = self.sig()?;
        Ok(Certificate { body, signature })
    }

    pub fn proxy(&mut self) -> Result<ProxyCertificate, NetError> {
        let body = CertificateBody {
            subject: SubjectName(self.str()?),
            issuer: SubjectName(self.str()?),
            subject_key: VerifyingKey(self.digest()?),
            not_before: self.u64()?,
            not_after: self.u64()?,
            serial: self.u64()?,
        };
        let signature = self.sig()?;
        let user_cert = self.cert()?;
        let delegation_depth = self.u8()?;
        Ok(ProxyCertificate { body, signature, user_cert, delegation_depth })
    }

    pub fn finish(self) -> Result<(), NetError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(NetError::Malformed(format!("{} trailing bytes", self.buf.len() - self.pos)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_crypto::cert::{create_proxy, CertificateAuthority};
    use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};

    #[test]
    fn cert_and_proxy_round_trip() {
        let ca_id = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca");
        let ca = CertificateAuthority::new(SubjectName::new("GB", "CA", "Root"), ca_id);
        let user = SigningIdentity::generate_small(KeyMaterial { seed: 2 }, "alice");
        let cert = ca
            .issue(SubjectName::new("UWA", "CSSE", "alice"), user.verifying_key(), 0, 100)
            .unwrap();
        let proxy_key = SigningIdentity::generate_small(KeyMaterial { seed: 3 }, "p");
        let proxy = create_proxy(&user, &cert, proxy_key.verifying_key(), 0, 50, 1).unwrap();

        let mut w = Writer::new();
        w.proxy(&proxy);
        let mut r = Reader::new(&w.buf);
        let back = r.proxy().unwrap();
        r.finish().unwrap();

        assert_eq!(back.body, proxy.body);
        assert_eq!(back.user_cert.body, proxy.user_cert.body);
        assert_eq!(back.delegation_depth, 1);
        // The decoded chain still verifies.
        back.verify_chain(&ca.verifying_key(), 25).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let ca_id = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca");
        let ca = CertificateAuthority::new(SubjectName::new("GB", "CA", "Root"), ca_id);
        let user = SigningIdentity::generate_small(KeyMaterial { seed: 2 }, "u");
        let cert = ca.issue(SubjectName::new("O", "U", "u"), user.verifying_key(), 0, 10).unwrap();
        let mut w = Writer::new();
        w.cert(&cert);
        for cut in [0, 1, w.buf.len() / 2, w.buf.len() - 1] {
            let mut r = Reader::new(&w.buf[..cut]);
            assert!(r.cert().is_err(), "cut {cut}");
        }
    }

    #[test]
    fn hostile_lengths_rejected() {
        // A length prefix claiming 2^32 bytes must not allocate.
        let mut w = Writer::new();
        w.u64(u32::MAX as u64 + 5);
        let mut r = Reader::new(&w.buf);
        assert!(matches!(r.bytes(), Err(NetError::Malformed(_))));
    }
}
