//! GSS-style mutual authentication handshake.
//!
//! Message flow (all over the raw [`Duplex`]; the secure channel only
//! exists afterwards):
//!
//! ```text
//! C -> S : ClientHello  { nonce_c, proxy-certificate chain }
//! S      : verify chain against CA; run the connection gate
//! S -> C : Reject { reason }                                (and drop)   or
//! S -> C : ServerHello  { nonce_s, server cert, sig_S(T1) }
//! C      : verify cert + signature
//! C -> S : ClientAuth   { sig_proxy(T2) }
//! S      : verify; both derive session secret from T2
//! S -> C : Done
//! ```
//!
//! `T1 = H(client_hello || server_hello_prefix)`, `T2 = H(T1 || sig_S)`.
//! Both signatures cover the full transcript, so neither side can be
//! replayed into a different session (nonces) or a different peer
//! (certificates are part of the transcript).

use gridbank_crypto::cert::{Certificate, ProxyCertificate, SubjectName};
use gridbank_crypto::keys::{SigningIdentity, VerifyingKey};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_crypto::sha256::{Digest, Sha256};

use crate::channel::SecureChannel;
use crate::error::NetError;
use crate::gate::{AdmissionDecision, ConnectionGate};
use crate::transport::Duplex;
use crate::wire::{Reader, Writer};

const TAG_CLIENT_HELLO: u8 = 1;
const TAG_REJECT: u8 = 2;
const TAG_SERVER_HELLO: u8 = 3;
const TAG_CLIENT_AUTH: u8 = 4;
const TAG_DONE: u8 = 5;

/// Shared handshake configuration.
#[derive(Clone)]
pub struct HandshakeConfig {
    /// The CA key both sides trust.
    pub ca_key: VerifyingKey,
    /// Current time in the abstract epoch certificates use.
    pub now: u64,
}

/// The authenticated identity of the remote peer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerIdentity {
    /// Subject as presented (possibly a proxy DN).
    pub subject: SubjectName,
    /// The base (non-proxy) grid identity.
    pub base: SubjectName,
}

fn transcript1(client_hello: &[u8], nonce_s: &Digest, server_cert_bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"gb-hs-t1");
    h.update(client_hello);
    h.update(nonce_s.as_bytes());
    h.update(server_cert_bytes);
    h.finalize()
}

fn transcript2(t1: &Digest, sig_s_bytes: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"gb-hs-t2");
    h.update(t1.as_bytes());
    h.update(sig_s_bytes);
    h.finalize()
}

/// Client side: authenticate with a proxy certificate (single sign-on) and
/// the proxy's signing identity.
pub fn client_handshake(
    duplex: Duplex,
    config: &HandshakeConfig,
    proxy: &ProxyCertificate,
    proxy_identity: &SigningIdentity,
    nonce_stream: &mut DeterministicStream,
) -> Result<(SecureChannel, PeerIdentity), NetError> {
    let _span = gridbank_obs::span("net", "handshake_client");
    let timer = gridbank_obs::Stopwatch::start();
    let result = client_handshake_inner(duplex, config, proxy, proxy_identity, nonce_stream);
    match &result {
        Ok(_) => gridbank_obs::count("net.handshake.client.success", 1),
        Err(_) => gridbank_obs::count("net.handshake.client.failure", 1),
    }
    timer.record_named("net.handshake.client.duration_ns");
    result
}

fn client_handshake_inner(
    duplex: Duplex,
    config: &HandshakeConfig,
    proxy: &ProxyCertificate,
    proxy_identity: &SigningIdentity,
    nonce_stream: &mut DeterministicStream,
) -> Result<(SecureChannel, PeerIdentity), NetError> {
    // 1. ClientHello.
    let nonce_c = nonce_stream.next_digest();
    let mut hello = Writer::new();
    hello.u8(TAG_CLIENT_HELLO);
    hello.digest(&nonce_c);
    hello.proxy(proxy);
    let hello_bytes = hello.buf;
    duplex.send(hello_bytes.clone())?;

    // 2. ServerHello or Reject.
    let reply = duplex.recv()?;
    let mut r = Reader::new(&reply);
    match r.u8()? {
        TAG_REJECT => {
            let reason = r.str()?;
            return Err(NetError::Refused { subject: proxy.body.subject.0.clone(), reason });
        }
        TAG_SERVER_HELLO => {}
        t => return Err(NetError::Malformed(format!("unexpected handshake tag {t}"))),
    }
    let nonce_s = r.digest()?;
    let server_cert = r.cert()?;
    let sig_s = r.sig()?;
    r.finish()?;

    // Verify the server's certificate and transcript signature.
    server_cert
        .verify(&config.ca_key, config.now)
        .map_err(|e| NetError::Handshake(format!("server certificate invalid: {e}")))?;
    let mut cert_w = Writer::new();
    cert_w.cert(&server_cert);
    let t1 = transcript1(&hello_bytes, &nonce_s, &cert_w.buf);
    server_cert
        .body
        .subject_key
        .verify(t1.as_bytes(), &sig_s)
        .map_err(|e| NetError::Handshake(format!("server transcript signature invalid: {e}")))?;

    // 3. ClientAuth.
    let mut sig_s_w = Writer::new();
    sig_s_w.sig(&sig_s);
    let t2 = transcript2(&t1, &sig_s_w.buf);
    let sig_c = proxy_identity.sign(t2.as_bytes()).map_err(NetError::Crypto)?;
    let mut auth = Writer::new();
    auth.u8(TAG_CLIENT_AUTH);
    auth.sig(&sig_c);
    duplex.send(auth.buf)?;

    // 4. Done.
    let done = duplex.recv()?;
    let mut r = Reader::new(&done);
    match r.u8()? {
        TAG_DONE => {}
        TAG_REJECT => {
            let reason = r.str()?;
            return Err(NetError::Refused { subject: proxy.body.subject.0.clone(), reason });
        }
        t => return Err(NetError::Malformed(format!("unexpected handshake tag {t}"))),
    }

    let peer = PeerIdentity {
        subject: server_cert.body.subject.clone(),
        base: server_cert.body.subject.base_identity(),
    };
    Ok((SecureChannel::new(duplex, &t2, true), peer))
}

/// Server side: authenticate the client's proxy chain, run the gate, and
/// prove our own identity.
pub fn server_handshake(
    duplex: Duplex,
    config: &HandshakeConfig,
    server_cert: &Certificate,
    server_identity: &SigningIdentity,
    gate: &dyn ConnectionGate,
    nonce_stream: &mut DeterministicStream,
) -> Result<(SecureChannel, PeerIdentity), NetError> {
    let _span = gridbank_obs::span("net", "handshake_server");
    let timer = gridbank_obs::Stopwatch::start();
    let result =
        server_handshake_inner(duplex, config, server_cert, server_identity, gate, nonce_stream);
    match &result {
        Ok(_) => gridbank_obs::count("net.handshake.server.success", 1),
        // Gate refusals are policy, not protocol failure — count apart.
        Err(NetError::Refused { .. }) => gridbank_obs::count("net.gate.rejected", 1),
        Err(_) => gridbank_obs::count("net.handshake.server.failure", 1),
    }
    timer.record_named("net.handshake.server.duration_ns");
    result
}

fn server_handshake_inner(
    duplex: Duplex,
    config: &HandshakeConfig,
    server_cert: &Certificate,
    server_identity: &SigningIdentity,
    gate: &dyn ConnectionGate,
    nonce_stream: &mut DeterministicStream,
) -> Result<(SecureChannel, PeerIdentity), NetError> {
    // 1. ClientHello.
    let hello_bytes = duplex.recv()?;
    let mut r = Reader::new(&hello_bytes);
    if r.u8()? != TAG_CLIENT_HELLO {
        return Err(NetError::Malformed("expected ClientHello".into()));
    }
    let _nonce_c = r.digest()?;
    let proxy = r.proxy()?;
    r.finish()?;

    // Authenticate the chain before consulting the gate: the gate's input
    // must be a *proven* subject, not a claimed one.
    if let Err(e) = proxy.verify_chain(&config.ca_key, config.now) {
        let mut rej = Writer::new();
        rej.u8(TAG_REJECT);
        rej.str(&format!("credential rejected: {e}"));
        let _ = duplex.send(rej.buf);
        return Err(NetError::Handshake(format!("client chain invalid: {e}")));
    }
    let subject = proxy.body.subject.clone();

    // 2. Gate: refuse unknown subjects before any request can be sent.
    if let AdmissionDecision::Deny(reason) = gate.admit(&subject) {
        let mut rej = Writer::new();
        rej.u8(TAG_REJECT);
        rej.str(&reason);
        let _ = duplex.send(rej.buf);
        return Err(NetError::Refused { subject: subject.0, reason });
    }

    // 3. ServerHello.
    let nonce_s = nonce_stream.next_digest();
    let mut cert_w = Writer::new();
    cert_w.cert(server_cert);
    let t1 = transcript1(&hello_bytes, &nonce_s, &cert_w.buf);
    let sig_s = server_identity.sign(t1.as_bytes()).map_err(NetError::Crypto)?;
    let mut sh = Writer::new();
    sh.u8(TAG_SERVER_HELLO);
    sh.digest(&nonce_s);
    sh.cert(server_cert);
    sh.sig(&sig_s);
    duplex.send(sh.buf)?;

    // 4. ClientAuth.
    let mut sig_s_w = Writer::new();
    sig_s_w.sig(&sig_s);
    let t2 = transcript2(&t1, &sig_s_w.buf);
    let auth_bytes = duplex.recv()?;
    let mut r = Reader::new(&auth_bytes);
    if r.u8()? != TAG_CLIENT_AUTH {
        return Err(NetError::Malformed("expected ClientAuth".into()));
    }
    let sig_c = r.sig()?;
    r.finish()?;
    // The proxy's key signs the transcript.
    proxy
        .body
        .subject_key
        .verify(t2.as_bytes(), &sig_c)
        .map_err(|e| NetError::Handshake(format!("client transcript signature invalid: {e}")))?;

    // 5. Done.
    let mut done = Writer::new();
    done.u8(TAG_DONE);
    duplex.send(done.buf)?;

    let peer = PeerIdentity { base: subject.base_identity(), subject };
    Ok((SecureChannel::new(duplex, &t2, false), peer))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::{AllowListGate, OpenGate};
    use crate::transport::{Address, Network};
    use gridbank_crypto::cert::{create_proxy, CertificateAuthority};
    use gridbank_crypto::keys::KeyMaterial;

    struct Fixture {
        ca: CertificateAuthority,
        server_cert: Certificate,
        server_id: SigningIdentity,
        alice_cert: Certificate,
        alice_id: SigningIdentity,
    }

    fn fixture() -> Fixture {
        let ca_id = SigningIdentity::generate_small(KeyMaterial { seed: 10 }, "ca");
        let ca = CertificateAuthority::new(SubjectName::new("GB", "CA", "Root"), ca_id);
        let server_id = SigningIdentity::generate_small(KeyMaterial { seed: 11 }, "bank");
        let server_cert = ca
            .issue(SubjectName::new("GB", "Bank", "gridbank"), server_id.verifying_key(), 0, 1000)
            .unwrap();
        let alice_id = SigningIdentity::generate_small(KeyMaterial { seed: 12 }, "alice");
        let alice_cert = ca
            .issue(SubjectName::new("UWA", "CSSE", "alice"), alice_id.verifying_key(), 0, 1000)
            .unwrap();
        Fixture { ca, server_cert, server_id, alice_cert, alice_id }
    }

    fn alice_proxy(f: &Fixture) -> (ProxyCertificate, SigningIdentity) {
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 13 }, "alice-proxy");
        let proxy =
            create_proxy(&f.alice_id, &f.alice_cert, proxy_id.verifying_key(), 0, 500, 1).unwrap();
        (proxy, proxy_id)
    }

    type HandshakeResult = Result<(SecureChannel, PeerIdentity), NetError>;

    fn run_handshake(
        f: &Fixture,
        gate: &dyn ConnectionGate,
        now: u64,
        proxy: &ProxyCertificate,
        proxy_id: &SigningIdentity,
    ) -> (HandshakeResult, HandshakeResult) {
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let config = HandshakeConfig { ca_key: f.ca.verifying_key(), now };
        let client_link = net.connect(Address::new("alice"), &Address::new("bank")).unwrap();
        let server_link = listener.accept().unwrap();

        let cfg2 = config.clone();
        let server_cert = f.server_cert.clone();
        let (client_res, server_res) = std::thread::scope(|s| {
            let server = s.spawn(|| {
                let mut nonces = DeterministicStream::from_u64(1, b"server-nonce");
                server_handshake(server_link, &cfg2, &server_cert, &f.server_id, gate, &mut nonces)
            });
            let mut nonces = DeterministicStream::from_u64(2, b"client-nonce");
            let client = client_handshake(client_link, &config, proxy, proxy_id, &mut nonces);
            (client, server.join().unwrap())
        });
        (client_res, server_res)
    }

    #[test]
    fn mutual_auth_succeeds_and_channel_works() {
        let f = fixture();
        let (proxy, proxy_id) = alice_proxy(&f);
        let (c, s) = run_handshake(&f, &OpenGate, 50, &proxy, &proxy_id);
        let (mut cch, server_peer) = c.unwrap();
        let (mut sch, client_peer) = s.unwrap();
        assert_eq!(server_peer.base.common_name(), Some("gridbank"));
        assert_eq!(client_peer.base.common_name(), Some("alice"));
        assert!(client_peer.subject.is_proxy());

        cch.send(b"request balance").unwrap();
        assert_eq!(sch.recv().unwrap(), b"request balance");
        sch.send(b"G$42").unwrap();
        assert_eq!(cch.recv().unwrap(), b"G$42");
    }

    #[test]
    fn gate_refusal_reaches_client() {
        let f = fixture();
        let (proxy, proxy_id) = alice_proxy(&f);
        let gate = AllowListGate::new([SubjectName::new("Only", "This", "person")]);
        let (c, s) = run_handshake(&f, &gate, 50, &proxy, &proxy_id);
        assert!(matches!(c, Err(NetError::Refused { .. })));
        assert!(matches!(s, Err(NetError::Refused { .. })));
    }

    #[test]
    fn expired_proxy_rejected() {
        let f = fixture();
        let (proxy, proxy_id) = alice_proxy(&f);
        // now=600 exceeds the proxy's validity (500) but not the certs'.
        let (c, s) = run_handshake(&f, &OpenGate, 600, &proxy, &proxy_id);
        assert!(matches!(s, Err(NetError::Handshake(_))));
        assert!(matches!(c, Err(NetError::Refused { .. })));
    }

    #[test]
    fn forged_proxy_rejected() {
        let f = fixture();
        let mallory_id = SigningIdentity::generate_small(KeyMaterial { seed: 66 }, "mallory");
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 67 }, "mp");
        // Mallory signs a proxy over Alice's certificate.
        let forged =
            create_proxy(&mallory_id, &f.alice_cert, proxy_id.verifying_key(), 0, 500, 1).unwrap();
        let (c, s) = run_handshake(&f, &OpenGate, 50, &forged, &proxy_id);
        assert!(s.is_err());
        assert!(c.is_err());
    }

    #[test]
    fn client_detects_wrong_server_identity() {
        // Server presents a cert signed by a different CA.
        let f = fixture();
        let rogue_ca_id = SigningIdentity::generate_small(KeyMaterial { seed: 77 }, "rogue");
        let rogue_ca = CertificateAuthority::new(SubjectName::new("R", "CA", "Rogue"), rogue_ca_id);
        let rogue_server_id = SigningIdentity::generate_small(KeyMaterial { seed: 78 }, "rs");
        let rogue_cert = rogue_ca
            .issue(SubjectName::new("R", "Bank", "fake"), rogue_server_id.verifying_key(), 0, 1000)
            .unwrap();

        let (proxy, proxy_id) = alice_proxy(&f);
        let net = Network::new();
        let listener = net.bind(Address::new("bank")).unwrap();
        let config = HandshakeConfig { ca_key: f.ca.verifying_key(), now: 50 };
        let client_link = net.connect(Address::new("alice"), &Address::new("bank")).unwrap();
        let server_link = listener.accept().unwrap();

        std::thread::scope(|s| {
            s.spawn(|| {
                // The rogue server validates clients against the real CA
                // (so the handshake proceeds) but presents a certificate
                // signed by the rogue CA.
                let rogue_config = HandshakeConfig { ca_key: f.ca.verifying_key(), now: 50 };
                let mut nonces = DeterministicStream::from_u64(1, b"n");
                let _ = server_handshake(
                    server_link,
                    &rogue_config,
                    &rogue_cert,
                    &rogue_server_id,
                    &OpenGate,
                    &mut nonces,
                );
            });
            let mut nonces = DeterministicStream::from_u64(2, b"n");
            let res = client_handshake(client_link, &config, &proxy, &proxy_id, &mut nonces);
            assert!(matches!(res, Err(NetError::Handshake(_))));
        });
    }
}
