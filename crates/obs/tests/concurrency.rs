//! The metrics registry under real contention: many crossbeam scoped
//! threads hammering the same named instruments must lose no updates and
//! agree on one interned instrument per name.

use gridbank_obs::{registry, Registry};

const THREADS: usize = 8;
const OPS: u64 = 10_000;

#[test]
fn concurrent_updates_are_exact_on_a_local_registry() {
    let r = Registry::new();
    let r = &r;
    let res = crossbeam::thread::scope(|s| {
        for t in 0..THREADS {
            s.spawn(move |_| {
                let c = r.counter("hammer.counter");
                let g = r.gauge("hammer.gauge");
                let h = r.histogram("hammer.hist");
                for i in 0..OPS {
                    c.inc();
                    g.add(1);
                    g.sub(1);
                    // Distinct values per thread exercise many buckets.
                    h.record((t as u64 + 1) * (i + 1));
                }
            });
        }
    });
    assert!(res.is_ok());

    let snap = r.snapshot();
    assert_eq!(snap.counter("hammer.counter"), Some(THREADS as u64 * OPS));
    assert_eq!(snap.gauge("hammer.gauge"), Some(0));
    let h = snap.histogram("hammer.hist").expect("histogram registered");
    assert_eq!(h.count, THREADS as u64 * OPS);
    // Sum is exact: sum over t in 1..=8 of t * (1+2+...+OPS).
    let tri = OPS * (OPS + 1) / 2;
    let expected: u64 = (1..=THREADS as u64).map(|t| t * tri).sum();
    assert_eq!(h.sum, expected);
    // Percentiles are ordered and inside the log₂ bucket holding the
    // maximum recorded value (8 * 10_000 lands in [2^16, 2^17)).
    assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
    assert!(h.p99() < (1u64 << 17));
}

#[test]
fn concurrent_interning_yields_one_instrument_per_name() {
    // Every thread races to intern the same names on the global registry;
    // all updates must land on the same underlying atomics.
    let res = crossbeam::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|_| {
                for _ in 0..OPS {
                    registry().counter("intern.race.counter").inc();
                    registry().histogram("intern.race.hist").record(7);
                }
            });
        }
    });
    assert!(res.is_ok());
    let snap = registry().snapshot();
    assert_eq!(snap.counter("intern.race.counter"), Some(THREADS as u64 * OPS));
    let h = snap.histogram("intern.race.hist").expect("histogram registered");
    assert_eq!(h.count, THREADS as u64 * OPS);
    assert_eq!(h.sum, 7 * THREADS as u64 * OPS);
}
