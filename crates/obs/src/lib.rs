//! # gridbank-obs
//!
//! The observability substrate for the GridBank reproduction: span
//! tracing with a wire-portable [`TraceContext`], a lock-free metrics
//! [`Registry`], and exporters. GridBank's value proposition is
//! *accountable* resource trade — §3.4–§3.5's signed usage records and
//! transaction logs say what happened; this crate says where time went
//! while it happened, and ties the two together by stamping the active
//! trace id into the bank's transfer records.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** Every instrumentation entry point
//!    ([`span`], [`Stopwatch::start`], …) first reads one relaxed
//!    atomic; when telemetry is off nothing allocates, locks, or reads
//!    the clock. Benches in EXPERIMENTS.md hold the regression to noise.
//! 2. **No external dependencies.** std + the workspace's own
//!    parking_lot surface only — no `tracing`, no `log`.
//! 3. **Recording is lock-free.** Counters, gauges and log₂-bucket
//!    histograms are plain atomics; locks appear only at registration,
//!    snapshot, and span-flush boundaries.
//!
//! Telemetry is off by default; enable it with
//! [`set_telemetry`]`(true)` or `GRIDBANK_TELEMETRY=1`.

pub mod export;
pub mod flight;
pub mod metrics;
pub mod stats;
pub mod trace;

pub use export::{render_jsonl, render_text, Collector};
pub use flight::{install_panic_hook, set_flight_recorder, FlightConfig, RetainedTrace};
pub use metrics::{
    count, gauge_add, gauge_set, observe, registry, Counter, Gauge, Histogram, HistogramSnapshot,
    Registry, Snapshot, Stopwatch,
};
pub use trace::{
    buffered_spans, clear_sink, current_context, current_trace_id, dropped_spans, fresh_trace_id,
    render_trace, root_span, set_sink, set_telemetry, span, span_under, take_spans,
    telemetry_enabled, trace_ids, NullSink, Sink, SpanGuard, SpanRecord, TraceContext,
};

/// Serializes tests that flip process-global telemetry state.
#[cfg(test)]
pub(crate) static TEST_LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
