//! Small statistics helpers shared by experiment reports and metric
//! snapshots (moved here from `gridbank-sim` so histogram percentiles
//! and simulation reports use one implementation).

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Percentile by nearest-rank (p in 0..=100).
pub fn percentile(values: &[f64], p: u8) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let rank = ((p.min(100) as usize * sorted.len()).div_ceil(100)).max(1);
    sorted[rank - 1]
}

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Clone, Debug)]
pub struct FixedHistogram {
    lo: f64,
    width: f64,
    /// Per-bucket counts; the last bucket absorbs values ≥ hi.
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
}

impl FixedHistogram {
    /// Creates a histogram with `n` buckets over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        FixedHistogram { lo, width: (hi - lo) / n as f64, buckets: vec![0; n], count: 0 }
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        let idx = if v <= self.lo {
            0
        } else {
            (((v - self.lo) / self.width) as usize).min(self.buckets.len() - 1)
        };
        self.buckets[idx] += 1;
        self.count += 1;
    }

    /// Renders a compact one-line sparkline of bucket loads.
    pub fn sparkline(&self) -> String {
        sparkline(&self.buckets)
    }
}

/// Renders bucket loads as a one-line sparkline.
pub fn sparkline(buckets: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = buckets.iter().copied().max().unwrap_or(0).max(1);
    buckets.iter().map(|&b| GLYPHS[(b as usize * (GLYPHS.len() - 1)) / max as usize]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentiles() {
        let vals: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&vals, 50), 50.0);
        assert_eq!(percentile(&vals, 99), 99.0);
        assert_eq!(percentile(&vals, 100), 100.0);
        assert_eq!(percentile(&vals, 0), 1.0);
        assert_eq!(percentile(&[], 50), 0.0);
        // Unsorted input is handled.
        assert_eq!(percentile(&[3.0, 1.0, 2.0], 50), 2.0);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = FixedHistogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 9.9, 10.0, 55.0, -3.0] {
            h.record(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.buckets, vec![3, 1, 0, 0, 3]);
        assert_eq!(h.sparkline().chars().count(), 5);
    }

    #[test]
    #[should_panic(expected = "invalid histogram")]
    fn histogram_rejects_bad_bounds() {
        let _ = FixedHistogram::new(5.0, 5.0, 3);
    }
}
