//! Lock-free metric instruments and the process-wide registry.
//!
//! Instruments are plain atomics: [`Counter`] and [`Gauge`] are single
//! words, [`Histogram`] is 64 log₂ buckets plus count and sum, so
//! recording from any number of threads never takes a lock. The
//! [`Registry`] interns instruments by name behind an `RwLock` that is
//! only touched at registration/snapshot time — hot paths hold `Arc`
//! handles obtained once.
//!
//! Naming convention: dot-separated subsystem paths
//! (`rpc.server.latency_ns/RequestCheque`); duration histograms end in
//! `_ns` so exporters format them as times.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use parking_lot::RwLock;

use crate::trace::telemetry_enabled;

/// Number of log₂ buckets: bucket `b` holds values in `[2^b, 2^{b+1})`
/// (bucket 0 also absorbs 0), which spans the full `u64` domain.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can move both ways (occupancy, connection counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log₂-bucket histogram over `u64` values.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        let bucket = 63 - (value | 1).leading_zeros() as usize;
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy. Concurrent recording may make `count`
    /// momentarily differ from the bucket sum by in-flight increments;
    /// the snapshot normalizes to the bucket totals.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        HistogramSnapshot { count, sum: self.sum.load(Ordering::Relaxed), buckets }
    }
}

/// An immutable copy of a [`Histogram`].
#[derive(Clone, Debug, Default)]
pub struct HistogramSnapshot {
    /// Total samples (sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Per-bucket counts, `buckets[b]` covering `[2^b, 2^{b+1})`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Estimated percentile: finds the bucket holding the nearest-rank
    /// sample and interpolates linearly within it, treating each sample
    /// as sitting at the *midpoint* of its 1/n slot of the bucket.
    ///
    /// The midpoint convention matters at the edges: the naive
    /// `fraction = (rank - cumulative) / n` returns exactly `hi` —
    /// `2^(b+1) − 1` — whenever the nearest-rank sample is the last one
    /// in its bucket. Tail percentiles then collapse onto power-of-two
    /// boundaries (the `p99 = 16777215 = 2^24 − 1` artifact): a value
    /// that is an *upper bound* gets reported as if it were a
    /// measurement. With midpoint slots the interior estimate stays
    /// strictly inside `(lo, hi)` and never lands on the bucket edge.
    ///
    /// Out-of-domain inputs degrade safely rather than panicking or
    /// extrapolating: an empty snapshot is 0 for every `p`; `p <= 0`
    /// (and NaN) returns the smallest occupied bucket's `lo`; `p >= 100`
    /// returns the largest occupied bucket's `hi` — so the result
    /// always lies within an occupied bucket's `[lo, hi]` range.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        if p <= 0.0 {
            // Lower bound of the first occupied bucket.
            let b = self.buckets.iter().position(|&n| n > 0).unwrap_or(0);
            return if b == 0 { 0 } else { 1u64 << b };
        }
        if p >= 100.0 {
            // Upper bound of the last occupied bucket.
            let b = self.buckets.iter().rposition(|&n| n > 0).unwrap_or(0);
            return if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
        }
        let rank = (((p / 100.0) * self.count as f64).ceil().max(1.0) as u64).min(self.count);
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if cumulative.saturating_add(n) >= rank {
                let lo = if b == 0 { 0u64 } else { 1u64 << b };
                let hi = if b >= 63 { u64::MAX } else { (1u64 << (b + 1)) - 1 };
                // Midpoint of the sample's 1/n slot: rank is in
                // (cumulative, cumulative + n], so the fraction lies
                // strictly inside (0, 1).
                let fraction = ((rank - cumulative) as f64 - 0.5) / n as f64;
                // `(hi - lo) as f64` can round up past the true span, so
                // saturate rather than trust `lo + span` to stay in range.
                let span = ((hi - lo) as f64 * fraction).min(u64::MAX as f64) as u64;
                return lo.saturating_add(span).min(hi);
            }
            cumulative = cumulative.saturating_add(n);
        }
        // Unreachable while count == Σ buckets; be conservative.
        1u64 << 63
    }

    /// Estimated median.
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// Estimated 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// One-line sparkline over the occupied bucket range.
    pub fn sparkline(&self) -> String {
        let first = self.buckets.iter().position(|&b| b > 0).unwrap_or(0);
        let last = self.buckets.iter().rposition(|&b| b > 0).unwrap_or(0);
        crate::stats::sparkline(&self.buckets[first..=last])
    }
}

/// Interns instruments by name and produces snapshots.
#[derive(Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn intern<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(found) = map.read().get(name) {
        return found.clone();
    }
    map.write().entry(name.to_string()).or_insert_with(|| Arc::new(T::default())).clone()
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        intern(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        intern(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        intern(&self.histograms, name)
    }

    /// A point-in-time copy of every instrument.
    pub fn snapshot(&self) -> Snapshot {
        let at_unix_ms =
            SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_millis() as u64).unwrap_or(0);
        Snapshot {
            at_unix_ms,
            counters: self.counters.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: self.gauges.read().iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: self
                .histograms
                .read()
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Forgets every instrument. Handles already held keep recording
    /// into detached instruments that no longer appear in snapshots.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
        self.histograms.write().clear();
    }
}

/// The process-wide registry instrumented crates share.
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a [`Registry`], ready for export.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Capture time (milliseconds since the Unix epoch).
    pub at_unix_ms: u64,
    /// Counter values, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, name-sorted.
    pub gauges: Vec<(String, i64)>,
    /// Histogram copies, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Keeps only instruments whose name starts with `prefix`.
    pub fn filtered(&self, prefix: &str) -> Snapshot {
        Snapshot {
            at_unix_ms: self.at_unix_ms,
            counters: self
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
            gauges: self.gauges.iter().filter(|(n, _)| n.starts_with(prefix)).cloned().collect(),
            histograms: self
                .histograms
                .iter()
                .filter(|(n, _)| n.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }
}

/// Adds `delta` to the global counter `name` when telemetry is enabled;
/// a single relaxed load otherwise.
#[inline]
pub fn count(name: &str, delta: u64) {
    if telemetry_enabled() {
        registry().counter(name).add(delta);
    }
}

/// Sets the global gauge `name` when telemetry is enabled.
#[inline]
pub fn gauge_set(name: &str, value: i64) {
    if telemetry_enabled() {
        registry().gauge(name).set(value);
    }
}

/// Adds `delta` (may be negative) to the global gauge `name` when
/// telemetry is enabled.
#[inline]
pub fn gauge_add(name: &str, delta: i64) {
    if telemetry_enabled() {
        registry().gauge(name).add(delta);
    }
}

/// Records `value` into the global histogram `name` when telemetry is
/// enabled.
#[inline]
pub fn observe(name: &str, value: u64) {
    if telemetry_enabled() {
        registry().histogram(name).record(value);
    }
}

/// Times a region and records into a histogram, paying only the enabled
/// check when telemetry is off.
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Starts timing if telemetry is enabled.
    #[inline]
    pub fn start() -> Self {
        if telemetry_enabled() {
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// Elapsed nanoseconds, if timing.
    pub fn elapsed_ns(&self) -> Option<u64> {
        self.0.map(|s| s.elapsed().as_nanos().min(u64::MAX as u128) as u64)
    }

    /// Records the elapsed time into `histogram` (no-op when disabled).
    #[inline]
    pub fn record(self, histogram: &Histogram) {
        if let Some(started) = self.0 {
            histogram.record_duration(started.elapsed());
        }
    }

    /// Records the elapsed time into the global registry's histogram
    /// `name`. When the stopwatch never started (telemetry disabled) the
    /// registry is not even consulted.
    #[inline]
    pub fn record_named(self, name: &str) {
        if let Some(started) = self.0 {
            registry().histogram(name).record_duration(started.elapsed());
        }
    }

    /// Like [`Self::record_named`] but records into the labeled series
    /// `<name>/<label>` (e.g. per-request-variant latency). The string is
    /// only built when the stopwatch actually ran.
    #[inline]
    pub fn record_named_label(self, name: &str, label: &str) {
        if let Some(started) = self.0 {
            registry().histogram(&format!("{name}/{label}")).record_duration(started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 2057);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[2], 1); // 4
        assert_eq!(s.buckets[9], 1); // 1023
        assert_eq!(s.buckets[10], 1); // 1024
        assert_eq!(s.buckets.iter().sum::<u64>(), 7);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let (p50, p95, p99) = (s.p50(), s.p95(), s.p99());
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // log2 buckets bound each estimate within 2x of truth.
        assert!((256..=1024).contains(&p50), "p50 = {p50}");
        assert!((512..=1024).contains(&p99), "p99 = {p99}");
        assert_eq!(s.percentile(0.0), s.percentile(0.0));
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn percentile_edge_cases_degrade_safely() {
        // Empty snapshot: every percentile is 0, in and out of domain.
        let empty = HistogramSnapshot::default();
        for p in [-10.0, 0.0, 50.0, 100.0, 250.0, f64::NAN] {
            assert_eq!(empty.percentile(p), 0, "empty snapshot at p={p}");
        }
        // Out-of-domain p clamps to the extremes instead of panicking.
        let h = Histogram::new();
        for v in [10u64, 20, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.percentile(-5.0), s.percentile(0.0));
        assert_eq!(s.percentile(1e9), s.percentile(100.0));
        assert_eq!(s.percentile(f64::NAN), s.percentile(0.0));
        // p0 stays within the smallest sample's bucket ([8, 15] for 10);
        // p100 lands at or above the largest sample.
        assert!((8..=15).contains(&s.percentile(0.0)), "p0 = {}", s.percentile(0.0));
        assert!(s.percentile(100.0) >= 5_000, "p100 = {}", s.percentile(100.0));
    }

    #[test]
    fn single_bucket_percentiles_stay_within_bucket_bounds() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(300); // all samples in bucket 8: [256, 511]
        }
        let s = h.snapshot();
        for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!((256..=511).contains(&v), "p{p} = {v} escaped [256, 511]");
        }
        assert!(s.percentile(0.0) <= s.percentile(100.0));
    }

    // Regression for the `p99 = 16777215` (2^24 − 1) artifact seen in
    // BENCH_payments.json: when the nearest-rank sample was the *last*
    // one in its bucket, edge interpolation returned exactly `hi` — a
    // power-of-two boundary masquerading as a measurement. This shape
    // mirrors the benchmark run: a dense body in bucket 22 with a thin
    // tail, where the p99 rank lands precisely on the lone bucket-23
    // sample.
    #[test]
    fn tail_percentile_does_not_collapse_onto_bucket_edge() {
        let h = Histogram::new();
        for _ in 0..165 {
            h.record(5_000_000); // bucket 22: [2^22, 2^23)
        }
        h.record(10_000_000); // bucket 23: [2^23, 2^24)
        h.record(20_000_000); // bucket 24: [2^24, 2^25)
        let s = h.snapshot();
        assert_eq!(s.count, 167);
        // rank = ceil(0.99 * 167) = 166: the single bucket-23 sample.
        let p99 = s.p99();
        assert_ne!(p99, (1u64 << 24) - 1, "p99 interpolated onto the bucket edge");
        assert!(
            ((1u64 << 23)..(1u64 << 24)).contains(&p99),
            "p99 = {p99} escaped the occupied bucket [2^23, 2^24)"
        );
        // A lone sample reports the bucket midpoint, strictly interior.
        assert!(p99 > 1u64 << 23, "p99 = {p99} collapsed onto the lower edge");
    }

    // Values far above the 2^24 range of the original artifact must
    // report honestly: nothing in the histogram caps or clamps them.
    #[test]
    fn values_above_suspected_cap_report_honestly() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(100_000_000); // bucket 26: [2^26, 2^27)
        }
        let s = h.snapshot();
        for p in [0.0, 50.0, 99.0, 100.0] {
            let v = s.percentile(p);
            assert!(
                ((1u64 << 26)..(1u64 << 27)).contains(&v),
                "p{p} = {v} escaped [2^26, 2^27) — value above 2^24 misreported"
            );
        }
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        // For any recorded sample set, percentiles are monotone in p and
        // bracket the observed min/max (log₂ buckets guarantee the
        // estimate never leaves an occupied bucket's range).
        #[test]
        fn percentiles_are_monotone_for_arbitrary_samples(
            values in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..200),
        ) {
            let h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let s = h.snapshot();
            let (p0, p50, p95, p99, p100) =
                (s.percentile(0.0), s.p50(), s.p95(), s.p99(), s.percentile(100.0));
            proptest::prop_assert!(p0 <= p50 && p50 <= p95 && p95 <= p99 && p99 <= p100,
                "{p0} {p50} {p95} {p99} {p100}");
            let min = *values.iter().min().expect("nonempty");
            let max = *values.iter().max().expect("nonempty");
            // p0 may interpolate up to the top of min's log₂ bucket (< 2·min).
            proptest::prop_assert!(p0 <= min.saturating_mul(2).max(1), "p0 {p0} vs min {min}");
            proptest::prop_assert!(p100 >= max, "p100 {p100} below max {max}");
        }
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.buckets[63], 1);
        assert!(s.p99() > 0);
    }

    #[test]
    fn registry_interns_by_name() {
        let r = Registry::new();
        let a = r.counter("x.hits");
        let b = r.counter("x.hits");
        a.inc();
        b.inc();
        assert_eq!(r.counter("x.hits").get(), 2);
        r.histogram("x.lat_ns").record(500);
        r.gauge("x.conns").set(3);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x.hits"), Some(2));
        assert_eq!(snap.gauge("x.conns"), Some(3));
        assert_eq!(snap.histogram("x.lat_ns").map(|h| h.count), Some(1));
        assert_eq!(snap.counter("missing"), None);
        let filtered = snap.filtered("x.h");
        assert_eq!(filtered.counters.len(), 1);
        assert_eq!(filtered.gauges.len(), 0);
    }

    #[test]
    fn stopwatch_respects_gate() {
        let _guard = crate::TEST_LOCK.lock();
        crate::trace::set_telemetry(false);
        let h = Histogram::new();
        Stopwatch::start().record(&h);
        assert_eq!(h.count(), 0);
        crate::trace::set_telemetry(true);
        let sw = Stopwatch::start();
        assert!(sw.elapsed_ns().is_some());
        sw.record(&h);
        crate::trace::set_telemetry(false);
        assert_eq!(h.count(), 1);
    }
}
