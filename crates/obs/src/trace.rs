//! Span tracing with wire-portable trace context.
//!
//! A *span* is one timed region of work (an RPC call, a server layer,
//! a charging step). Spans nest through a thread-local stack — opening
//! a span while another is active makes it a child — and cross thread
//! or process boundaries explicitly via [`TraceContext`], 16 bytes the
//! net layer carries inside RPC frames. All spans of one payment share
//! a `trace_id`, which the bank also stamps into the transfer's audit
//! record, tying runtime telemetry to the non-repudiation trail.
//!
//! When telemetry is disabled (the default), every entry point returns
//! after a single relaxed atomic load and no span is allocated.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

/// Cap on buffered span records; beyond it new spans are counted but
/// dropped, so a long-running process cannot grow without bound.
pub const MAX_BUFFERED_SPANS: usize = 65_536;

// Tri-state so the first call can consult the environment exactly once:
// 0 = uninitialised, 1 = off, 2 = on.
static TELEMETRY: AtomicU8 = AtomicU8::new(0);

/// True when spans and timed metrics should be recorded. This is the
/// one load instrumented hot paths pay when telemetry is off.
#[inline]
pub fn telemetry_enabled() -> bool {
    match TELEMETRY.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on =
        std::env::var("GRIDBANK_TELEMETRY").map(|v| !v.is_empty() && v != "0").unwrap_or(false);
    TELEMETRY.store(if on { 2 } else { 1 }, Ordering::Relaxed);
    on
}

/// Turns telemetry on or off for the whole process.
pub fn set_telemetry(on: bool) {
    TELEMETRY.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The portable identity of an in-flight trace: which trace, and which
/// span the next piece of work should attach under. This is what the
/// RPC layer serializes into frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifier shared by every span of one logical operation.
    pub trace_id: u64,
    /// Span the receiving side should parent its spans under.
    pub parent_span: u64,
}

impl TraceContext {
    /// Serialized length on the wire.
    pub const WIRE_LEN: usize = 16;

    /// Big-endian wire form.
    pub fn to_bytes(self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[..8].copy_from_slice(&self.trace_id.to_be_bytes());
        out[8..].copy_from_slice(&self.parent_span.to_be_bytes());
        out
    }

    /// Parses the big-endian wire form.
    pub fn from_bytes(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() < Self::WIRE_LEN {
            return None;
        }
        let mut id = [0u8; 8];
        id.copy_from_slice(&bytes[..8]);
        let mut parent = [0u8; 8];
        parent.copy_from_slice(&bytes[8..16]);
        Some(TraceContext {
            trace_id: u64::from_be_bytes(id),
            parent_span: u64::from_be_bytes(parent),
        })
    }
}

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// Unique id of this span.
    pub span_id: u64,
    /// Parent span id, 0 for a root.
    pub parent_span: u64,
    /// Subsystem that opened the span (`broker`, `net`, `server.accounts`, …).
    pub component: &'static str,
    /// Operation name.
    pub name: &'static str,
    /// Microseconds since process telemetry start.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub duration_us: u64,
    /// Free-form key/value annotations.
    pub attrs: Vec<(&'static str, String)>,
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Allocates a fresh, non-zero trace id.
pub fn fresh_trace_id() -> u64 {
    let n = NEXT_TRACE.fetch_add(1, Ordering::Relaxed);
    mix64(n.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1
}

fn fresh_span_id() -> u64 {
    NEXT_SPAN.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    /// (trace_id, span_id) of the innermost open span on this thread.
    static CURRENT: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

struct SpanStore {
    records: Vec<SpanRecord>,
    dropped: u64,
}

static STORE: Mutex<SpanStore> = Mutex::new(SpanStore { records: Vec::new(), dropped: 0 });
static SINK: Mutex<Option<Arc<dyn Sink>>> = Mutex::new(None);

/// Receives finished spans; implementations must be cheap or buffer.
pub trait Sink: Send + Sync {
    /// Called once per finished span while telemetry is enabled.
    fn on_span(&self, record: &SpanRecord);
}

/// A sink that discards everything (the default behaviour when no sink
/// is registered is equivalent).
pub struct NullSink;

impl Sink for NullSink {
    fn on_span(&self, _record: &SpanRecord) {}
}

/// Registers the process-wide span sink.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *SINK.lock() = Some(sink);
}

/// Removes the process-wide span sink.
pub fn clear_sink() {
    *SINK.lock() = None;
}

/// Drains and returns all buffered spans.
pub fn take_spans() -> Vec<SpanRecord> {
    std::mem::take(&mut STORE.lock().records)
}

/// Copies the currently buffered spans.
pub fn buffered_spans() -> Vec<SpanRecord> {
    STORE.lock().records.clone()
}

/// Number of spans dropped because the buffer was full.
pub fn dropped_spans() -> u64 {
    STORE.lock().dropped
}

/// An open span; records itself when dropped. Inert (all methods no-op)
/// when telemetry is disabled.
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    trace_id: u64,
    span_id: u64,
    parent_span: u64,
    component: &'static str,
    name: &'static str,
    started: Instant,
    start_us: u64,
    attrs: Vec<(&'static str, String)>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { active: None };

    fn open(trace_id: u64, parent_span: u64, component: &'static str, name: &'static str) -> Self {
        let span_id = fresh_span_id();
        let started = Instant::now();
        let start_us = started.duration_since(epoch()).as_micros() as u64;
        CURRENT.with(|stack| stack.borrow_mut().push((trace_id, span_id)));
        crate::flight::on_span_open(trace_id);
        SpanGuard {
            active: Some(ActiveSpan {
                trace_id,
                span_id,
                parent_span,
                component,
                name,
                started,
                start_us,
                attrs: Vec::new(),
            }),
        }
    }

    /// Annotates the span (no-op when inert).
    pub fn attr(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(active) = &mut self.active {
            active.attrs.push((key, value.to_string()));
        }
    }

    /// Context a downstream hop should carry, if the span is live.
    pub fn context(&self) -> Option<TraceContext> {
        self.active.as_ref().map(|a| TraceContext { trace_id: a.trace_id, parent_span: a.span_id })
    }

    /// This span's trace id (0 when inert).
    pub fn trace_id(&self) -> u64 {
        self.active.as_ref().map_or(0, |a| a.trace_id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else { return };
        CURRENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Tolerate out-of-order drops: remove this span wherever it is.
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == active.span_id) {
                stack.remove(pos);
            }
        });
        let record = SpanRecord {
            trace_id: active.trace_id,
            span_id: active.span_id,
            parent_span: active.parent_span,
            component: active.component,
            name: active.name,
            start_us: active.start_us,
            duration_us: active.started.elapsed().as_micros() as u64,
            attrs: active.attrs,
        };
        crate::flight::on_span_close(&record);
        if let Some(sink) = SINK.lock().as_ref() {
            sink.on_span(&record);
        }
        let mut store = STORE.lock();
        if store.records.len() < MAX_BUFFERED_SPANS {
            store.records.push(record);
        } else {
            store.dropped += 1;
            // Overflow is silent to callers of `span()`; surface it as a
            // counter so a starved trace buffer shows up in snapshots.
            crate::metrics::count("obs.trace.dropped", 1);
        }
    }
}

/// Opens a span as a child of the thread's current span (or as a new
/// trace root if none is open).
pub fn span(component: &'static str, name: &'static str) -> SpanGuard {
    if !telemetry_enabled() {
        return SpanGuard::INERT;
    }
    match current_context() {
        Some(ctx) => SpanGuard::open(ctx.trace_id, ctx.parent_span, component, name),
        None => SpanGuard::open(fresh_trace_id(), 0, component, name),
    }
}

/// Opens a root span of a brand-new trace, ignoring any current span.
pub fn root_span(component: &'static str, name: &'static str) -> SpanGuard {
    if !telemetry_enabled() {
        return SpanGuard::INERT;
    }
    SpanGuard::open(fresh_trace_id(), 0, component, name)
}

/// Opens a span under a context carried from another thread or peer;
/// falls back to [`span`] semantics when no context was carried.
pub fn span_under(
    remote: Option<TraceContext>,
    component: &'static str,
    name: &'static str,
) -> SpanGuard {
    if !telemetry_enabled() {
        return SpanGuard::INERT;
    }
    match remote {
        Some(ctx) => SpanGuard::open(ctx.trace_id, ctx.parent_span, component, name),
        None => span(component, name),
    }
}

/// The context of the innermost open span on this thread, if any.
pub fn current_context() -> Option<TraceContext> {
    if !telemetry_enabled() {
        return None;
    }
    CURRENT.with(|stack| {
        stack
            .borrow()
            .last()
            .map(|&(trace_id, span_id)| TraceContext { trace_id, parent_span: span_id })
    })
}

/// Trace id of the innermost open span on this thread (0 when none).
pub fn current_trace_id() -> u64 {
    current_context().map_or(0, |c| c.trace_id)
}

fn format_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.2}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.3}s", us as f64 / 1_000_000.0)
    }
}

/// Renders the spans of one trace as an indented tree, children ordered
/// by start time. Spans whose parent is missing from the slice are
/// treated as roots, so partial traces still render.
pub fn render_trace(trace_id: u64, spans: &[SpanRecord]) -> String {
    let mut members: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    members.sort_by_key(|s| (s.start_us, s.span_id));
    let ids: std::collections::HashSet<u64> = members.iter().map(|s| s.span_id).collect();
    let roots: Vec<&SpanRecord> =
        members.iter().copied().filter(|s| !ids.contains(&s.parent_span)).collect();

    let mut out = format!("trace {trace_id:#018x}\n");
    fn walk(
        out: &mut String,
        members: &[&SpanRecord],
        node: &SpanRecord,
        prefix: &str,
        last: bool,
    ) {
        let branch = if last { "└─ " } else { "├─ " };
        let attrs = if node.attrs.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> =
                node.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!(" {{{}}}", rendered.join(", "))
        };
        let _ = writeln!(
            out,
            "{prefix}{branch}{}::{}{attrs}  [{}]",
            node.component,
            node.name,
            format_us(node.duration_us)
        );
        let children: Vec<&&SpanRecord> =
            members.iter().filter(|s| s.parent_span == node.span_id).collect();
        let child_prefix = format!("{prefix}{}", if last { "   " } else { "│  " });
        for (i, child) in children.iter().enumerate() {
            walk(out, members, child, &child_prefix, i + 1 == children.len());
        }
    }
    for (i, root) in roots.iter().enumerate() {
        walk(&mut out, &members, root, "", i + 1 == roots.len());
    }
    out
}

/// Ids of every distinct trace among `spans`, in first-seen order.
pub fn trace_ids(spans: &[SpanRecord]) -> Vec<u64> {
    let mut seen = Vec::new();
    for span in spans {
        if !seen.contains(&span.trace_id) {
            seen.push(span.trace_id);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::TEST_LOCK;

    fn with_telemetry<T>(f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock();
        set_telemetry(true);
        let out = f();
        set_telemetry(false);
        out
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = TEST_LOCK.lock();
        set_telemetry(false);
        let before = buffered_spans().len();
        {
            let mut g = span("test", "noop");
            g.attr("k", 1);
            assert_eq!(g.trace_id(), 0);
            assert!(g.context().is_none());
        }
        assert_eq!(buffered_spans().len(), before);
        assert!(current_context().is_none());
    }

    #[test]
    fn nesting_links_parents() {
        with_telemetry(|| {
            let root = root_span("test.nest", "outer");
            let root_ctx = root.context().expect("live root");
            let (inner_id, inner_parent, inner_trace);
            {
                let inner = span("test.nest", "inner");
                let ctx = inner.context().expect("live inner");
                inner_trace = ctx.trace_id;
                inner_id = ctx.parent_span; // context points at self for children
                inner_parent = root_ctx.parent_span;
            }
            drop(root);
            let spans = take_spans();
            let inner = spans.iter().find(|s| s.span_id == inner_id).expect("inner recorded");
            assert_eq!(inner.trace_id, inner_trace);
            assert_eq!(inner_trace, root_ctx.trace_id);
            assert_eq!(inner.parent_span, inner_parent);
            assert_eq!(inner.name, "inner");
        });
    }

    #[test]
    fn remote_context_round_trips_and_adopts() {
        with_telemetry(|| {
            let ctx = TraceContext { trace_id: 0xABCD, parent_span: 42 };
            let parsed = TraceContext::from_bytes(&ctx.to_bytes()).expect("16 bytes");
            assert_eq!(parsed, ctx);
            assert!(TraceContext::from_bytes(&[0u8; 8]).is_none());
            {
                let remote = span_under(Some(ctx), "test.remote", "server_side");
                let rc = remote.context().expect("live");
                assert_eq!(rc.trace_id, 0xABCD);
            }
            let spans = take_spans();
            let server = spans.iter().find(|s| s.name == "server_side").expect("recorded");
            assert_eq!((server.trace_id, server.parent_span), (0xABCD, 42));
        });
    }

    #[test]
    fn tree_renders_all_levels() {
        with_telemetry(|| {
            let trace = {
                let mut root = root_span("broker", "payment");
                root.attr("amount", "5G$");
                {
                    let _net = span("net", "rpc_call");
                    let _srv = span("server.accounts", "transfer");
                }
                root.trace_id()
            };
            let spans = take_spans();
            let tree = render_trace(trace, &spans);
            assert!(tree.contains("broker::payment"), "{tree}");
            assert!(tree.contains("net::rpc_call"), "{tree}");
            assert!(tree.contains("server.accounts::transfer"), "{tree}");
            assert!(tree.contains("amount=5G$"), "{tree}");
            // Child indented under parent.
            let broker_line = tree.lines().position(|l| l.contains("broker::payment"));
            let net_line = tree.lines().position(|l| l.contains("net::rpc_call"));
            assert!(broker_line < net_line);
        });
    }

    #[test]
    fn buffer_overflow_is_counted_not_silent() {
        with_telemetry(|| {
            let _ = take_spans(); // start from an empty buffer
            let counter = crate::metrics::registry().counter("obs.trace.dropped");
            let (dropped_before, counted_before) = (dropped_spans(), counter.get());
            const OVERFLOW: usize = 5;
            for _ in 0..MAX_BUFFERED_SPANS + OVERFLOW {
                drop(root_span("test.overflow", "filler"));
            }
            assert_eq!(buffered_spans().len(), MAX_BUFFERED_SPANS, "buffer capped");
            assert!(dropped_spans() - dropped_before >= OVERFLOW as u64, "store records the drops");
            assert!(
                counter.get() - counted_before >= OVERFLOW as u64,
                "obs.trace.dropped counter records the drops"
            );
            let _ = take_spans();
        });
    }

    #[test]
    fn sink_receives_spans() {
        struct CountingSink(std::sync::atomic::AtomicU64);
        impl Sink for CountingSink {
            fn on_span(&self, _record: &SpanRecord) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        with_telemetry(|| {
            let sink = Arc::new(CountingSink(AtomicU64::new(0)));
            set_sink(sink.clone());
            drop(span("test.sink", "one"));
            drop(span("test.sink", "two"));
            clear_sink();
            drop(span("test.sink", "after"));
            assert_eq!(sink.0.load(Ordering::Relaxed), 2);
            let _ = take_spans();
        });
    }
}
