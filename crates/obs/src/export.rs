//! Snapshot surfacing: human-readable text, JSON-lines, and the
//! [`Collector`] hook simulation scenarios feed.

use std::fmt::Write as _;

use crate::metrics::{registry, Registry, Snapshot};

/// True when `name` follows the duration-histogram naming convention
/// (`..._ns` or `..._ns/<label>`), so exporters format values as times.
fn is_duration_metric(name: &str) -> bool {
    let base = name.split('/').next().unwrap_or(name);
    base.ends_with("_ns")
}

fn format_value(name: &str, value: u64) -> String {
    if !is_duration_metric(name) {
        return value.to_string();
    }
    let ns = value as f64;
    if ns < 1_000.0 {
        format!("{ns:.0}ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2}µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2}ms", ns / 1_000_000.0)
    } else {
        format!("{:.3}s", ns / 1_000_000_000.0)
    }
}

/// Renders a snapshot as an aligned, human-readable report.
pub fn render_text(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== gridbank telemetry snapshot (t={}ms) ==", snapshot.at_unix_ms);
    if !snapshot.counters.is_empty() {
        let _ = writeln!(out, "\ncounters:");
        for (name, value) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<52} {value:>12}");
        }
    }
    if !snapshot.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges:");
        for (name, value) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<52} {value:>12}");
        }
    }
    if !snapshot.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\nhistograms:\n  {:<52} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "mean", "p50", "p95", "p99"
        );
        for (name, h) in &snapshot.histograms {
            let _ = writeln!(
                out,
                "  {name:<52} {:>9} {:>10} {:>10} {:>10} {:>10}  {}",
                h.count,
                format_value(name, h.mean() as u64),
                format_value(name, h.p50()),
                format_value(name, h.p95()),
                format_value(name, h.p99()),
                h.sparkline(),
            );
        }
    }
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot as JSON-lines: one object per instrument, with a
/// leading `meta` line carrying the capture time.
pub fn render_jsonl(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{\"type\":\"meta\",\"at_unix_ms\":{}}}", snapshot.at_unix_ms);
    for (name, value) in &snapshot.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(name)
        );
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            escape_json(name)
        );
    }
    for (name, h) in &snapshot.histograms {
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"mean\":{:.1},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            escape_json(name),
            h.count,
            h.sum,
            h.mean(),
            h.p50(),
            h.p95(),
            h.p99()
        );
    }
    out
}

/// A scoped feed into the global registry, used by the simulation
/// engine and scenario drivers: every instrument is namespaced
/// `sim.<scope>.`, so one process can run several scenarios and export
/// per-scenario telemetry from a single snapshot.
pub struct Collector {
    prefix: String,
    registry: &'static Registry,
}

impl Collector {
    /// A collector namespaced under `sim.<scope>.`.
    pub fn new(scope: &str) -> Self {
        Collector { prefix: format!("sim.{scope}."), registry: registry() }
    }

    /// The full instrument name for `name` under this collector.
    pub fn qualify(&self, name: &str) -> String {
        format!("{}{name}", self.prefix)
    }

    /// Adds to a namespaced counter.
    pub fn add(&self, name: &str, delta: u64) {
        self.registry.counter(&self.qualify(name)).add(delta);
    }

    /// Sets a namespaced gauge.
    pub fn gauge(&self, name: &str, value: i64) {
        self.registry.gauge(&self.qualify(name)).set(value);
    }

    /// Records into a namespaced histogram.
    pub fn observe(&self, name: &str, value: u64) {
        self.registry.histogram(&self.qualify(name)).record(value);
    }

    /// Snapshot restricted to this collector's namespace.
    pub fn snapshot(&self) -> Snapshot {
        self.registry.snapshot().filtered(&self.prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_render_formats_durations_and_raw_values() {
        let r = Registry::new();
        r.counter("net.handshake.success").add(3);
        r.gauge("core.connections").set(2);
        r.histogram("rpc.server.latency_ns/Statement").record(1_500);
        r.histogram("core.lock_funds.volume_milli").record(5_000);
        let text = render_text(&r.snapshot());
        assert!(text.contains("net.handshake.success"), "{text}");
        assert!(text.contains("µs"), "duration formatted: {text}");
        assert!(!text.contains("core.lock_funds.volume_milli 5_000ns"), "{text}");
        assert!(text.contains("p99"), "{text}");
    }

    #[test]
    fn jsonl_lines_parse_shallowly() {
        let r = Registry::new();
        r.counter("a.b").inc();
        r.histogram("lat_ns").record(10);
        r.gauge("g\"quoted").set(-4);
        let jsonl = render_jsonl(&r.snapshot());
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
        assert!(jsonl.contains("\"type\":\"histogram\""));
        assert!(jsonl.contains("g\\\"quoted"), "{jsonl}");
        assert_eq!(jsonl.lines().count(), 4);
    }

    #[test]
    fn collector_namespaces_instruments() {
        let c = Collector::new("open_market_test");
        c.add("jobs_completed", 7);
        c.gauge("providers", 4);
        c.observe("job_span_ms", 120);
        let snap = c.snapshot();
        assert_eq!(snap.counter("sim.open_market_test.jobs_completed"), Some(7));
        assert_eq!(snap.gauge("sim.open_market_test.providers"), Some(4));
        assert!(snap.histogram("sim.open_market_test.job_span_ms").is_some());
        // Filtered view excludes other namespaces.
        assert!(snap.counters.iter().all(|(n, _)| n.starts_with("sim.open_market_test.")));
    }
}
