//! Tail-sampling flight recorder: keeps *complete span trees*, but only
//! for traces that turned out slow or errored.
//!
//! The span buffer in [`crate::trace`] is head-sampled — it keeps the
//! first `MAX_BUFFERED_SPANS` finished spans and drops the rest — which
//! is exactly wrong for incident forensics: the interesting request is
//! the slow one that happened *after* the buffer filled. The flight
//! recorder inverts that. While enabled it stages the finished spans of
//! every in-flight trace, and when a trace completes (its last open span
//! closes) it either retains the whole tree in a bounded ring — if the
//! slowest span met the configured threshold, or any span carried an
//! `error` attribute — or discards it immediately. Fast, healthy traces
//! therefore cost one staged clone and nothing more.
//!
//! The retained ring is dumpable on demand ([`dump`]), over the wire via
//! the ops plane (`OpsQuery::Traces`, see `docs/OBSERVABILITY.md`), and
//! on panic ([`install_panic_hook`]). Disabled (the default) every hook
//! is a single relaxed atomic load.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

use parking_lot::Mutex;

use crate::trace::SpanRecord;

/// Upper bound on traces staged while still in flight; beyond it the
/// oldest staged trace is discarded (it can no longer be retained).
const MAX_STAGED_TRACES: usize = 256;

/// Retention policy for the flight recorder.
#[derive(Clone, Copy, Debug)]
pub struct FlightConfig {
    /// A trace is retained when its slowest span lasted at least this
    /// many microseconds.
    pub slow_threshold_us: u64,
    /// Completed trees kept in the ring; the oldest is evicted beyond it.
    pub capacity: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig { slow_threshold_us: 10_000, capacity: 64 }
    }
}

/// One complete span tree the recorder decided to keep.
#[derive(Clone, Debug)]
pub struct RetainedTrace {
    /// Trace id shared by every span of the tree.
    pub trace_id: u64,
    /// Every finished span of the trace, in completion order.
    pub spans: Vec<SpanRecord>,
    /// Duration of the slowest span (what tripped the threshold).
    pub max_duration_us: u64,
    /// True when retention was triggered by an `error` span attribute.
    pub errored: bool,
}

struct StagedTrace {
    open: usize,
    spans: Vec<SpanRecord>,
}

struct FlightState {
    config: FlightConfig,
    staging: HashMap<u64, StagedTrace>,
    /// First-seen order of staged trace ids, for bounded eviction.
    staging_order: VecDeque<u64>,
    ring: VecDeque<RetainedTrace>,
}

impl FlightState {
    fn new() -> Self {
        FlightState {
            config: FlightConfig::default(),
            staging: HashMap::new(),
            staging_order: VecDeque::new(),
            ring: VecDeque::new(),
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn state() -> &'static Mutex<FlightState> {
    static STATE: OnceLock<Mutex<FlightState>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(FlightState::new()))
}

/// Turns the flight recorder on or off. Disabling clears the staging
/// area (half-seen traces can no longer complete honestly) but keeps
/// the retained ring so a post-incident [`dump`] still works.
pub fn set_flight_recorder(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    if !on {
        let mut st = state().lock();
        st.staging.clear();
        st.staging_order.clear();
    }
}

/// True when the recorder is observing spans.
pub fn flight_recorder_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Replaces the retention policy; trims the ring if `capacity` shrank.
pub fn configure(config: FlightConfig) {
    let mut st = state().lock();
    st.config = config;
    while st.ring.len() > st.config.capacity {
        st.ring.pop_front();
    }
}

/// Hook from [`crate::trace`]: a span of `trace_id` opened.
pub(crate) fn on_span_open(trace_id: u64) {
    if !flight_recorder_enabled() {
        return;
    }
    let mut st = state().lock();
    let staged = st.staging.entry(trace_id).or_insert_with(|| {
        // New trace: remember arrival order for bounded eviction.
        StagedTrace { open: 0, spans: Vec::new() }
    });
    staged.open = staged.open.saturating_add(1);
    if staged.spans.is_empty() && staged.open == 1 {
        st.staging_order.push_back(trace_id);
    }
    while st.staging.len() > MAX_STAGED_TRACES {
        match st.staging_order.pop_front() {
            Some(old) if old != trace_id => {
                st.staging.remove(&old);
            }
            Some(old) => st.staging_order.push_back(old),
            None => break,
        }
    }
}

/// Hook from [`crate::trace`]: a span finished. Stages the record and,
/// when it was the trace's last open span, decides retention.
pub(crate) fn on_span_close(record: &SpanRecord) {
    if !flight_recorder_enabled() {
        return;
    }
    let mut st = state().lock();
    let Some(staged) = st.staging.get_mut(&record.trace_id) else {
        // Evicted mid-flight (or opened before enablement): drop it.
        return;
    };
    staged.spans.push(record.clone());
    staged.open = staged.open.saturating_sub(1);
    if staged.open > 0 {
        return;
    }
    let Some(done) = st.staging.remove(&record.trace_id) else { return };
    if let Some(pos) = st.staging_order.iter().position(|&id| id == record.trace_id) {
        st.staging_order.remove(pos);
    }
    let max_duration_us = done.spans.iter().map(|s| s.duration_us).max().unwrap_or(0);
    let errored = done.spans.iter().any(|s| s.attrs.iter().any(|(k, _)| *k == "error"));
    if max_duration_us < st.config.slow_threshold_us && !errored {
        return;
    }
    st.ring.push_back(RetainedTrace {
        trace_id: record.trace_id,
        spans: done.spans,
        max_duration_us,
        errored,
    });
    while st.ring.len() > st.config.capacity {
        st.ring.pop_front();
    }
    drop(st);
    crate::metrics::count("obs.flight.retained", 1);
}

/// Copies the retained traces, oldest first.
pub fn retained() -> Vec<RetainedTrace> {
    state().lock().ring.iter().cloned().collect()
}

/// Retained trace count without cloning the trees.
pub fn retained_count() -> usize {
    state().lock().ring.len()
}

/// Discards everything — retained ring and staging area both.
pub fn clear() {
    let mut st = state().lock();
    st.staging.clear();
    st.staging_order.clear();
    st.ring.clear();
}

/// Renders every retained trace as an indented tree with a one-line
/// header stating why it was kept. Empty string when nothing is
/// retained.
pub fn dump() -> String {
    render(retained())
}

fn render(traces: Vec<RetainedTrace>) -> String {
    let mut out = String::new();
    for t in traces {
        let reason = if t.errored { "errored" } else { "slow" };
        out.push_str(&format!(
            "-- retained ({reason}, max span {}µs, {} spans) --\n",
            t.max_duration_us,
            t.spans.len()
        ));
        out.push_str(&crate::trace::render_trace(t.trace_id, &t.spans));
    }
    out
}

/// Installs a panic hook (once) that prints the flight-recorder dump to
/// stderr before delegating to the previously installed hook, so a
/// crashing process leaves its slow/errored traces behind. Uses a
/// non-blocking lock: a panic *while holding* the recorder lock skips
/// the dump instead of deadlocking.
pub fn install_panic_hook() {
    static INSTALLED: AtomicBool = AtomicBool::new(false);
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    let previous = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let traces: Vec<RetainedTrace> =
            state().try_lock().map(|st| st.ring.iter().cloned().collect()).unwrap_or_default();
        if !traces.is_empty() {
            eprintln!("== flight recorder: retained slow/errored traces ==");
            eprintln!("{}", render(traces));
        }
        previous(info);
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{root_span, set_telemetry, span, take_spans};
    use crate::TEST_LOCK;

    fn with_recorder<T>(config: FlightConfig, f: impl FnOnce() -> T) -> T {
        let _guard = TEST_LOCK.lock();
        set_telemetry(true);
        clear();
        configure(config);
        set_flight_recorder(true);
        let out = f();
        set_flight_recorder(false);
        set_telemetry(false);
        let _ = take_spans();
        out
    }

    #[test]
    fn fast_clean_traces_are_discarded() {
        with_recorder(FlightConfig { slow_threshold_us: 60_000_000, capacity: 4 }, || {
            for _ in 0..10 {
                let _root = root_span("test.flight", "fast");
            }
            assert_eq!(retained_count(), 0);
            assert!(dump().is_empty());
        });
    }

    #[test]
    fn slow_traces_retain_their_complete_tree() {
        with_recorder(FlightConfig { slow_threshold_us: 1_000, capacity: 4 }, || {
            let root = root_span("test.flight", "slow_root");
            {
                let _child = span("test.flight", "child");
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            drop(root);
            let kept = retained();
            assert_eq!(kept.len(), 1, "one slow trace retained");
            assert_eq!(kept[0].spans.len(), 2, "root and child both present");
            assert!(!kept[0].errored);
            assert!(kept[0].max_duration_us >= 1_000);
            let text = dump();
            assert!(text.contains("slow_root"), "{text}");
            assert!(text.contains("child"), "{text}");
            assert!(text.contains("retained (slow"), "{text}");
        });
    }

    #[test]
    fn errored_traces_retain_regardless_of_speed() {
        with_recorder(FlightConfig { slow_threshold_us: 60_000_000, capacity: 4 }, || {
            {
                let mut root = root_span("test.flight", "failing");
                root.attr("error", "refused");
            }
            let kept = retained();
            assert_eq!(kept.len(), 1);
            assert!(kept[0].errored);
            assert!(dump().contains("retained (errored"));
        });
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        with_recorder(FlightConfig { slow_threshold_us: 0, capacity: 3 }, || {
            let mut ids = Vec::new();
            for _ in 0..5 {
                let root = root_span("test.flight", "kept");
                ids.push(root.trace_id());
            }
            let kept = retained();
            assert_eq!(kept.len(), 3, "capacity bound holds");
            let kept_ids: Vec<u64> = kept.iter().map(|t| t.trace_id).collect();
            assert_eq!(kept_ids, ids[2..], "oldest two evicted");
        });
    }

    #[test]
    fn disabled_recorder_observes_nothing() {
        let _guard = TEST_LOCK.lock();
        set_telemetry(true);
        clear();
        set_flight_recorder(false);
        configure(FlightConfig { slow_threshold_us: 0, capacity: 4 });
        drop(root_span("test.flight", "unseen"));
        assert_eq!(retained_count(), 0);
        set_telemetry(false);
        let _ = take_spans();
    }
}
