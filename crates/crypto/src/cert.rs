//! Certificates, certificate authorities and proxy certificates.
//!
//! Reproduces the GSI identity model the paper assumes:
//!
//! * a [`CertificateAuthority`] (the paper: "Certificates can be issued by
//!   the Globus CA. Alternatively, GridBank can set up its own CA") binds
//!   [`SubjectName`]s to verifying keys;
//! * a [`ProxyCertificate`] is "a certificate signed by the user, which is
//!   later used to repeatedly authenticate the user to resources" — the
//!   single sign-on mechanism GridBank requires of payment systems;
//! * validation walks the chain: CA → end-entity certificate → (optionally)
//!   proxy, checking signatures, validity windows and delegation depth.
//!
//! Time is an abstract `u64` epoch supplied by the caller, so the
//! discrete-event simulator can drive expiry deterministically.

use crate::error::CryptoError;
use crate::keys::{SigningIdentity, VerifyingKey};
use crate::merkle::MerkleSignature;
use crate::sha256::{Sha256, DIGEST_LEN};

/// An X.500-style distinguished name, the Grid-wide unique identifier that
/// GridBank account records key on (paper §5.1 `CertificateName`).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubjectName(pub String);

impl SubjectName {
    /// Builds a DN in the conventional `/O=.../OU=.../CN=...` form.
    pub fn new(organization: &str, unit: &str, common_name: &str) -> Self {
        SubjectName(format!("/O={organization}/OU={unit}/CN={common_name}"))
    }

    /// Parses the common-name component, if present.
    pub fn common_name(&self) -> Option<&str> {
        self.0.split('/').find_map(|c| c.strip_prefix("CN="))
    }

    /// Parses the organization component, if present.
    pub fn organization(&self) -> Option<&str> {
        self.0.split('/').find_map(|c| c.strip_prefix("O="))
    }

    /// The proxy name derived from this subject (GSI appends `/CN=proxy`).
    pub fn proxy_name(&self) -> SubjectName {
        SubjectName(format!("{}/CN=proxy", self.0))
    }

    /// True if this is a proxy DN (directly or transitively).
    pub fn is_proxy(&self) -> bool {
        self.0.ends_with("/CN=proxy")
    }

    /// The non-proxy base identity of this (possibly proxied) subject.
    pub fn base_identity(&self) -> SubjectName {
        let mut s = self.0.as_str();
        while let Some(stripped) = s.strip_suffix("/CN=proxy") {
            s = stripped;
        }
        SubjectName(s.to_string())
    }
}

impl std::fmt::Display for SubjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::fmt::Debug for SubjectName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubjectName({})", self.0)
    }
}

/// The signed payload of a certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertificateBody {
    /// Who the certificate is about.
    pub subject: SubjectName,
    /// Who signed it.
    pub issuer: SubjectName,
    /// The subject's verifying key.
    pub subject_key: VerifyingKey,
    /// Validity window start (inclusive), abstract epoch.
    pub not_before: u64,
    /// Validity window end (exclusive), abstract epoch.
    pub not_after: u64,
    /// Monotonic serial number assigned by the issuer.
    pub serial: u64,
}

impl CertificateBody {
    /// Canonical byte encoding that both signer and verifier hash.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(b"GBCERT1");
        for s in [&self.subject.0, &self.issuer.0] {
            out.extend_from_slice(&(s.len() as u32).to_be_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(self.subject_key.0.as_bytes());
        out.extend_from_slice(&self.not_before.to_be_bytes());
        out.extend_from_slice(&self.not_after.to_be_bytes());
        out.extend_from_slice(&self.serial.to_be_bytes());
        out
    }
}

/// An issued certificate: body + issuer signature.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Signed fields.
    pub body: CertificateBody,
    /// Issuer's MSS signature over [`CertificateBody::to_bytes`].
    pub signature: MerkleSignature,
}

impl Certificate {
    /// Checks the issuer signature and validity window at time `now`.
    pub fn verify(&self, issuer_key: &VerifyingKey, now: u64) -> Result<(), CryptoError> {
        issuer_key
            .verify(&self.body.to_bytes(), &self.signature)
            .map_err(|_| CryptoError::InvalidCertificate("bad issuer signature".into()))?;
        if now < self.body.not_before {
            return Err(CryptoError::InvalidCertificate(format!(
                "not yet valid (not_before={}, now={now})",
                self.body.not_before
            )));
        }
        if now >= self.body.not_after {
            return Err(CryptoError::Expired { not_after: self.body.not_after, now });
        }
        Ok(())
    }

    /// A short stable fingerprint over the body.
    pub fn fingerprint(&self) -> String {
        let mut h = Sha256::new();
        h.update(&self.body.to_bytes());
        h.finalize().short()
    }
}

/// A short-lived credential signed by the *user's* key, enabling single
/// sign-on: services verify the proxy against the user's certificate, so
/// the user's long-term key is only touched once per session.
#[derive(Clone, Debug)]
pub struct ProxyCertificate {
    /// The proxy's own body (subject = user's DN + "/CN=proxy", issuer =
    /// user's DN).
    pub body: CertificateBody,
    /// Signature by the *user's* key (not the CA's).
    pub signature: MerkleSignature,
    /// The user's CA-issued certificate, carried along for verification.
    pub user_cert: Certificate,
    /// Remaining delegation depth; 0 means this proxy may not re-delegate.
    pub delegation_depth: u8,
}

impl ProxyCertificate {
    /// Verifies the full chain at time `now`:
    /// CA signs user cert, user key signs proxy, windows hold, and the
    /// proxy subject is derived from the user subject.
    pub fn verify_chain(&self, ca_key: &VerifyingKey, now: u64) -> Result<(), CryptoError> {
        self.user_cert.verify(ca_key, now)?;
        self.user_cert
            .body
            .subject_key
            .verify(&self.body.to_bytes(), &self.signature)
            .map_err(|_| CryptoError::InvalidCertificate("bad proxy signature".into()))?;
        if now < self.body.not_before {
            return Err(CryptoError::InvalidCertificate("proxy not yet valid".into()));
        }
        if now >= self.body.not_after {
            return Err(CryptoError::Expired { not_after: self.body.not_after, now });
        }
        if self.body.issuer != self.user_cert.body.subject {
            return Err(CryptoError::InvalidCertificate(
                "proxy issuer does not match user subject".into(),
            ));
        }
        if self.body.subject.base_identity() != self.user_cert.body.subject.base_identity() {
            return Err(CryptoError::InvalidCertificate(
                "proxy subject not derived from user subject".into(),
            ));
        }
        Ok(())
    }

    /// The Grid-wide identity this proxy speaks for.
    pub fn grid_identity(&self) -> SubjectName {
        self.user_cert.body.subject.clone()
    }
}

/// A certificate authority: a signing identity plus issuance bookkeeping.
pub struct CertificateAuthority {
    identity: SigningIdentity,
    name: SubjectName,
    next_serial: std::sync::atomic::AtomicU64,
}

impl CertificateAuthority {
    /// Creates a CA around an existing signing identity.
    pub fn new(name: SubjectName, identity: SigningIdentity) -> Self {
        CertificateAuthority { identity, name, next_serial: std::sync::atomic::AtomicU64::new(1) }
    }

    /// The CA's distinguished name.
    pub fn name(&self) -> &SubjectName {
        &self.name
    }

    /// The key relying parties pin.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.identity.verifying_key()
    }

    /// Issues a certificate binding `subject` to `subject_key` for
    /// `[not_before, not_after)`.
    pub fn issue(
        &self,
        subject: SubjectName,
        subject_key: VerifyingKey,
        not_before: u64,
        not_after: u64,
    ) -> Result<Certificate, CryptoError> {
        if not_after <= not_before {
            return Err(CryptoError::InvalidCertificate("empty validity window".into()));
        }
        let serial = self.next_serial.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let body = CertificateBody {
            subject,
            issuer: self.name.clone(),
            subject_key,
            not_before,
            not_after,
            serial,
        };
        let signature = self.identity.sign(&body.to_bytes())?;
        Ok(Certificate { body, signature })
    }
}

/// Creates a proxy certificate: the user signs a short-lived key of their
/// own (paper: "A user proxy is a certificate signed by the user").
pub fn create_proxy(
    user_identity: &SigningIdentity,
    user_cert: &Certificate,
    proxy_key: VerifyingKey,
    not_before: u64,
    not_after: u64,
    delegation_depth: u8,
) -> Result<ProxyCertificate, CryptoError> {
    if not_after <= not_before {
        return Err(CryptoError::InvalidCertificate("empty proxy validity".into()));
    }
    let body = CertificateBody {
        subject: user_cert.body.subject.proxy_name(),
        issuer: user_cert.body.subject.clone(),
        subject_key: proxy_key,
        not_before,
        not_after,
        serial: 0,
    };
    let signature = user_identity.sign(&body.to_bytes())?;
    Ok(ProxyCertificate { body, signature, user_cert: user_cert.clone(), delegation_depth })
}

/// Canonical helper: hashes arbitrary bytes into a DN-safe token, used to
/// generate unique CNs for template accounts and machine identities.
pub fn dn_token(input: &[u8]) -> String {
    let mut h = Sha256::new();
    h.update(input);
    let d = h.finalize();
    d.to_hex()[..DIGEST_LEN / 2].to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyMaterial;

    fn ca() -> CertificateAuthority {
        let id = SigningIdentity::generate_small(KeyMaterial { seed: 100 }, "ca");
        CertificateAuthority::new(SubjectName::new("GridBank", "CA", "Root"), id)
    }

    fn user(seed: u64, cn: &str) -> (SigningIdentity, SubjectName) {
        let id = SigningIdentity::generate_small(KeyMaterial { seed }, cn);
        (id, SubjectName::new("UWA", "CSSE", cn))
    }

    #[test]
    fn subject_name_components() {
        let dn = SubjectName::new("UWA", "CSSE", "alice");
        assert_eq!(dn.0, "/O=UWA/OU=CSSE/CN=alice");
        assert_eq!(dn.common_name(), Some("alice"));
        assert_eq!(dn.organization(), Some("UWA"));
        assert!(!dn.is_proxy());
        let p = dn.proxy_name();
        assert!(p.is_proxy());
        assert_eq!(p.base_identity(), dn);
        assert_eq!(p.proxy_name().base_identity(), dn);
    }

    #[test]
    fn issue_and_verify_certificate() {
        let ca = ca();
        let (alice, dn) = user(1, "alice");
        let cert = ca.issue(dn.clone(), alice.verifying_key(), 10, 100).unwrap();
        cert.verify(&ca.verifying_key(), 50).unwrap();
        assert_eq!(cert.body.subject, dn);
        assert_eq!(cert.body.serial, 1);
        let cert2 = ca.issue(dn, alice.verifying_key(), 10, 100).unwrap();
        assert_eq!(cert2.body.serial, 2);
    }

    #[test]
    fn expiry_and_not_yet_valid() {
        let ca = ca();
        let (alice, dn) = user(1, "alice");
        let cert = ca.issue(dn, alice.verifying_key(), 10, 100).unwrap();
        assert!(matches!(
            cert.verify(&ca.verifying_key(), 5),
            Err(CryptoError::InvalidCertificate(_))
        ));
        assert!(matches!(
            cert.verify(&ca.verifying_key(), 100),
            Err(CryptoError::Expired { not_after: 100, now: 100 })
        ));
        assert!(ca.issue(SubjectName::new("x", "y", "z"), alice.verifying_key(), 5, 5).is_err());
    }

    #[test]
    fn wrong_ca_key_rejected() {
        let ca1 = ca();
        let id2 = SigningIdentity::generate_small(KeyMaterial { seed: 999 }, "ca2");
        let ca2 = CertificateAuthority::new(SubjectName::new("Other", "CA", "Root"), id2);
        let (alice, dn) = user(1, "alice");
        let cert = ca1.issue(dn, alice.verifying_key(), 0, 100).unwrap();
        assert!(cert.verify(&ca2.verifying_key(), 50).is_err());
    }

    #[test]
    fn tampered_body_rejected() {
        let ca = ca();
        let (alice, dn) = user(1, "alice");
        let mut cert = ca.issue(dn, alice.verifying_key(), 0, 100).unwrap();
        cert.body.not_after = 1_000_000; // try to extend validity
        assert!(cert.verify(&ca.verifying_key(), 50).is_err());
    }

    #[test]
    fn proxy_chain_verifies() {
        let ca = ca();
        let (alice, dn) = user(1, "alice");
        let cert = ca.issue(dn.clone(), alice.verifying_key(), 0, 1000).unwrap();
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 2 }, "alice-proxy");
        let proxy = create_proxy(&alice, &cert, proxy_id.verifying_key(), 0, 100, 1).unwrap();
        proxy.verify_chain(&ca.verifying_key(), 50).unwrap();
        assert_eq!(proxy.grid_identity(), dn);
        assert!(proxy.body.subject.is_proxy());
    }

    #[test]
    fn proxy_expires_independently_of_user_cert() {
        let ca = ca();
        let (alice, dn) = user(1, "alice");
        let cert = ca.issue(dn, alice.verifying_key(), 0, 1000).unwrap();
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 2 }, "p");
        let proxy = create_proxy(&alice, &cert, proxy_id.verifying_key(), 0, 100, 0).unwrap();
        assert!(matches!(
            proxy.verify_chain(&ca.verifying_key(), 100),
            Err(CryptoError::Expired { .. })
        ));
    }

    #[test]
    fn proxy_signed_by_other_user_rejected() {
        let ca = ca();
        let (alice, dn_a) = user(1, "alice");
        let (mallory, _dn_m) = user(66, "mallory");
        let cert_a = ca.issue(dn_a, alice.verifying_key(), 0, 1000).unwrap();
        let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 3 }, "p");
        // Mallory signs a proxy claiming to be derived from Alice's cert.
        let forged = create_proxy(&mallory, &cert_a, proxy_id.verifying_key(), 0, 100, 0).unwrap();
        assert!(forged.verify_chain(&ca.verifying_key(), 50).is_err());
    }

    #[test]
    fn dn_token_is_stable_and_distinct() {
        assert_eq!(dn_token(b"node-1"), dn_token(b"node-1"));
        assert_ne!(dn_token(b"node-1"), dn_token(b"node-2"));
        assert_eq!(dn_token(b"x").len(), 16);
    }
}
