//! High-level key types: [`SigningIdentity`] / [`VerifyingKey`].
//!
//! These wrap the Merkle signature scheme behind the interface the rest of
//! the workspace uses: generate from a seed, sign bytes, verify bytes.

use parking_lot_free::Mutex;

use crate::error::CryptoError;
use crate::merkle::{verify_merkle, MerkleSignature, MerkleSigner};
use crate::rng::DeterministicStream;
use crate::sha256::Digest;

/// Minimal internal mutex shim so this crate stays dependency-free.
/// (`std::sync::Mutex` with poisoning folded away.)
mod parking_lot_free {
    pub struct Mutex<T>(std::sync::Mutex<T>);
    impl<T> Mutex<T> {
        pub fn new(v: T) -> Self {
            Mutex(std::sync::Mutex::new(v))
        }
        pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
            self.0.lock().unwrap_or_else(|p| p.into_inner())
        }
    }
}

/// Default tree height: 2^10 = 1024 signatures per identity, enough for any
/// scenario in the test/bench suite while keeping keygen ~quarter-second.
pub const DEFAULT_HEIGHT: usize = 10;

/// Seed material for deterministic identity generation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyMaterial {
    /// Master seed; independent identities should use distinct labels.
    pub seed: u64,
}

/// The public half of an identity: the Merkle root digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct VerifyingKey(pub Digest);

impl VerifyingKey {
    /// Verifies `sig` over `message`.
    pub fn verify(&self, message: &[u8], sig: &MerkleSignature) -> Result<(), CryptoError> {
        verify_merkle(&self.0, message, sig)
    }

    /// Stable hex fingerprint, used in subject bindings and logs.
    pub fn fingerprint(&self) -> String {
        self.0.short()
    }
}

impl std::fmt::Debug for VerifyingKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VerifyingKey({})", self.fingerprint())
    }
}

/// A long-lived signing identity (interior-mutable: signing consumes
/// one-time leaves, but callers hold `&self`).
pub struct SigningIdentity {
    signer: Mutex<MerkleSigner>,
    public: VerifyingKey,
}

impl SigningIdentity {
    /// Generates an identity with `2^height` signatures from seed+label.
    pub fn generate_with_height(material: KeyMaterial, label: &str, height: usize) -> Self {
        let stream = DeterministicStream::from_u64(material.seed, label.as_bytes());
        let signer = MerkleSigner::generate(&stream, height);
        let public = VerifyingKey(signer.public_root());
        SigningIdentity { signer: Mutex::new(signer), public }
    }

    /// Generates an identity with the [`DEFAULT_HEIGHT`] capacity.
    pub fn generate(material: KeyMaterial, label: &str) -> Self {
        Self::generate_with_height(material, label, DEFAULT_HEIGHT)
    }

    /// A small identity (2^4 = 16 signatures) for fast unit tests.
    pub fn generate_small(material: KeyMaterial, label: &str) -> Self {
        Self::generate_with_height(material, label, 4)
    }

    /// The public verifying key.
    pub fn verifying_key(&self) -> VerifyingKey {
        self.public
    }

    /// Signs a message, consuming one one-time leaf.
    pub fn sign(&self, message: &[u8]) -> Result<MerkleSignature, CryptoError> {
        self.signer.lock().sign(message)
    }

    /// Remaining signature capacity.
    pub fn remaining(&self) -> usize {
        self.signer.lock().remaining()
    }
}

impl std::fmt::Debug for SigningIdentity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SigningIdentity(pub={})", self.public.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_round_trip() {
        let id = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "user/alice");
        let vk = id.verifying_key();
        let sig = id.sign(b"hello grid").unwrap();
        vk.verify(b"hello grid", &sig).unwrap();
        assert!(vk.verify(b"hello grid!", &sig).is_err());
    }

    #[test]
    fn identities_are_label_distinct() {
        let a = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "a");
        let b = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "b");
        let a2 = SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "a");
        assert_ne!(a.verifying_key().0, b.verifying_key().0);
        assert_eq!(a.verifying_key().0, a2.verifying_key().0);
    }

    #[test]
    fn capacity_decreases_and_exhausts() {
        let id = SigningIdentity::generate_with_height(KeyMaterial { seed: 3 }, "x", 2);
        assert_eq!(id.remaining(), 4);
        for _ in 0..4 {
            id.sign(b"m").unwrap();
        }
        assert_eq!(id.remaining(), 0);
        assert!(matches!(id.sign(b"m"), Err(CryptoError::IdentityExhausted { .. })));
    }

    #[test]
    fn concurrent_signing_is_safe() {
        let id = std::sync::Arc::new(SigningIdentity::generate_with_height(
            KeyMaterial { seed: 9 },
            "conc",
            5,
        ));
        let vk = id.verifying_key();
        let mut handles = Vec::new();
        for t in 0..4 {
            let id = id.clone();
            handles.push(std::thread::spawn(move || {
                let mut sigs = Vec::new();
                for i in 0..8 {
                    let msg = format!("t{t}m{i}");
                    sigs.push((msg.clone(), id.sign(msg.as_bytes()).unwrap()));
                }
                sigs
            }));
        }
        let mut indices = std::collections::HashSet::new();
        for h in handles {
            for (msg, sig) in h.join().unwrap() {
                vk.verify(msg.as_bytes(), &sig).unwrap();
                assert!(indices.insert(sig.leaf_index), "leaf reused across threads");
            }
        }
        assert_eq!(indices.len(), 32);
    }
}
