//! Error type shared across the crypto crate.

use std::fmt;

/// Errors produced by signature, certificate, and key operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CryptoError {
    /// A signature failed verification against the claimed public key.
    BadSignature,
    /// A one-time key was asked to sign a second message.
    OneTimeKeyReused,
    /// A Merkle signing identity ran out of one-time leaf keys.
    IdentityExhausted {
        /// Total number of signatures the identity could ever produce.
        capacity: usize,
    },
    /// A Merkle authentication path did not reconstruct the committed root.
    BadAuthPath,
    /// A certificate chain failed validation.
    InvalidCertificate(String),
    /// A certificate or proxy was used outside its validity window.
    Expired {
        /// Validity end, in the epoch the issuer used.
        not_after: u64,
        /// Time at which validation was attempted.
        now: u64,
    },
    /// A proxy certificate's delegation depth was exceeded.
    DelegationTooDeep,
    /// Malformed serialized input.
    Malformed(String),
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadSignature => write!(f, "signature verification failed"),
            CryptoError::OneTimeKeyReused => {
                write!(f, "one-time signing key has already been used")
            }
            CryptoError::IdentityExhausted { capacity } => {
                write!(f, "signing identity exhausted after {capacity} signatures")
            }
            CryptoError::BadAuthPath => {
                write!(f, "Merkle authentication path does not match committed root")
            }
            CryptoError::InvalidCertificate(why) => write!(f, "invalid certificate: {why}"),
            CryptoError::Expired { not_after, now } => {
                write!(f, "credential expired at {not_after}, now {now}")
            }
            CryptoError::DelegationTooDeep => write!(f, "proxy delegation depth exceeded"),
            CryptoError::Malformed(what) => write!(f, "malformed input: {what}"),
        }
    }
}

impl std::error::Error for CryptoError {}
