//! # gridbank-crypto
//!
//! Cryptographic substrate for the GridBank reproduction, replacing the
//! Globus Security Infrastructure (GSI) that the paper builds on.
//!
//! The paper relies on GSI for four things:
//!
//! 1. **Identity** — X.509v3 certificates whose subject names are the
//!    Grid-wide unique client identifiers stored in GridBank accounts.
//! 2. **Single sign-on** — short-lived *proxy certificates* signed by the
//!    user's long-term key, so the user's passphrase is entered once.
//! 3. **Mutual authentication** — both ends of a connection prove control of
//!    their certified keys before any bank message flows.
//! 4. **Non-repudiation** — usage records and charge calculations are signed
//!    by the GSP so disputes can be settled.
//!
//! This crate provides all four from scratch, with no external crypto
//! dependencies:
//!
//! * [`mod@sha256`] — FIPS 180-4 SHA-256, the only primitive everything else is
//!   built from (PayWord hash chains in `gridbank-core` use it directly).
//! * [`hmac`] — HMAC-SHA256 and a simple HKDF-style key derivation.
//! * [`lamport`] — Lamport one-time signatures.
//! * [`merkle`] — Merkle trees and the Merkle signature scheme (MSS), turning
//!   one-time Lamport keys into a multi-use signing identity.
//! * [`keys`] — seeded key generation and the [`keys::SigningIdentity`] type.
//! * [`cert`] — certificates, certificate authorities, proxy certificates and
//!   chain validation.
//! * [`rng`] — a deterministic SHA-256 counter-mode stream used wherever
//!   reproducible randomness is required.
//!
//! The schemes are real (unforgeable under standard hash assumptions), small
//! enough to audit, and deterministic under seeded RNGs, which the
//! simulation-driven experiments require. They are **not** constant-time and
//! are not intended for production use outside this reproduction.

pub mod cert;
pub mod error;
pub mod hmac;
pub mod keys;
pub mod lamport;
pub mod merkle;
pub mod rng;
pub mod sha256;

pub use cert::{Certificate, CertificateAuthority, CertificateBody, ProxyCertificate, SubjectName};
pub use error::CryptoError;
pub use hmac::{hkdf_expand, hmac_sha256};
pub use keys::{KeyMaterial, SigningIdentity, VerifyingKey};
pub use merkle::{MerkleSignature, MerkleTree};
pub use rng::DeterministicStream;
pub use sha256::{sha256, Digest, Sha256, DIGEST_LEN};

/// Convenience prelude for downstream crates.
pub mod prelude {
    pub use crate::cert::{Certificate, CertificateAuthority, ProxyCertificate, SubjectName};
    pub use crate::error::CryptoError;
    pub use crate::keys::{SigningIdentity, VerifyingKey};
    pub use crate::sha256::{sha256, Digest};
}
