//! Lamport one-time signatures over SHA-256.
//!
//! A Lamport key signs exactly one message (signing a second message leaks
//! enough secrets to forge). [`crate::merkle`] lifts these one-time keys
//! into the multi-use Merkle signature scheme used for certificates and
//! cheque signing.
//!
//! Layout: the secret key is 256 pairs of 32-byte values, one pair per bit
//! of the message digest. The public key is the per-value SHA-256 images;
//! the *compact* public key committed in certificates and Merkle leaves is
//! the hash of all 512 images. A signature reveals one secret per digest
//! bit and carries the 256 complementary images so the verifier can
//! reconstruct and re-hash the full public key.

use crate::error::CryptoError;
use crate::rng::DeterministicStream;
use crate::sha256::{sha256, Digest, Sha256, DIGEST_LEN};

/// Number of message-digest bits, and thus secret pairs.
pub const BITS: usize = DIGEST_LEN * 8;

/// A Lamport one-time secret key.
#[derive(Clone)]
pub struct OneTimeSecretKey {
    /// `secrets[b][i]` signs bit `i` when that bit equals `b`.
    secrets: Box<[[Digest; BITS]; 2]>,
    used: bool,
}

/// The compact public key: SHA-256 over all 512 public images.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct OneTimePublicKey(pub Digest);

/// A Lamport signature: the revealed secrets plus complementary images.
#[derive(Clone, PartialEq, Eq)]
pub struct OneTimeSignature {
    /// For each digest bit: the revealed preimage for the bit's value.
    pub revealed: Box<[Digest; BITS]>,
    /// For each digest bit: the public image of the *other* value.
    pub complement: Box<[Digest; BITS]>,
}

impl OneTimeSignature {
    /// Serialized size in bytes (fixed).
    pub const ENCODED_LEN: usize = 2 * BITS * DIGEST_LEN;

    /// Flat byte encoding: revealed then complement.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        for d in self.revealed.iter().chain(self.complement.iter()) {
            out.extend_from_slice(d.as_bytes());
        }
        out
    }

    /// Parses the flat encoding produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != Self::ENCODED_LEN {
            return Err(CryptoError::Malformed(format!(
                "lamport signature must be {} bytes, got {}",
                Self::ENCODED_LEN,
                bytes.len()
            )));
        }
        let mut revealed = Box::new([Digest::ZERO; BITS]);
        let mut complement = Box::new([Digest::ZERO; BITS]);
        for i in 0..BITS {
            let mut d = [0u8; DIGEST_LEN];
            d.copy_from_slice(&bytes[i * DIGEST_LEN..(i + 1) * DIGEST_LEN]);
            revealed[i] = Digest(d);
        }
        for i in 0..BITS {
            let off = (BITS + i) * DIGEST_LEN;
            let mut d = [0u8; DIGEST_LEN];
            d.copy_from_slice(&bytes[off..off + DIGEST_LEN]);
            complement[i] = Digest(d);
        }
        Ok(OneTimeSignature { revealed, complement })
    }
}

impl std::fmt::Debug for OneTimeSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OneTimeSignature({} bytes)", Self::ENCODED_LEN)
    }
}

#[inline]
fn bit_of(digest: &Digest, i: usize) -> usize {
    ((digest.0[i / 8] >> (7 - (i % 8))) & 1) as usize
}

/// Hashes all 512 public images into the compact public key.
fn compact(images: &[[Digest; BITS]; 2]) -> OneTimePublicKey {
    let mut h = Sha256::new();
    for side in images {
        for img in side {
            h.update(img.as_bytes());
        }
    }
    OneTimePublicKey(h.finalize())
}

impl OneTimeSecretKey {
    /// Derives a key pair deterministically from a stream.
    pub fn generate(stream: &mut DeterministicStream) -> (OneTimeSecretKey, OneTimePublicKey) {
        let mut secrets = Box::new([[Digest::ZERO; BITS]; 2]);
        for side in secrets.iter_mut() {
            for slot in side.iter_mut() {
                *slot = stream.next_digest();
            }
        }
        let mut images = Box::new([[Digest::ZERO; BITS]; 2]);
        for (s_side, i_side) in secrets.iter().zip(images.iter_mut()) {
            for (s, img) in s_side.iter().zip(i_side.iter_mut()) {
                *img = sha256(s.as_bytes());
            }
        }
        let pk = compact(&images);
        (OneTimeSecretKey { secrets, used: false }, pk)
    }

    /// Signs `message` (hashed internally). Fails on second use.
    pub fn sign(&mut self, message: &[u8]) -> Result<OneTimeSignature, CryptoError> {
        if self.used {
            return Err(CryptoError::OneTimeKeyReused);
        }
        self.used = true;
        Ok(self.sign_digest(&sha256(message)))
    }

    /// Signs a precomputed digest without the reuse guard; callers such as
    /// the Merkle scheme enforce one-time use structurally.
    pub(crate) fn sign_digest(&self, digest: &Digest) -> OneTimeSignature {
        let mut revealed = Box::new([Digest::ZERO; BITS]);
        let mut complement = Box::new([Digest::ZERO; BITS]);
        for i in 0..BITS {
            let b = bit_of(digest, i);
            revealed[i] = self.secrets[b][i];
            complement[i] = sha256(self.secrets[1 - b][i].as_bytes());
        }
        OneTimeSignature { revealed, complement }
    }
}

/// Verifies a one-time signature on `message` against a compact public key.
pub fn verify(
    pk: &OneTimePublicKey,
    message: &[u8],
    sig: &OneTimeSignature,
) -> Result<(), CryptoError> {
    verify_digest(pk, &sha256(message), sig)
}

/// Verifies a one-time signature on a precomputed digest.
pub fn verify_digest(
    pk: &OneTimePublicKey,
    digest: &Digest,
    sig: &OneTimeSignature,
) -> Result<(), CryptoError> {
    // Reconstruct the full image table, then compare compact keys.
    let mut images = Box::new([[Digest::ZERO; BITS]; 2]);
    for i in 0..BITS {
        let b = bit_of(digest, i);
        images[b][i] = sha256(sig.revealed[i].as_bytes());
        images[1 - b][i] = sig.complement[i];
    }
    if compact(&images) == *pk {
        Ok(())
    } else {
        Err(CryptoError::BadSignature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream() -> DeterministicStream {
        DeterministicStream::from_u64(0xD00D, b"lamport-test")
    }

    #[test]
    fn sign_verify_round_trip() {
        let (mut sk, pk) = OneTimeSecretKey::generate(&mut stream());
        let sig = sk.sign(b"pay 10 G$ to gsp-alpha").unwrap();
        verify(&pk, b"pay 10 G$ to gsp-alpha", &sig).unwrap();
    }

    #[test]
    fn wrong_message_rejected() {
        let (mut sk, pk) = OneTimeSecretKey::generate(&mut stream());
        let sig = sk.sign(b"pay 10").unwrap();
        assert_eq!(verify(&pk, b"pay 11", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut s = stream();
        let (mut sk, _pk) = OneTimeSecretKey::generate(&mut s);
        let (_sk2, pk2) = OneTimeSecretKey::generate(&mut s);
        let sig = sk.sign(b"msg").unwrap();
        assert_eq!(verify(&pk2, b"msg", &sig), Err(CryptoError::BadSignature));
    }

    #[test]
    fn reuse_is_refused() {
        let (mut sk, _pk) = OneTimeSecretKey::generate(&mut stream());
        sk.sign(b"first").unwrap();
        assert_eq!(sk.sign(b"second"), Err(CryptoError::OneTimeKeyReused));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (mut sk, pk) = OneTimeSecretKey::generate(&mut stream());
        let mut sig = sk.sign(b"msg").unwrap();
        sig.revealed[17].0[0] ^= 0xFF;
        assert_eq!(verify(&pk, b"msg", &sig), Err(CryptoError::BadSignature));

        let (mut sk2, pk2) = OneTimeSecretKey::generate(&mut stream());
        let mut sig2 = sk2.sign(b"msg").unwrap();
        sig2.complement[255].0[31] ^= 0x01;
        assert_eq!(verify(&pk2, b"msg", &sig2), Err(CryptoError::BadSignature));
    }

    #[test]
    fn signature_encoding_round_trip() {
        let (mut sk, pk) = OneTimeSecretKey::generate(&mut stream());
        let sig = sk.sign(b"encode me").unwrap();
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), OneTimeSignature::ENCODED_LEN);
        let back = OneTimeSignature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        verify(&pk, b"encode me", &back).unwrap();
        assert!(OneTimeSignature::from_bytes(&bytes[1..]).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let (_a_sk, a_pk) = OneTimeSecretKey::generate(&mut stream());
        let (_b_sk, b_pk) = OneTimeSecretKey::generate(&mut stream());
        assert_eq!(a_pk, b_pk);
        let mut other = DeterministicStream::from_u64(0xD00D, b"other-label");
        let (_c_sk, c_pk) = OneTimeSecretKey::generate(&mut other);
        assert_ne!(a_pk, c_pk);
    }

    #[test]
    fn bit_extraction_is_msb_first() {
        let mut d = Digest::ZERO;
        d.0[0] = 0b1000_0000;
        assert_eq!(bit_of(&d, 0), 1);
        assert_eq!(bit_of(&d, 1), 0);
        let mut d2 = Digest::ZERO;
        d2.0[31] = 0b0000_0001;
        assert_eq!(bit_of(&d2, 255), 1);
        assert_eq!(bit_of(&d2, 254), 0);
    }
}
