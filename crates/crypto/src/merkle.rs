//! Merkle trees and the Merkle signature scheme (MSS).
//!
//! MSS turns `2^h` Lamport one-time keys into a single long-lived identity:
//! the public key is the Merkle root over the compact one-time public keys,
//! and each signature carries the one-time signature, the leaf public key,
//! the leaf index, and the authentication path up to the root.
//!
//! The tree is also reused on its own (without signatures) by the PayWord
//! module in `gridbank-core` for batched commitment of hash-chain roots.

use crate::error::CryptoError;
use crate::lamport::{self, OneTimePublicKey, OneTimeSecretKey, OneTimeSignature};
use crate::rng::DeterministicStream;
use crate::sha256::{sha256_concat, Digest};

/// Domain-separation prefixes so leaves can never be confused with nodes.
const LEAF_PREFIX: &[u8] = b"\x00gridbank-leaf";
const NODE_PREFIX: &[u8] = b"\x01gridbank-node";

/// Hashes a leaf payload into the tree's leaf digest.
pub fn leaf_hash(payload: &[u8]) -> Digest {
    sha256_concat(&[LEAF_PREFIX, payload])
}

/// Hashes two child digests into their parent.
pub fn node_hash(left: &Digest, right: &Digest) -> Digest {
    sha256_concat(&[NODE_PREFIX, left.as_bytes(), right.as_bytes()])
}

/// A complete binary Merkle tree over pre-hashed leaves.
///
/// Leaf count is padded to the next power of two by repeating the last
/// leaf digest, a standard construction that keeps auth paths uniform.
#[derive(Clone, Debug)]
pub struct MerkleTree {
    /// `levels[0]` = leaves (padded), last level = `[root]`.
    levels: Vec<Vec<Digest>>,
    real_leaves: usize,
}

/// One sibling digest per tree level, bottom-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AuthPath {
    /// Leaf index the path authenticates.
    pub index: usize,
    /// Sibling digests from leaf level to just below the root.
    pub siblings: Vec<Digest>,
}

impl MerkleTree {
    /// Builds a tree over already-hashed leaf digests.
    ///
    /// Panics if `leaves` is empty (an empty commitment is meaningless).
    pub fn from_leaf_digests(leaves: &[Digest]) -> Self {
        assert!(!leaves.is_empty(), "Merkle tree needs at least one leaf");
        let real_leaves = leaves.len();
        let width = real_leaves.next_power_of_two();
        let mut level: Vec<Digest> = Vec::with_capacity(width);
        level.extend_from_slice(leaves);
        let pad = *leaves.last().expect("nonempty");
        level.resize(width, pad);

        let mut levels = vec![level];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len() / 2);
            for pair in prev.chunks_exact(2) {
                next.push(node_hash(&pair[0], &pair[1]));
            }
            levels.push(next);
        }
        MerkleTree { levels, real_leaves }
    }

    /// Builds a tree by hashing raw leaf payloads first.
    pub fn from_payloads<T: AsRef<[u8]>>(payloads: &[T]) -> Self {
        let leaves: Vec<Digest> = payloads.iter().map(|p| leaf_hash(p.as_ref())).collect();
        Self::from_leaf_digests(&leaves)
    }

    /// The committed root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of real (unpadded) leaves.
    pub fn len(&self) -> usize {
        self.real_leaves
    }

    /// True if the tree has exactly one real leaf.
    pub fn is_empty(&self) -> bool {
        false // constructor forbids empty trees; method exists for clippy symmetry
    }

    /// Tree height (number of levels above the leaves).
    pub fn height(&self) -> usize {
        self.levels.len() - 1
    }

    /// Authentication path for leaf `index`.
    pub fn auth_path(&self, index: usize) -> Option<AuthPath> {
        if index >= self.real_leaves {
            return None;
        }
        let mut siblings = Vec::with_capacity(self.height());
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            siblings.push(level[idx ^ 1]);
            idx >>= 1;
        }
        Some(AuthPath { index, siblings })
    }
}

/// Recomputes a root from a leaf digest and an auth path.
pub fn root_from_path(leaf: &Digest, path: &AuthPath) -> Digest {
    let mut acc = *leaf;
    let mut idx = path.index;
    for sib in &path.siblings {
        acc = if idx & 1 == 0 { node_hash(&acc, sib) } else { node_hash(sib, &acc) };
        idx >>= 1;
    }
    acc
}

/// Verifies that `leaf` sits at `path.index` under `root`.
pub fn verify_path(root: &Digest, leaf: &Digest, path: &AuthPath) -> Result<(), CryptoError> {
    if root_from_path(leaf, path) == *root {
        Ok(())
    } else {
        Err(CryptoError::BadAuthPath)
    }
}

/// A multi-use Merkle (MSS) signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleSignature {
    /// Index of the one-time key used.
    pub leaf_index: usize,
    /// The one-time Lamport signature.
    pub ots: OneTimeSignature,
    /// Compact public key of the one-time key (the leaf payload).
    pub leaf_pk: OneTimePublicKey,
    /// Path authenticating `leaf_pk` under the identity's root.
    pub path: AuthPath,
}

impl MerkleSignature {
    /// Approximate encoded size in bytes (used by the security bench E13).
    pub fn encoded_len(&self) -> usize {
        8 + OneTimeSignature::ENCODED_LEN + 32 + self.path.siblings.len() * 32
    }

    /// Canonical byte encoding, for embedding signatures in wire messages
    /// and stored instruments.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len() + 16);
        out.extend_from_slice(&(self.leaf_index as u64).to_be_bytes());
        out.extend_from_slice(&self.ots.to_bytes());
        out.extend_from_slice(self.leaf_pk.0.as_bytes());
        out.extend_from_slice(&(self.path.index as u64).to_be_bytes());
        out.extend_from_slice(&(self.path.siblings.len() as u64).to_be_bytes());
        for s in &self.path.siblings {
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    /// Parses the [`Self::to_bytes`] encoding; the input must be exact.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        fn take<'a>(b: &mut &'a [u8], n: usize) -> Result<&'a [u8], CryptoError> {
            if b.len() < n {
                return Err(CryptoError::Malformed("signature truncated".into()));
            }
            let (head, rest) = b.split_at(n);
            *b = rest;
            Ok(head)
        }
        fn take_u64(b: &mut &[u8]) -> Result<u64, CryptoError> {
            let s = take(b, 8)?;
            let mut a = [0u8; 8];
            a.copy_from_slice(s);
            Ok(u64::from_be_bytes(a))
        }
        fn take_digest(b: &mut &[u8]) -> Result<Digest, CryptoError> {
            let s = take(b, 32)?;
            let mut a = [0u8; 32];
            a.copy_from_slice(s);
            Ok(Digest(a))
        }
        let mut b = bytes;
        let leaf_index = take_u64(&mut b)? as usize;
        let ots = OneTimeSignature::from_bytes(take(&mut b, OneTimeSignature::ENCODED_LEN)?)?;
        let leaf_pk = OneTimePublicKey(take_digest(&mut b)?);
        let path_index = take_u64(&mut b)? as usize;
        let n = take_u64(&mut b)? as usize;
        if n > 64 {
            return Err(CryptoError::Malformed(format!("auth path depth {n}")));
        }
        let mut siblings = Vec::with_capacity(n);
        for _ in 0..n {
            siblings.push(take_digest(&mut b)?);
        }
        if !b.is_empty() {
            return Err(CryptoError::Malformed(format!(
                "{} trailing bytes after signature",
                b.len()
            )));
        }
        Ok(MerkleSignature {
            leaf_index,
            ots,
            leaf_pk,
            path: AuthPath { index: path_index, siblings },
        })
    }
}

/// The signing half of an MSS identity. Holds the seed; one-time secret
/// keys are re-derived on demand, so memory stays proportional to the
/// number of leaves' *public* hashes only.
pub struct MerkleSigner {
    stream_root: DeterministicStream,
    tree: MerkleTree,
    leaf_pks: Vec<OneTimePublicKey>,
    next_leaf: usize,
}

impl MerkleSigner {
    /// Generates an identity with `2^height` one-time keys.
    pub fn generate(stream: &DeterministicStream, height: usize) -> Self {
        let count = 1usize << height;
        let mut leaf_pks = Vec::with_capacity(count);
        for i in 0..count {
            let mut leaf_stream = stream.child(format!("ots-{i}").as_bytes());
            let (_sk, pk) = OneTimeSecretKey::generate(&mut leaf_stream);
            leaf_pks.push(pk);
        }
        let leaves: Vec<Digest> = leaf_pks.iter().map(|pk| leaf_hash(pk.0.as_bytes())).collect();
        let tree = MerkleTree::from_leaf_digests(&leaves);
        MerkleSigner { stream_root: stream.clone(), tree, leaf_pks, next_leaf: 0 }
    }

    /// The public key: the Merkle root.
    pub fn public_root(&self) -> Digest {
        self.tree.root()
    }

    /// Total signature capacity.
    pub fn capacity(&self) -> usize {
        self.leaf_pks.len()
    }

    /// Signatures still available.
    pub fn remaining(&self) -> usize {
        self.capacity() - self.next_leaf
    }

    /// Signs a message, consuming one leaf.
    pub fn sign(&mut self, message: &[u8]) -> Result<MerkleSignature, CryptoError> {
        let idx = self.next_leaf;
        if idx >= self.capacity() {
            return Err(CryptoError::IdentityExhausted { capacity: self.capacity() });
        }
        self.next_leaf += 1;
        let mut leaf_stream = self.stream_root.child(format!("ots-{idx}").as_bytes());
        let (sk, pk) = OneTimeSecretKey::generate(&mut leaf_stream);
        debug_assert_eq!(pk, self.leaf_pks[idx]);
        let digest = crate::sha256::sha256(message);
        let ots = sk.sign_digest(&digest);
        let path = self.tree.auth_path(idx).expect("index in range");
        Ok(MerkleSignature { leaf_index: idx, ots, leaf_pk: pk, path })
    }
}

/// Verifies an MSS signature against an identity root.
pub fn verify_merkle(
    root: &Digest,
    message: &[u8],
    sig: &MerkleSignature,
) -> Result<(), CryptoError> {
    // 1. The one-time signature must verify under the claimed leaf key.
    lamport::verify(&sig.leaf_pk, message, &sig.ots)?;
    // 2. The leaf key must be committed under the identity root.
    let leaf = leaf_hash(sig.leaf_pk.0.as_bytes());
    if sig.path.index != sig.leaf_index {
        return Err(CryptoError::BadAuthPath);
    }
    verify_path(root, &leaf, &sig.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(label: &[u8]) -> DeterministicStream {
        DeterministicStream::from_u64(0xBEEF, label)
    }

    #[test]
    fn tree_roots_are_deterministic_and_leaf_sensitive() {
        let a = MerkleTree::from_payloads(&[b"a".as_slice(), b"b", b"c"]);
        let b = MerkleTree::from_payloads(&[b"a".as_slice(), b"b", b"c"]);
        let c = MerkleTree::from_payloads(&[b"a".as_slice(), b"b", b"d"]);
        assert_eq!(a.root(), b.root());
        assert_ne!(a.root(), c.root());
        assert_eq!(a.len(), 3);
        assert_eq!(a.height(), 2);
    }

    #[test]
    fn auth_paths_verify_for_every_leaf() {
        let payloads: Vec<Vec<u8>> = (0..13u8).map(|i| vec![i; 4]).collect();
        let tree = MerkleTree::from_payloads(&payloads);
        for (i, p) in payloads.iter().enumerate() {
            let path = tree.auth_path(i).unwrap();
            verify_path(&tree.root(), &leaf_hash(p), &path).unwrap();
        }
        assert!(tree.auth_path(13).is_none());
    }

    #[test]
    fn wrong_leaf_or_index_fails() {
        let tree = MerkleTree::from_payloads(&[b"x".as_slice(), b"y", b"z", b"w"]);
        let path = tree.auth_path(1).unwrap();
        assert!(verify_path(&tree.root(), &leaf_hash(b"not-y"), &path).is_err());
        let mut moved = tree.auth_path(1).unwrap();
        moved.index = 2;
        assert!(verify_path(&tree.root(), &leaf_hash(b"y"), &moved).is_err());
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_payloads(&[b"only".as_slice()]);
        assert_eq!(tree.height(), 0);
        let path = tree.auth_path(0).unwrap();
        assert!(path.siblings.is_empty());
        verify_path(&tree.root(), &leaf_hash(b"only"), &path).unwrap();
    }

    #[test]
    fn leaf_and_node_domains_are_separated() {
        // A leaf over 64 bytes must not equal a node over two 32-byte digests.
        let l = Digest::ZERO;
        let r = Digest::ZERO;
        let mut payload = Vec::new();
        payload.extend_from_slice(l.as_bytes());
        payload.extend_from_slice(r.as_bytes());
        assert_ne!(leaf_hash(&payload), node_hash(&l, &r));
    }

    #[test]
    fn mss_sign_verify_until_exhaustion() {
        let mut signer = MerkleSigner::generate(&stream(b"mss"), 2);
        let root = signer.public_root();
        assert_eq!(signer.capacity(), 4);
        for i in 0..4 {
            let msg = format!("message {i}");
            let sig = signer.sign(msg.as_bytes()).unwrap();
            assert_eq!(sig.leaf_index, i);
            verify_merkle(&root, msg.as_bytes(), &sig).unwrap();
            // Cross-message verification must fail.
            assert!(verify_merkle(&root, b"other", &sig).is_err());
        }
        assert_eq!(signer.remaining(), 0);
        assert_eq!(
            signer.sign(b"one too many"),
            Err(CryptoError::IdentityExhausted { capacity: 4 })
        );
    }

    #[test]
    fn mss_rejects_cross_identity_signatures() {
        let mut alice = MerkleSigner::generate(&stream(b"alice"), 2);
        let bob = MerkleSigner::generate(&stream(b"bob"), 2);
        let sig = alice.sign(b"msg").unwrap();
        assert!(verify_merkle(&bob.public_root(), b"msg", &sig).is_err());
    }

    #[test]
    fn mss_signature_tamper_rejected() {
        let mut signer = MerkleSigner::generate(&stream(b"tamper"), 2);
        let root = signer.public_root();
        let mut sig = signer.sign(b"msg").unwrap();
        sig.leaf_pk = OneTimePublicKey(crate::sha256::sha256(b"evil"));
        assert!(verify_merkle(&root, b"msg", &sig).is_err());

        let mut sig2 = signer.sign(b"msg").unwrap();
        sig2.path.siblings[0] = Digest::ZERO;
        assert!(verify_merkle(&root, b"msg", &sig2).is_err());

        let mut sig3 = signer.sign(b"msg").unwrap();
        sig3.leaf_index = sig3.leaf_index.wrapping_add(1);
        assert!(verify_merkle(&root, b"msg", &sig3).is_err());
    }

    #[test]
    fn mss_is_deterministic_per_seed() {
        let a = MerkleSigner::generate(&stream(b"same"), 3);
        let b = MerkleSigner::generate(&stream(b"same"), 3);
        assert_eq!(a.public_root(), b.public_root());
        let c = MerkleSigner::generate(&stream(b"diff"), 3);
        assert_ne!(a.public_root(), c.public_root());
    }

    #[test]
    fn signature_bytes_round_trip() {
        let mut signer = MerkleSigner::generate(&stream(b"codec"), 3);
        let root = signer.public_root();
        let sig = signer.sign(b"message").unwrap();
        let bytes = sig.to_bytes();
        let back = MerkleSignature::from_bytes(&bytes).unwrap();
        assert_eq!(back, sig);
        verify_merkle(&root, b"message", &back).unwrap();
        // Truncation and trailing garbage both fail.
        assert!(MerkleSignature::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(MerkleSignature::from_bytes(&extended).is_err());
    }

    #[test]
    fn encoded_len_reports_path_growth() {
        let mut small = MerkleSigner::generate(&stream(b"s"), 1);
        let mut big = MerkleSigner::generate(&stream(b"b"), 4);
        let s = small.sign(b"m").unwrap();
        let g = big.sign(b"m").unwrap();
        assert!(g.encoded_len() > s.encoded_len());
        assert_eq!(g.encoded_len() - s.encoded_len(), 3 * 32);
    }
}
