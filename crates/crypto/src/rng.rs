//! Deterministic key-material stream.
//!
//! Key generation throughout the workspace must be reproducible under a
//! seed so that simulation runs and benchmarks are deterministic (see
//! DESIGN.md §4). [`DeterministicStream`] is a SHA-256 counter-mode PRG:
//! block `i` is `HMAC(seed, label || i)`. Forward secrecy and prediction
//! resistance are irrelevant here — unforgeability of the signature schemes
//! only needs the stream to be pseudorandom, which HMAC provides.

use crate::hmac::hmac_sha256;
use crate::sha256::{Digest, DIGEST_LEN};

/// A labelled, seeded deterministic byte stream.
///
/// Distinct labels under the same seed yield independent streams, which
/// lets one master seed drive every key in a scenario without correlation.
#[derive(Clone)]
pub struct DeterministicStream {
    seed: [u8; DIGEST_LEN],
    label: Vec<u8>,
    counter: u64,
    buf: [u8; DIGEST_LEN],
    buf_pos: usize,
}

impl DeterministicStream {
    /// Creates a stream from a 32-byte seed and a domain-separation label.
    pub fn new(seed: [u8; DIGEST_LEN], label: &[u8]) -> Self {
        DeterministicStream {
            seed,
            label: label.to_vec(),
            counter: 0,
            buf: [0u8; DIGEST_LEN],
            buf_pos: DIGEST_LEN, // force refill on first use
        }
    }

    /// Convenience constructor from a u64 seed (expanded through SHA-256).
    pub fn from_u64(seed: u64, label: &[u8]) -> Self {
        let d = crate::sha256::sha256(&seed.to_be_bytes());
        Self::new(d.0, label)
    }

    /// Derives a child stream with an extended label; children are
    /// independent of the parent and of each other.
    pub fn child(&self, sublabel: &[u8]) -> Self {
        let mut label = self.label.clone();
        label.push(b'/');
        label.extend_from_slice(sublabel);
        DeterministicStream::new(self.seed, &label)
    }

    fn refill(&mut self) {
        let mut msg = Vec::with_capacity(self.label.len() + 8);
        msg.extend_from_slice(&self.label);
        msg.extend_from_slice(&self.counter.to_be_bytes());
        let block = hmac_sha256(&self.seed, &msg);
        self.buf = block.0;
        self.buf_pos = 0;
        self.counter += 1;
    }

    /// Fills `out` with stream bytes.
    pub fn fill(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            if self.buf_pos == DIGEST_LEN {
                self.refill();
            }
            let take = (out.len() - written).min(DIGEST_LEN - self.buf_pos);
            out[written..written + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            written += take;
        }
    }

    /// Returns the next 32 bytes as a [`Digest`]-shaped value.
    pub fn next_digest(&mut self) -> Digest {
        let mut out = [0u8; DIGEST_LEN];
        self.fill(&mut out);
        Digest(out)
    }

    /// Returns the next 8 stream bytes as a u64.
    pub fn next_u64(&mut self) -> u64 {
        let mut out = [0u8; 8];
        self.fill(&mut out);
        u64::from_be_bytes(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_label_separated() {
        let mut a = DeterministicStream::from_u64(42, b"keys");
        let mut b = DeterministicStream::from_u64(42, b"keys");
        let mut c = DeterministicStream::from_u64(42, b"nonces");
        let (da, db, dc) = (a.next_digest(), b.next_digest(), c.next_digest());
        assert_eq!(da, db);
        assert_ne!(da, dc);
    }

    #[test]
    fn seed_separated() {
        let mut a = DeterministicStream::from_u64(1, b"x");
        let mut b = DeterministicStream::from_u64(2, b"x");
        assert_ne!(a.next_digest(), b.next_digest());
    }

    #[test]
    fn fill_is_chunking_invariant() {
        let mut whole = DeterministicStream::from_u64(7, b"s");
        let mut big = [0u8; 100];
        whole.fill(&mut big);

        let mut pieces = DeterministicStream::from_u64(7, b"s");
        let mut acc = Vec::new();
        for chunk in [1usize, 3, 32, 31, 33] {
            let mut buf = vec![0u8; chunk];
            pieces.fill(&mut buf);
            acc.extend_from_slice(&buf);
        }
        assert_eq!(&acc[..], &big[..]);
    }

    #[test]
    fn children_are_independent() {
        let parent = DeterministicStream::from_u64(9, b"root");
        let mut c1 = parent.child(b"a");
        let mut c2 = parent.child(b"b");
        let mut c1_again = parent.child(b"a");
        let x = c1.next_digest();
        assert_ne!(x, c2.next_digest());
        assert_eq!(x, c1_again.next_digest());
    }

    #[test]
    fn next_u64_draws_distinct_values() {
        let mut s = DeterministicStream::from_u64(5, b"u64");
        let vals: Vec<u64> = (0..16).map(|_| s.next_u64()).collect();
        let mut dedup = vals.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), vals.len());
    }
}
