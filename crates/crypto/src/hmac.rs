//! HMAC-SHA256 (RFC 2104) and an HKDF-expand-style key derivation helper.
//!
//! Used by the secure channel in `gridbank-net` for message authentication
//! codes and session-key derivation, and by [`crate::rng`] for deterministic
//! key-material streams.

use crate::sha256::{sha256, Digest, Sha256, DIGEST_LEN};

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the 64-byte block size are hashed first, per RFC 2104.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut key_block = [0u8; BLOCK_LEN];
    if key.len() > BLOCK_LEN {
        let kh = sha256(key);
        key_block[..DIGEST_LEN].copy_from_slice(kh.as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let mut ipad = [0u8; BLOCK_LEN];
    for (o, k) in ipad.iter_mut().zip(key_block.iter()) {
        *o = k ^ IPAD;
    }
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let mut opad = [0u8; BLOCK_LEN];
    for (o, k) in opad.iter_mut().zip(key_block.iter()) {
        *o = k ^ OPAD;
    }
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize()
}

/// Incremental HMAC, for MACing framed messages without concatenation.
pub struct HmacSha256 {
    inner: Sha256,
    outer_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Starts an HMAC computation under `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let kh = sha256(key);
            key_block[..DIGEST_LEN].copy_from_slice(kh.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut inner = Sha256::new();
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = key_block[i] ^ IPAD;
            opad[i] = key_block[i] ^ OPAD;
        }
        inner.update(&ipad);
        HmacSha256 { inner, outer_key: opad }
    }

    /// Feeds message bytes.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.inner.update(data);
        self
    }

    /// Finishes and returns the MAC.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.outer_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }
}

/// Constant-shape MAC comparison.
///
/// Compares every byte regardless of where the first mismatch occurs so the
/// comparison time does not leak the mismatch position.
pub fn mac_eq(a: &Digest, b: &Digest) -> bool {
    let mut diff = 0u8;
    for i in 0..DIGEST_LEN {
        diff |= a.0[i] ^ b.0[i];
    }
    diff == 0
}

/// HKDF-expand-style derivation: produces `out_len` bytes of key material
/// from a pseudorandom key and a context/info string.
///
/// `out = T(1) || T(2) || ...` with `T(i) = HMAC(prk, T(i-1) || info || i)`.
pub fn hkdf_expand(prk: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * DIGEST_LEN, "hkdf output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut prev: Option<Digest> = None;
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut mac = HmacSha256::new(prk);
        if let Some(p) = &prev {
            mac.update(p.as_bytes());
        }
        mac.update(info);
        mac.update(&[counter]);
        let t = mac.finalize();
        let take = (out_len - out.len()).min(DIGEST_LEN);
        out.extend_from_slice(&t.as_bytes()[..take]);
        prev = Some(t);
        counter = counter.wrapping_add(1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            mac.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2_jefe() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            mac.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3_fifty_dd() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            mac.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(&key, b"Test Using Larger Than Block-Size Key - Hash Key First");
        assert_eq!(
            mac.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"incremental key";
        let msg = b"part one | part two | part three";
        let oneshot = hmac_sha256(key, msg);
        let mut inc = HmacSha256::new(key);
        inc.update(b"part one | ");
        inc.update(b"part two | ");
        inc.update(b"part three");
        assert_eq!(inc.finalize(), oneshot);
    }

    #[test]
    fn mac_eq_detects_any_flip() {
        let key = b"k";
        let m = hmac_sha256(key, b"msg");
        assert!(mac_eq(&m, &m.clone()));
        for byte in 0..DIGEST_LEN {
            let mut bad = m;
            bad.0[byte] ^= 1;
            assert!(!mac_eq(&m, &bad), "flip at byte {byte} not detected");
        }
    }

    #[test]
    fn hkdf_lengths_and_determinism() {
        let prk = hmac_sha256(b"salt", b"ikm");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            let a = hkdf_expand(prk.as_bytes(), b"ctx", len);
            let b = hkdf_expand(prk.as_bytes(), b"ctx", len);
            assert_eq!(a.len(), len);
            assert_eq!(a, b);
        }
        // Different info strings diverge.
        let a = hkdf_expand(prk.as_bytes(), b"ctx-a", 32);
        let b = hkdf_expand(prk.as_bytes(), b"ctx-b", 32);
        assert_ne!(a, b);
        // Prefix property: longer outputs extend shorter ones.
        let short = hkdf_expand(prk.as_bytes(), b"ctx", 16);
        let long = hkdf_expand(prk.as_bytes(), b"ctx", 48);
        assert_eq!(&long[..16], &short[..]);
    }
}
