//! FIPS 180-4 SHA-256, implemented from scratch.
//!
//! This is the single primitive the rest of the crate (HMAC, Lamport,
//! Merkle) and the PayWord hash chains in `gridbank-core` are built on.
//! The implementation is a straightforward, allocation-free translation of
//! the specification: incremental [`Sha256`] hasher plus the one-shot
//! [`sha256`] helper.

use std::fmt;

/// Length of a SHA-256 digest in bytes.
pub const DIGEST_LEN: usize = 32;

/// A 32-byte SHA-256 digest.
///
/// `Digest` is `Copy` and ordered so it can be used directly as a map key,
/// sorted, or compared in constant code. The `Display` impl renders
/// lowercase hex, which is also what [`Digest::to_hex`] returns.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// Digest of the empty message, useful as a sentinel.
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Returns the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Builds a digest from raw bytes.
    #[inline]
    pub fn from_bytes(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Parses a digest from a 64-character lowercase/uppercase hex string.
    pub fn from_hex(hex: &str) -> Option<Self> {
        if hex.len() != DIGEST_LEN * 2 {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        let bytes = hex.as_bytes();
        for (i, chunk) in bytes.chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Lowercase hex rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in &self.0 {
            use fmt::Write;
            let _ = write!(s, "{b:02x}");
        }
        s
    }

    /// A short 8-hex-character prefix, handy for log lines and IDs.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }

    /// XOR of two digests; used by tests and by keyed-stream whitening.
    pub fn xor(&self, other: &Digest) -> Digest {
        let mut out = [0u8; DIGEST_LEN];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(other.0.iter())) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.short())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(b: [u8; DIGEST_LEN]) -> Self {
        Digest(b)
    }
}

/// SHA-256 round constants (first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes).
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// ```
/// use gridbank_crypto::sha256::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0u8; 64], buf_len: 0, total_len: 0 }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut input = data;
        // Fill a partially filled buffer first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            } else {
                // Input fully absorbed into a still-partial buffer.
                debug_assert!(input.is_empty());
                return self;
            }
        }
        // Whole blocks straight from the input.
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
        self
    }

    /// Consumes the hasher and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros until 8 bytes remain in the block.
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 { 56 - self.buf_len } else { 120 - self.buf_len };
        // update() tracks total_len; compensate since padding is not message.
        let saved = self.total_len;
        self.update(&pad[..pad_len]);
        self.update(&bit_len.to_be_bytes());
        self.total_len = saved;
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
#[inline]
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 over the concatenation of several byte slices without copying
/// them into a single buffer first.
pub fn sha256_concat(parts: &[&[u8]]) -> Digest {
    let mut h = Sha256::new();
    for p in parts {
        h.update(p);
    }
    h.finalize()
}

/// Hashes a digest `n` times: `H^n(x)`. The backbone of PayWord chains.
pub fn iterate_hash(mut d: Digest, n: usize) -> Digest {
    for _ in 0..n {
        d = sha256(&d.0);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST / well-known vectors.
    #[test]
    fn empty_message() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot_at_all_split_points() {
        let msg: Vec<u8> = (0u8..=255).cycle().take(300).collect();
        let want = sha256(&msg);
        for split in 0..msg.len() {
            let mut h = Sha256::new();
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            assert_eq!(h.finalize(), want, "split at {split}");
        }
    }

    #[test]
    fn concat_helper_matches() {
        assert_eq!(sha256_concat(&[b"ab", b"c"]), sha256(b"abc"));
        assert_eq!(sha256_concat(&[]), sha256(b""));
    }

    #[test]
    fn length_boundary_paddings() {
        // Lengths around the 55/56/64-byte padding boundaries.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 121, 128] {
            let msg = vec![0xABu8; len];
            let mut h = Sha256::new();
            for b in &msg {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha256(&msg), "len {len}");
        }
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
        assert_eq!(Digest::from_hex(&"zz".repeat(32)), None);
    }

    #[test]
    fn iterate_hash_composes() {
        let x = sha256(b"seed");
        let once_then_twice = iterate_hash(iterate_hash(x, 1), 2);
        assert_eq!(once_then_twice, iterate_hash(x, 3));
        assert_eq!(iterate_hash(x, 0), x);
    }

    #[test]
    fn xor_properties() {
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert_eq!(a.xor(&b), b.xor(&a));
        assert_eq!(a.xor(&a), Digest::ZERO);
        assert_eq!(a.xor(&Digest::ZERO), a);
    }

    #[test]
    fn digest_ordering_is_bytewise() {
        let mut v = [sha256(b"1"), sha256(b"2"), sha256(b"3")];
        v.sort();
        for w in v.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
    }
}
