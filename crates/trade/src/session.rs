//! Auction sessions: the typed driver a broker and a provider speak to
//! run one auction from announcement to settlement.
//!
//! The state machines in [`crate::auction`] are pure — no identity of
//! the seller, no notion of *which* auction a bid belongs to, and no
//! settlement material. A live market needs all three: the broker
//! mediates between consumer bidders and a provider's announcement, and
//! the winner's charge must settle through the bank **exactly once**
//! even when the settling RPC is retried. [`AuctionSession`] wraps one
//! announced auction in that protocol envelope:
//!
//! * an [`Announcement`] carries the auction id, the selling provider,
//!   and the [`AuctionKind`] with its economic parameters;
//! * `submit_bid` / `tick` / `take` / `close` drive the underlying
//!   mechanism, and a closed session rejects **every** further call
//!   with [`TradeError::ProtocolViolation`] — late bids cannot reopen
//!   a settled market;
//! * closing yields a [`Settlement`] that pairs the [`Award`] with a
//!   stable idempotency key derived from the auction id, so the
//!   broker's settling transfer can be retried over the wire under the
//!   same key and deduplicate bank-side.
//!
//! ## Idempotency keyspace
//!
//! Settlement keys live in the reserved band [`AUCTION_KEYSPACE`]
//! (high 16 bits `0xA11C`). The federation layer stamps its keys as
//! `branch << 48 | txid`, so auction settlements collide with
//! inter-branch credits only in a federation that numbers a branch
//! `0xA11C` (41 244) — branches are small ordinals in practice, and the
//! bank's dedup cache keys on `(certificate, key)` besides.

use gridbank_rur::Credits;

use crate::auction::{
    first_price_sealed, vickrey_sealed, Award, DutchAuction, EnglishAuction, SealedBid,
};
use crate::error::TradeError;

/// High-16-bit tag reserving the auction-settlement idempotency band.
pub const AUCTION_KEYSPACE: u64 = 0xA11C << 48;

/// Stable idempotency key for settling the award of `auction_id`.
///
/// Pure function of the auction id: every retry of the settling
/// transfer — across reconnects, across process restarts of the broker
/// — derives the same key, so the bank applies the charge exactly once.
pub fn settlement_key(auction_id: u64) -> u64 {
    AUCTION_KEYSPACE | (auction_id & 0x0000_FFFF_FFFF_FFFF)
}

/// Which mechanism an announcement opens, with its economic parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuctionKind {
    /// Open ascending-bid: `reserve` to start, `increment` minimum raise.
    English {
        /// Reserve price; bidding starts here.
        reserve: Credits,
        /// Minimum raise over the standing bid.
        increment: Credits,
    },
    /// Open descending-price: `start` ticking down by `decrement`,
    /// dead below `floor`.
    Dutch {
        /// Opening asking price.
        start: Credits,
        /// Price drop per tick.
        decrement: Credits,
        /// The auction dies when the price would fall below this.
        floor: Credits,
    },
    /// Sealed bids, winner pays their own bid.
    FirstPriceSealed {
        /// Minimum qualifying bid.
        reserve: Credits,
    },
    /// Sealed bids, winner pays the second-highest qualifying bid.
    Vickrey {
        /// Minimum qualifying bid; also the price for a lone bidder.
        reserve: Credits,
    },
}

/// A provider's offer to sell capacity by auction.
#[derive(Clone, Debug)]
pub struct Announcement {
    /// Unique auction id; the settlement idempotency key derives from it.
    pub auction_id: u64,
    /// Selling provider's certificate name.
    pub seller: String,
    /// What is being sold (free-form: "4 cores × 1 h" and the like).
    pub item: String,
    /// Mechanism and parameters.
    pub kind: AuctionKind,
}

/// The terminal outcome of a session: who pays whom, under which key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Settlement {
    /// The auction this settles.
    pub auction_id: u64,
    /// Selling provider (payee).
    pub seller: String,
    /// Winner and price (payer and amount).
    pub award: Award,
    /// Stable idempotency key for the settling transfer.
    pub idem_key: u64,
}

enum SessionState {
    English(EnglishAuction),
    Dutch(DutchAuction),
    Sealed { reserve: Credits, second_price: bool, bids: Vec<SealedBid> },
    Closed,
}

/// One announced auction, driven from open to settlement.
pub struct AuctionSession {
    announcement: Announcement,
    state: SessionState,
}

impl AuctionSession {
    /// Opens the session a provider's announcement describes.
    pub fn open(announcement: Announcement) -> Self {
        let state = match announcement.kind {
            AuctionKind::English { reserve, increment } => {
                SessionState::English(EnglishAuction::open(reserve, increment))
            }
            AuctionKind::Dutch { start, decrement, floor } => {
                SessionState::Dutch(DutchAuction::open(start, decrement, floor))
            }
            AuctionKind::FirstPriceSealed { reserve } => {
                SessionState::Sealed { reserve, second_price: false, bids: Vec::new() }
            }
            AuctionKind::Vickrey { reserve } => {
                SessionState::Sealed { reserve, second_price: true, bids: Vec::new() }
            }
        };
        AuctionSession { announcement, state }
    }

    /// The announcement this session runs.
    pub fn announcement(&self) -> &Announcement {
        &self.announcement
    }

    /// Whether the session has reached its terminal state.
    pub fn is_closed(&self) -> bool {
        matches!(self.state, SessionState::Closed)
    }

    /// The price a bidder currently faces, when the mechanism has one:
    /// the Dutch asking price, or the English standing bid (falling back
    /// to the reserve before any bid). Sealed mechanisms reveal nothing.
    pub fn current_price(&self) -> Option<Credits> {
        match &self.state {
            SessionState::Dutch(a) => Some(a.price),
            SessionState::English(a) => Some(a.standing().map(|(_, p)| p).unwrap_or(a.reserve)),
            _ => None,
        }
    }

    /// Submits a bid. English: must beat the floor, becomes standing.
    /// Sealed (both kinds): recorded for resolution at close. Dutch:
    /// rejected — Dutch bidders call [`AuctionSession::take`].
    pub fn submit_bid(&mut self, bidder: &str, amount: Credits) -> Result<(), TradeError> {
        match &mut self.state {
            SessionState::English(a) => a.bid(bidder, amount),
            SessionState::Sealed { bids, .. } => {
                bids.push(SealedBid { bidder: bidder.to_string(), amount });
                Ok(())
            }
            SessionState::Dutch(_) => Err(TradeError::ProtocolViolation(
                "dutch auctions take at the asking price; submit_bid has no meaning".into(),
            )),
            SessionState::Closed => Err(TradeError::ProtocolViolation("auction closed".into())),
        }
    }

    /// Advances a Dutch session one price tick. A breach of the floor
    /// closes the session dead ([`TradeError::NoMatch`]).
    pub fn tick(&mut self) -> Result<Credits, TradeError> {
        match &mut self.state {
            SessionState::Dutch(a) => match a.tick() {
                Ok(price) => Ok(price),
                Err(e @ TradeError::NoMatch(_)) => {
                    self.state = SessionState::Closed;
                    Err(e)
                }
                Err(e) => Err(e),
            },
            SessionState::Closed => Err(TradeError::ProtocolViolation("auction closed".into())),
            _ => Err(TradeError::ProtocolViolation("only dutch auctions tick".into())),
        }
    }

    /// First taker wins a Dutch session at the current asking price and
    /// the session settles immediately.
    pub fn take(&mut self, bidder: &str) -> Result<Settlement, TradeError> {
        match &mut self.state {
            SessionState::Dutch(a) => {
                let award = a.take(bidder)?;
                self.state = SessionState::Closed;
                Ok(self.settlement(award))
            }
            SessionState::Closed => Err(TradeError::ProtocolViolation("auction closed".into())),
            _ => Err(TradeError::ProtocolViolation("only dutch auctions are taken".into())),
        }
    }

    /// Closes the session and resolves the winner. English: standing
    /// bidder at their bid. Sealed: first-price or Vickrey resolution
    /// over the collected bids. Dutch: a close without a taker is dead
    /// stock ([`TradeError::NoMatch`]). Either way the session is
    /// terminal afterwards — every further call is a protocol violation.
    pub fn close(&mut self) -> Result<Settlement, TradeError> {
        let state = std::mem::replace(&mut self.state, SessionState::Closed);
        let award = match state {
            SessionState::English(mut a) => a.close()?,
            SessionState::Dutch(_) => {
                return Err(TradeError::NoMatch("dutch auction closed without a taker".into()))
            }
            SessionState::Sealed { reserve, second_price, bids } => {
                if second_price {
                    vickrey_sealed(&bids, reserve)?
                } else {
                    first_price_sealed(&bids, reserve)?
                }
            }
            SessionState::Closed => {
                return Err(TradeError::ProtocolViolation("auction closed".into()))
            }
        };
        Ok(self.settlement(award))
    }

    fn settlement(&self, award: Award) -> Settlement {
        Settlement {
            auction_id: self.announcement.auction_id,
            seller: self.announcement.seller.clone(),
            award,
            idem_key: settlement_key(self.announcement.auction_id),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gd(v: i64) -> Credits {
        Credits::from_gd(v)
    }

    fn announce(kind: AuctionKind) -> Announcement {
        Announcement {
            auction_id: 42,
            seller: "/O=Grid/OU=GSP/CN=alpha".into(),
            item: "4 cores × 1 h".into(),
            kind,
        }
    }

    #[test]
    fn english_session_settles_standing_bidder() {
        let mut s = AuctionSession::open(announce(AuctionKind::English {
            reserve: gd(2),
            increment: gd(1),
        }));
        assert_eq!(s.current_price(), Some(gd(2)));
        s.submit_bid("alice", gd(2)).unwrap();
        s.submit_bid("bob", gd(4)).unwrap();
        assert_eq!(s.current_price(), Some(gd(4)));
        let settlement = s.close().unwrap();
        assert_eq!(settlement.award, Award { winner: "bob".into(), price: gd(4) });
        assert_eq!(settlement.auction_id, 42);
        assert_eq!(settlement.idem_key, settlement_key(42));
        assert!(s.is_closed());
        assert!(matches!(s.submit_bid("late", gd(99)), Err(TradeError::ProtocolViolation(_))));
        assert!(matches!(s.close(), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn dutch_session_takes_at_current_price() {
        let mut s = AuctionSession::open(announce(AuctionKind::Dutch {
            start: gd(10),
            decrement: gd(2),
            floor: gd(4),
        }));
        assert!(matches!(s.submit_bid("x", gd(9)), Err(TradeError::ProtocolViolation(_))));
        assert_eq!(s.tick().unwrap(), gd(8));
        let settlement = s.take("carol").unwrap();
        assert_eq!(settlement.award, Award { winner: "carol".into(), price: gd(8) });
        assert!(s.is_closed());
        assert!(matches!(s.tick(), Err(TradeError::ProtocolViolation(_))));
        assert!(matches!(s.take("late"), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn dutch_session_dies_below_floor() {
        let mut s = AuctionSession::open(announce(AuctionKind::Dutch {
            start: gd(6),
            decrement: gd(2),
            floor: gd(4),
        }));
        assert_eq!(s.tick().unwrap(), gd(4));
        assert!(matches!(s.tick(), Err(TradeError::NoMatch(_))));
        assert!(s.is_closed());
        assert!(matches!(s.take("x"), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn vickrey_session_resolves_second_price() {
        let mut s = AuctionSession::open(announce(AuctionKind::Vickrey { reserve: gd(2) }));
        s.submit_bid("a", gd(3)).unwrap();
        s.submit_bid("b", gd(7)).unwrap();
        s.submit_bid("c", gd(5)).unwrap();
        assert_eq!(s.current_price(), None); // sealed: nothing leaks
        let settlement = s.close().unwrap();
        assert_eq!(settlement.award, Award { winner: "b".into(), price: gd(5) });
    }

    #[test]
    fn first_price_session_resolves_highest_bid() {
        let mut s =
            AuctionSession::open(announce(AuctionKind::FirstPriceSealed { reserve: gd(2) }));
        s.submit_bid("a", gd(3)).unwrap();
        s.submit_bid("b", gd(7)).unwrap();
        let settlement = s.close().unwrap();
        assert_eq!(settlement.award, Award { winner: "b".into(), price: gd(7) });
        assert!(matches!(s.submit_bid("late", gd(9)), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn settlement_keys_are_stable_and_banded() {
        assert_eq!(settlement_key(7), settlement_key(7));
        assert_ne!(settlement_key(7), settlement_key(8));
        assert_eq!(settlement_key(7) >> 48, 0xA11C);
        // Ids wider than 48 bits stay in the band rather than escaping it.
        assert_eq!(settlement_key(u64::MAX) >> 48, 0xA11C);
    }
}
