//! Bilateral negotiation protocols.
//!
//! "The GRB interacts with GSP's Grid Trading Service … to establish the
//! cost of services" (§2); "Negotiation protocols are already defined in
//! \[2,4\]" (§6). Three GRACE protocols are implemented:
//!
//! * [`PostedPrice`] — commodity market: take-it-or-leave-it quote.
//! * [`BargainingSession`] — alternate-offers bargaining with bounded
//!   rounds; each side concedes toward its reservation price.
//! * [`Tender`] — contract-net: the consumer announces a job, providers
//!   bid, cheapest conforming bid wins.
//!
//! Prices negotiated here are the *scalar* total-time-price (G$/CPU-hour
//! equivalent); the agreed multiplier is then applied to the provider's
//! base [`ServiceRates`] so every chargeable item scales consistently.

use gridbank_rur::Credits;

use crate::error::TradeError;
use crate::rates::{RateQuote, ServiceRates};

/// Posted-price (commodity market) sale.
#[derive(Clone, Debug)]
pub struct PostedPrice {
    /// The provider's standing quote.
    pub quote: RateQuote,
}

impl PostedPrice {
    /// The consumer accepts iff the quote is fresh and the headline
    /// per-hour price fits its limit.
    pub fn accept(
        &self,
        max_price_per_hour: Credits,
        now: u64,
    ) -> Result<ServiceRates, TradeError> {
        self.quote.check_valid(now)?;
        let headline = self.quote.rates.total_time_price_per_hour();
        if headline > max_price_per_hour {
            return Err(TradeError::Rejected(format!(
                "posted price {headline} exceeds limit {max_price_per_hour}"
            )));
        }
        Ok(self.quote.rates.clone())
    }
}

/// Who moves next in a bargaining session.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Turn {
    /// Consumer (buyer) to respond/offer.
    Consumer,
    /// Provider (seller) to respond/offer.
    Provider,
}

/// Outcome of a bargaining step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BargainOutcome {
    /// Agreement at this per-hour price.
    Agreed(Credits),
    /// Session continues; the given side must move next.
    Continue(Turn),
    /// Session failed (rounds exhausted or a party walked away).
    Failed(String),
}

/// Alternate-offers bargaining over a scalar per-hour price.
///
/// The provider opens with `seller_start`; the consumer counters from
/// `buyer_start`. Each round both sides concede `concession_pct`% of the
/// remaining gap toward their reservation values. A side accepts as soon
/// as the other's offer is within its reservation.
#[derive(Clone, Debug)]
pub struct BargainingSession {
    /// Seller's current ask.
    pub ask: Credits,
    /// Buyer's current bid.
    pub bid: Credits,
    /// Seller will not go below this.
    pub seller_reserve: Credits,
    /// Buyer will not go above this.
    pub buyer_limit: Credits,
    /// Percent of the gap conceded per round, 1..=100.
    pub concession_pct: u32,
    /// Rounds remaining before failure.
    pub rounds_left: u32,
    turn: Turn,
    done: bool,
}

impl BargainingSession {
    /// Opens a session with the seller asking first.
    pub fn open(
        seller_start: Credits,
        seller_reserve: Credits,
        buyer_start: Credits,
        buyer_limit: Credits,
        concession_pct: u32,
        max_rounds: u32,
    ) -> Result<Self, TradeError> {
        if concession_pct == 0 || concession_pct > 100 {
            return Err(TradeError::ProtocolViolation(format!(
                "concession {concession_pct}% out of range"
            )));
        }
        if seller_reserve > seller_start || buyer_start > buyer_limit {
            return Err(TradeError::ProtocolViolation(
                "start prices must bracket reservations".into(),
            ));
        }
        Ok(BargainingSession {
            ask: seller_start,
            bid: buyer_start,
            seller_reserve,
            buyer_limit,
            concession_pct,
            rounds_left: max_rounds,
            turn: Turn::Consumer,
            done: false,
        })
    }

    /// Runs one step of the protocol. Alternates turns internally; callers
    /// loop until [`BargainOutcome::Agreed`] or [`BargainOutcome::Failed`].
    pub fn step(&mut self) -> Result<BargainOutcome, TradeError> {
        if self.done {
            return Err(TradeError::ProtocolViolation("session already closed".into()));
        }
        if self.rounds_left == 0 {
            self.done = true;
            return Ok(BargainOutcome::Failed("rounds exhausted".into()));
        }
        match self.turn {
            Turn::Consumer => {
                // Buyer accepts a sufficiently low ask.
                if self.ask <= self.buyer_limit {
                    self.done = true;
                    return Ok(BargainOutcome::Agreed(self.ask));
                }
                // Otherwise concede: move bid toward the limit.
                let gap = self.buyer_limit.checked_sub(self.bid).map_err(num)?;
                let step = concession_step(gap, self.concession_pct)?;
                self.bid = self.bid.checked_add(step).map_err(num)?;
                self.turn = Turn::Provider;
                Ok(BargainOutcome::Continue(Turn::Provider))
            }
            Turn::Provider => {
                // Seller accepts a sufficiently high bid.
                if self.bid >= self.seller_reserve {
                    self.done = true;
                    return Ok(BargainOutcome::Agreed(self.bid));
                }
                let gap = self.ask.checked_sub(self.seller_reserve).map_err(num)?;
                let step = concession_step(gap, self.concession_pct)?;
                self.ask = self.ask.checked_sub(step).map_err(num)?;
                self.rounds_left -= 1;
                self.turn = Turn::Consumer;
                Ok(BargainOutcome::Continue(Turn::Consumer))
            }
        }
    }

    /// Drives the session to completion.
    pub fn run_to_end(&mut self) -> Result<BargainOutcome, TradeError> {
        loop {
            match self.step()? {
                BargainOutcome::Continue(_) => continue,
                outcome => return Ok(outcome),
            }
        }
    }
}

fn num(e: gridbank_rur::RurError) -> TradeError {
    TradeError::Numeric(e.to_string())
}

/// `concession_pct`% of `gap`, but never less than 1 µG$ while a gap
/// remains: integer truncation would otherwise stall both parties just
/// short of their reservations (e.g. a degenerate zone where the
/// seller's reserve equals the buyer's limit) and exhaust the rounds
/// even though an agreement exists.
fn concession_step(gap: Credits, concession_pct: u32) -> Result<Credits, TradeError> {
    let step = gap.mul_ratio(concession_pct as u64, 100).map_err(num)?;
    if step == Credits::ZERO && gap > Credits::ZERO {
        return Ok(Credits::from_micro(1));
    }
    Ok(step)
}

/// One bid in a tender round.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bid {
    /// Bidding provider's certificate name.
    pub provider: String,
    /// Offered rates.
    pub rates: ServiceRates,
}

/// Contract-net tendering: announce, collect bids, award cheapest.
#[derive(Clone, Debug, Default)]
pub struct Tender {
    bids: Vec<Bid>,
    closed: bool,
}

impl Tender {
    /// Opens a tender.
    pub fn announce() -> Self {
        Tender::default()
    }

    /// A provider submits a bid. Rejected after close.
    pub fn submit(&mut self, bid: Bid) -> Result<(), TradeError> {
        if self.closed {
            return Err(TradeError::ProtocolViolation("tender already closed".into()));
        }
        self.bids.push(bid);
        Ok(())
    }

    /// Number of bids so far.
    pub fn bid_count(&self) -> usize {
        self.bids.len()
    }

    /// Closes the tender and awards the bid with the lowest headline
    /// per-hour price; ties go to the earliest bidder (submission order).
    pub fn award(&mut self) -> Result<Bid, TradeError> {
        self.closed = true;
        self.bids
            .iter()
            .min_by_key(|b| b.rates.total_time_price_per_hour())
            .cloned()
            .ok_or_else(|| TradeError::NoMatch("no bids submitted".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_rur::record::ChargeableItem;

    fn quote(price_gd: i64, valid_until: u64) -> RateQuote {
        RateQuote {
            provider: "/CN=gsp".into(),
            rates: ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(price_gd)),
            valid_until,
            quote_id: 1,
        }
    }

    #[test]
    fn posted_price_accept_and_reject() {
        let p = PostedPrice { quote: quote(2, 100) };
        let rates = p.accept(Credits::from_gd(3), 50).unwrap();
        assert_eq!(rates.price(ChargeableItem::Cpu), Some(Credits::from_gd(2)));
        assert!(matches!(p.accept(Credits::from_gd(1), 50), Err(TradeError::Rejected(_))));
        assert!(matches!(p.accept(Credits::from_gd(3), 100), Err(TradeError::QuoteExpired { .. })));
    }

    #[test]
    fn bargaining_converges_when_zones_overlap() {
        // Seller: ask 10, reserve 4. Buyer: bid 2, limit 6. ZOPA = [4,6].
        let mut s = BargainingSession::open(
            Credits::from_gd(10),
            Credits::from_gd(4),
            Credits::from_gd(2),
            Credits::from_gd(6),
            25,
            50,
        )
        .unwrap();
        match s.run_to_end().unwrap() {
            BargainOutcome::Agreed(p) => {
                assert!(p >= Credits::from_gd(4) && p <= Credits::from_gd(6), "price {p}");
            }
            other => panic!("expected agreement, got {other:?}"),
        }
    }

    #[test]
    fn bargaining_fails_without_overlap() {
        // Seller reserve 8 > buyer limit 5: no zone of agreement.
        let mut s = BargainingSession::open(
            Credits::from_gd(10),
            Credits::from_gd(8),
            Credits::from_gd(1),
            Credits::from_gd(5),
            20,
            10,
        )
        .unwrap();
        assert!(matches!(s.run_to_end().unwrap(), BargainOutcome::Failed(_)));
        // Stepping a closed session is a protocol violation.
        assert!(matches!(s.step(), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn bargaining_immediate_accept() {
        // Ask already within buyer's limit.
        let mut s = BargainingSession::open(
            Credits::from_gd(3),
            Credits::from_gd(2),
            Credits::from_gd(1),
            Credits::from_gd(5),
            10,
            10,
        )
        .unwrap();
        assert_eq!(s.step().unwrap(), BargainOutcome::Agreed(Credits::from_gd(3)));
    }

    #[test]
    fn bargaining_validates_parameters() {
        let c = Credits::from_gd(1);
        assert!(BargainingSession::open(c, c, c, c, 0, 5).is_err());
        assert!(BargainingSession::open(c, c, c, c, 101, 5).is_err());
        // Reserve above start.
        assert!(
            BargainingSession::open(Credits::from_gd(1), Credits::from_gd(2), c, c, 10, 5).is_err()
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// When a zone of possible agreement exists (seller reserve ≤
            /// buyer limit) and rounds are generous, bargaining reaches an
            /// agreement inside the zone; when no zone exists it fails.
            #[test]
            fn bargaining_terminates_correctly(
                seller_start in 10i64..100,
                seller_reserve in 1i64..100,
                buyer_start in 0i64..50,
                buyer_limit in 1i64..100,
                concession in 10u32..=60,
            ) {
                prop_assume!(seller_reserve <= seller_start);
                prop_assume!(buyer_start <= buyer_limit);
                let mut s = BargainingSession::open(
                    Credits::from_gd(seller_start),
                    Credits::from_gd(seller_reserve),
                    Credits::from_gd(buyer_start),
                    Credits::from_gd(buyer_limit),
                    concession,
                    400,
                ).unwrap();
                match s.run_to_end().unwrap() {
                    BargainOutcome::Agreed(price) => {
                        prop_assert!(seller_reserve <= buyer_limit,
                            "agreement without a zone: {price}");
                        // The agreed price sits inside the zone of
                        // possible agreement — acceptable to both.
                        prop_assert!(price >= Credits::from_gd(seller_reserve), "{price}");
                        prop_assert!(price <= Credits::from_gd(buyer_limit), "{price}");
                    }
                    BargainOutcome::Failed(_) => {
                        prop_assert!(seller_reserve > buyer_limit,
                            "failed despite a zone of agreement");
                    }
                    BargainOutcome::Continue(_) => prop_assert!(false, "run_to_end returned Continue"),
                }
            }
        }
    }

    #[test]
    fn tender_awards_cheapest() {
        let mut t = Tender::announce();
        for (name, price) in [("a", 5), ("b", 2), ("c", 4)] {
            t.submit(Bid {
                provider: format!("/CN={name}"),
                rates: ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(price)),
            })
            .unwrap();
        }
        assert_eq!(t.bid_count(), 3);
        let winner = t.award().unwrap();
        assert_eq!(winner.provider, "/CN=b");
        // Closed tender rejects further bids.
        assert!(matches!(
            t.submit(Bid { provider: "late".into(), rates: ServiceRates::new() }),
            Err(TradeError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn tender_tie_goes_to_first_bidder() {
        let mut t = Tender::announce();
        for name in ["first", "second"] {
            t.submit(Bid {
                provider: name.into(),
                rates: ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(3)),
            })
            .unwrap();
        }
        assert_eq!(t.award().unwrap().provider, "first");
    }

    #[test]
    fn empty_tender_has_no_match() {
        let mut t = Tender::announce();
        assert!(matches!(t.award(), Err(TradeError::NoMatch(_))));
    }
}
