//! # gridbank-trade
//!
//! The trading substrate of the GRACE framework that GridBank plugs into:
//! the **Grid Trade Server** (GTS) each provider runs, the **Grid Market
//! Directory** (GMD) where providers advertise, and the negotiation
//! protocols brokers use to establish service cost (paper §1, §2.2; the
//! economic models come from the cited GRACE papers \[2,4\]).
//!
//! * [`rates`] — the service-rates record: a price per chargeable item,
//!   the record the paper requires to *conform* to the RUR ("For every
//!   chargeable item in the rates record there must be a corresponding
//!   item in the RUR"), plus quote validity windows.
//! * [`pricing`] — provider-side pricing policies: flat posted prices and
//!   supply/demand-responsive pricing ("when there is less demand for
//!   resources, the price is lowered; when there is high demand, the
//!   price is raised").
//! * [`negotiation`] — bilateral protocols: posted-price (commodity
//!   market), alternate-offers bargaining, and tender/contract-net.
//! * [`auction`] — one-sided auctions (English, Dutch, first-price
//!   sealed-bid, Vickrey) and the continuous double auction, the GRACE
//!   economic-model menu.
//! * [`session`] — the auction-session driver: one announced auction
//!   from open to a [`session::Settlement`] carrying the stable
//!   idempotency key its bank settlement retries under.
//! * [`directory`] — the Grid Market Directory: provider advertisements
//!   with attribute queries.

pub mod auction;
pub mod directory;
pub mod error;
pub mod negotiation;
pub mod pricing;
pub mod rates;
pub mod session;

pub use directory::{MarketDirectory, ProviderAd, Query};
pub use error::TradeError;
pub use negotiation::{BargainingSession, PostedPrice, Tender};
pub use pricing::{FlatPricing, PricingPolicy, SupplyDemandPricing};
pub use rates::{RateQuote, ServiceRates};
pub use session::{Announcement, AuctionKind, AuctionSession, Settlement};
