//! Auction protocols from the GRACE economic-model menu \[2,4\].
//!
//! Providers may sell capacity by auction instead of posted prices or
//! bargaining. Implemented: English (open ascending), Dutch (open
//! descending), first-price sealed-bid, Vickrey (second-price sealed-bid),
//! and a clearing-price double auction for symmetric markets.
//!
//! All auctions are deterministic state machines driven by explicit calls
//! — no wall-clock — so the discrete-event simulator can schedule rounds.

use gridbank_rur::Credits;

use crate::error::TradeError;

/// A winning allocation: who pays what.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Award {
    /// Winner identity (certificate name).
    pub winner: String,
    /// Price the winner pays.
    pub price: Credits,
}

/// English (open ascending-bid) auction.
#[derive(Clone, Debug)]
pub struct EnglishAuction {
    /// Reserve price; bidding starts here.
    pub reserve: Credits,
    /// Minimum increment over the standing bid.
    pub increment: Credits,
    standing: Option<(String, Credits)>,
    closed: bool,
}

impl EnglishAuction {
    /// Opens with a reserve and a minimum raise.
    pub fn open(reserve: Credits, increment: Credits) -> Self {
        EnglishAuction { reserve, increment, standing: None, closed: false }
    }

    /// Current standing bid, if any.
    pub fn standing(&self) -> Option<(&str, Credits)> {
        self.standing.as_ref().map(|(w, p)| (w.as_str(), *p))
    }

    /// Places a bid; must beat reserve (first bid) or standing+increment.
    pub fn bid(&mut self, bidder: &str, amount: Credits) -> Result<(), TradeError> {
        if self.closed {
            return Err(TradeError::ProtocolViolation("auction closed".into()));
        }
        let floor = match &self.standing {
            None => self.reserve,
            Some((_, p)) => {
                p.checked_add(self.increment).map_err(|e| TradeError::Numeric(e.to_string()))?
            }
        };
        if amount < floor {
            return Err(TradeError::Rejected(format!("bid {amount} below required {floor}")));
        }
        self.standing = Some((bidder.to_string(), amount));
        Ok(())
    }

    /// Closes the auction; the standing bidder wins at their bid.
    pub fn close(&mut self) -> Result<Award, TradeError> {
        self.closed = true;
        self.standing
            .clone()
            .map(|(winner, price)| Award { winner, price })
            .ok_or_else(|| TradeError::NoMatch("no bids met the reserve".into()))
    }
}

/// Dutch (open descending-price) auction.
#[derive(Clone, Debug)]
pub struct DutchAuction {
    /// Current asking price.
    pub price: Credits,
    /// Price drop per tick.
    pub decrement: Credits,
    /// Auction fails if the price would fall below this.
    pub floor: Credits,
    closed: bool,
}

impl DutchAuction {
    /// Opens at `start`, ticking down by `decrement` to `floor`.
    pub fn open(start: Credits, decrement: Credits, floor: Credits) -> Self {
        DutchAuction { price: start, decrement, floor, closed: false }
    }

    /// Advances one tick; returns the new price or `NoMatch` when the
    /// floor is breached (auction dead).
    pub fn tick(&mut self) -> Result<Credits, TradeError> {
        if self.closed {
            return Err(TradeError::ProtocolViolation("auction closed".into()));
        }
        let next = self
            .price
            .checked_sub(self.decrement)
            .map_err(|e| TradeError::Numeric(e.to_string()))?;
        if next < self.floor {
            self.closed = true;
            return Err(TradeError::NoMatch("price fell below floor".into()));
        }
        self.price = next;
        Ok(self.price)
    }

    /// First taker wins at the current price.
    pub fn take(&mut self, bidder: &str) -> Result<Award, TradeError> {
        if self.closed {
            return Err(TradeError::ProtocolViolation("auction closed".into()));
        }
        self.closed = true;
        Ok(Award { winner: bidder.to_string(), price: self.price })
    }
}

/// A sealed bid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SealedBid {
    /// Bidder identity.
    pub bidder: String,
    /// Bid amount.
    pub amount: Credits,
}

/// Resolves a first-price sealed-bid auction: highest bid ≥ reserve wins
/// and pays their bid. Ties go to the earliest submission.
pub fn first_price_sealed(bids: &[SealedBid], reserve: Credits) -> Result<Award, TradeError> {
    let best = bids
        .iter()
        .filter(|b| b.amount >= reserve)
        .max_by_key(|b| b.amount)
        .ok_or_else(|| TradeError::NoMatch("no bid met the reserve".into()))?;
    Ok(Award { winner: best.bidder.clone(), price: best.amount })
}

/// Resolves a Vickrey (second-price sealed-bid) auction: highest bid wins
/// but pays the second-highest bid (or the reserve when alone).
pub fn vickrey_sealed(bids: &[SealedBid], reserve: Credits) -> Result<Award, TradeError> {
    let mut qualifying: Vec<&SealedBid> = bids.iter().filter(|b| b.amount >= reserve).collect();
    if qualifying.is_empty() {
        return Err(TradeError::NoMatch("no bid met the reserve".into()));
    }
    // Stable sort preserves submission order among equals, so the earliest
    // of tied top bids wins.
    qualifying.sort_by_key(|b| std::cmp::Reverse(b.amount));
    let winner = qualifying[0];
    let price = qualifying.get(1).map(|b| b.amount).unwrap_or(reserve);
    Ok(Award { winner: winner.bidder.clone(), price })
}

/// One side of a double-auction order book.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Order {
    /// Trader identity.
    pub trader: String,
    /// Limit price (max for buyers, min for sellers).
    pub limit: Credits,
    /// Units sought/offered.
    pub quantity: u64,
}

/// A matched trade from the double auction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trade {
    /// Buying trader.
    pub buyer: String,
    /// Selling trader.
    pub seller: String,
    /// Units exchanged.
    pub quantity: u64,
    /// Clearing price.
    pub price: Credits,
}

/// Clears a call double auction: sorts buys descending and sells
/// ascending, crosses them while `bid ≥ ask`, and prices every trade at
/// the midpoint of the marginal pair.
pub fn clear_double_auction(buys: &[Order], sells: &[Order]) -> Vec<Trade> {
    let mut buys: Vec<Order> = buys.to_vec();
    let mut sells: Vec<Order> = sells.to_vec();
    buys.sort_by_key(|b| std::cmp::Reverse(b.limit));
    sells.sort_by_key(|s| s.limit);

    let mut trades = Vec::new();
    let (mut bi, mut si) = (0usize, 0usize);
    while bi < buys.len() && si < sells.len() {
        let buy = &buys[bi];
        let sell = &sells[si];
        if buy.limit < sell.limit {
            break;
        }
        let qty = buy.quantity.min(sell.quantity);
        // Midpoint price of the crossing pair.
        let sum = buy.limit.checked_add(sell.limit).unwrap_or(Credits::MAX);
        let price = sum.mul_ratio(1, 2).unwrap_or(buy.limit);
        trades.push(Trade {
            buyer: buy.trader.clone(),
            seller: sell.trader.clone(),
            quantity: qty,
            price,
        });
        buys[bi].quantity -= qty;
        sells[si].quantity -= qty;
        if buys[bi].quantity == 0 {
            bi += 1;
        }
        if sells[si].quantity == 0 {
            si += 1;
        }
    }
    trades
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gd(v: i64) -> Credits {
        Credits::from_gd(v)
    }

    #[test]
    fn english_ascending() {
        let mut a = EnglishAuction::open(gd(2), gd(1));
        assert!(matches!(a.bid("low", gd(1)), Err(TradeError::Rejected(_))));
        a.bid("alice", gd(2)).unwrap();
        assert!(matches!(a.bid("bob", gd(2)), Err(TradeError::Rejected(_)))); // needs +1
        a.bid("bob", gd(3)).unwrap();
        a.bid("alice", gd(5)).unwrap();
        assert_eq!(a.standing().unwrap(), ("alice", gd(5)));
        let award = a.close().unwrap();
        assert_eq!(award, Award { winner: "alice".into(), price: gd(5) });
        assert!(matches!(a.bid("late", gd(10)), Err(TradeError::ProtocolViolation(_))));
    }

    #[test]
    fn english_without_bids_fails() {
        let mut a = EnglishAuction::open(gd(2), gd(1));
        assert!(matches!(a.close(), Err(TradeError::NoMatch(_))));
    }

    #[test]
    fn dutch_descending() {
        let mut a = DutchAuction::open(gd(10), gd(2), gd(4));
        assert_eq!(a.tick().unwrap(), gd(8));
        assert_eq!(a.tick().unwrap(), gd(6));
        let award = a.take("carol").unwrap();
        assert_eq!(award, Award { winner: "carol".into(), price: gd(6) });
        assert!(a.tick().is_err());
    }

    #[test]
    fn dutch_dies_at_floor() {
        let mut a = DutchAuction::open(gd(6), gd(2), gd(4));
        assert_eq!(a.tick().unwrap(), gd(4));
        assert!(matches!(a.tick(), Err(TradeError::NoMatch(_))));
        assert!(matches!(a.take("x"), Err(TradeError::ProtocolViolation(_))));
    }

    fn bids(spec: &[(&str, i64)]) -> Vec<SealedBid> {
        spec.iter().map(|(n, v)| SealedBid { bidder: n.to_string(), amount: gd(*v) }).collect()
    }

    #[test]
    fn first_price_takes_highest() {
        let b = bids(&[("a", 3), ("b", 7), ("c", 5)]);
        let award = first_price_sealed(&b, gd(2)).unwrap();
        assert_eq!(award, Award { winner: "b".into(), price: gd(7) });
        assert!(first_price_sealed(&b, gd(10)).is_err());
    }

    #[test]
    fn vickrey_pays_second_price() {
        let b = bids(&[("a", 3), ("b", 7), ("c", 5)]);
        let award = vickrey_sealed(&b, gd(2)).unwrap();
        assert_eq!(award, Award { winner: "b".into(), price: gd(5) });
        // Single qualifying bid pays the reserve.
        let solo = bids(&[("only", 9)]);
        let award = vickrey_sealed(&solo, gd(4)).unwrap();
        assert_eq!(award.price, gd(4));
        // Tie at the top: earliest wins, pays the tied price.
        let tie = bids(&[("first", 7), ("second", 7), ("c", 3)]);
        let award = vickrey_sealed(&tie, gd(1)).unwrap();
        assert_eq!(award.winner, "first");
        assert_eq!(award.price, gd(7));
    }

    #[test]
    fn vickrey_truthfulness_property() {
        // The winner's payment never depends on their own bid (as long as
        // they still win).
        let base = bids(&[("w", 10), ("x", 6), ("y", 4)]);
        let p1 = vickrey_sealed(&base, gd(1)).unwrap().price;
        let higher = bids(&[("w", 100), ("x", 6), ("y", 4)]);
        let p2 = vickrey_sealed(&higher, gd(1)).unwrap().price;
        assert_eq!(p1, p2);
    }

    #[test]
    fn double_auction_crosses_and_prices_midpoint() {
        let buys = vec![
            Order { trader: "b1".into(), limit: gd(10), quantity: 5 },
            Order { trader: "b2".into(), limit: gd(6), quantity: 5 },
        ];
        let sells = vec![
            Order { trader: "s1".into(), limit: gd(4), quantity: 4 },
            Order { trader: "s2".into(), limit: gd(8), quantity: 4 },
        ];
        let trades = clear_double_auction(&buys, &sells);
        // b1(10) × s1(4): 4 units at 7. Then b1 has 1 left × s2(8): 1 at 9.
        // b2(6) < s2(8): stop.
        assert_eq!(trades.len(), 2);
        assert_eq!(
            trades[0],
            Trade { buyer: "b1".into(), seller: "s1".into(), quantity: 4, price: gd(7) }
        );
        assert_eq!(
            trades[1],
            Trade { buyer: "b1".into(), seller: "s2".into(), quantity: 1, price: gd(9) }
        );
    }

    #[test]
    fn double_auction_no_cross() {
        let buys = vec![Order { trader: "b".into(), limit: gd(3), quantity: 1 }];
        let sells = vec![Order { trader: "s".into(), limit: gd(5), quantity: 1 }];
        assert!(clear_double_auction(&buys, &sells).is_empty());
        assert!(clear_double_auction(&[], &sells).is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_bids() -> impl Strategy<Value = Vec<SealedBid>> {
            prop::collection::vec((0usize..16, 1i64..100), 1..12).prop_map(|raw| {
                raw.into_iter()
                    .enumerate()
                    .map(|(i, (_, v))| SealedBid {
                        bidder: format!("b{i}"),
                        amount: Credits::from_gd(v),
                    })
                    .collect()
            })
        }

        proptest! {
            #[test]
            fn vickrey_never_charges_above_winning_bid(bids in arb_bids(), reserve in 0i64..120) {
                let reserve = Credits::from_gd(reserve);
                if let Ok(award) = vickrey_sealed(&bids, reserve) {
                    let winner_bid = bids.iter()
                        .filter(|b| b.bidder == award.winner)
                        .map(|b| b.amount)
                        .max()
                        .unwrap();
                    prop_assert!(award.price <= winner_bid);
                    prop_assert!(award.price >= reserve);
                    // Winner had the (weakly) highest qualifying bid.
                    let best = bids.iter().filter(|b| b.amount >= reserve)
                        .map(|b| b.amount).max().unwrap();
                    prop_assert_eq!(winner_bid, best);
                }
            }

            #[test]
            fn first_price_winner_pays_their_bid(bids in arb_bids(), reserve in 0i64..120) {
                let reserve = Credits::from_gd(reserve);
                match first_price_sealed(&bids, reserve) {
                    Ok(award) => {
                        prop_assert!(award.price >= reserve);
                        prop_assert!(bids.iter().any(|b| b.bidder == award.winner && b.amount == award.price));
                    }
                    Err(_) => {
                        prop_assert!(bids.iter().all(|b| b.amount < reserve));
                    }
                }
            }

            #[test]
            fn double_auction_trades_respect_limits(
                buys in prop::collection::vec((1i64..50, 1u64..10), 0..8),
                sells in prop::collection::vec((1i64..50, 1u64..10), 0..8),
            ) {
                let buys: Vec<Order> = buys.into_iter().enumerate()
                    .map(|(i, (l, q))| Order { trader: format!("b{i}"), limit: Credits::from_gd(l), quantity: q })
                    .collect();
                let sells: Vec<Order> = sells.into_iter().enumerate()
                    .map(|(i, (l, q))| Order { trader: format!("s{i}"), limit: Credits::from_gd(l), quantity: q })
                    .collect();
                let trades = clear_double_auction(&buys, &sells);
                let buy_limit = |t: &str| buys.iter().find(|o| o.trader == t).unwrap().limit;
                let sell_limit = |t: &str| sells.iter().find(|o| o.trader == t).unwrap().limit;
                for t in &trades {
                    // Clearing price sits inside both parties' limits.
                    prop_assert!(t.price <= buy_limit(&t.buyer));
                    prop_assert!(t.price >= sell_limit(&t.seller));
                    prop_assert!(t.quantity > 0);
                }
                // No trader exceeds their posted quantity.
                for o in &buys {
                    let bought: u64 = trades.iter().filter(|t| t.buyer == o.trader).map(|t| t.quantity).sum();
                    prop_assert!(bought <= o.quantity);
                }
                for o in &sells {
                    let sold: u64 = trades.iter().filter(|t| t.seller == o.trader).map(|t| t.quantity).sum();
                    prop_assert!(sold <= o.quantity);
                }
            }

            // English invariant: every accepted bid beats the floor in
            // force when it was placed — the reserve for the opener,
            // standing + increment after — so the eventual winner pays
            // at least the reserve, and at least one increment above the
            // bid they displaced.
            #[test]
            fn english_winner_pays_at_least_reserve_and_increment(
                offers in prop::collection::vec((0usize..6, 1i64..100), 1..20),
                reserve in 1i64..50,
                increment in 1i64..10,
            ) {
                let reserve = Credits::from_gd(reserve);
                let increment = Credits::from_gd(increment);
                let mut a = EnglishAuction::open(reserve, increment);
                let mut displaced: Option<Credits> = None;
                for (who, amount) in offers {
                    let amount = Credits::from_gd(amount);
                    let prior = a.standing().map(|(_, p)| p);
                    if a.bid(&format!("b{who}"), amount).is_ok() {
                        displaced = prior;
                    }
                }
                match a.close() {
                    Ok(award) => {
                        prop_assert!(award.price >= reserve);
                        if let Some(beaten) = displaced {
                            prop_assert!(award.price >= beaten.checked_add(increment).unwrap());
                        }
                    }
                    Err(TradeError::NoMatch(_)) => prop_assert!(a.standing().is_none()),
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            }

            // Dutch invariant: no matter when the taker strikes, the
            // clearing price never falls below the floor — the price
            // ladder stops (auction dead) before breaching it.
            #[test]
            fn dutch_never_clears_below_floor(
                start in 1i64..200,
                decrement in 1i64..20,
                floor in 0i64..100,
                ticks in 0usize..64,
            ) {
                let floor = Credits::from_gd(floor);
                let mut a = DutchAuction::open(Credits::from_gd(start), Credits::from_gd(decrement), floor);
                if a.price < floor {
                    // Misconfigured opening below the floor: the take
                    // still honors the posted price; skip the invariant.
                    return Ok(());
                }
                for _ in 0..ticks {
                    match a.tick() {
                        Ok(p) => prop_assert!(p >= floor),
                        Err(_) => break,
                    }
                }
                if let Ok(award) = a.take("t") {
                    prop_assert!(award.price >= floor);
                }
            }

            // Vickrey invariant: the price is exactly the second-highest
            // qualifying bid (the reserve for a lone qualifier) and never
            // exceeds the winning bid.
            #[test]
            fn vickrey_price_is_second_highest(bids in arb_bids(), reserve in 0i64..120) {
                let reserve = Credits::from_gd(reserve);
                if let Ok(award) = vickrey_sealed(&bids, reserve) {
                    let mut qualifying: Vec<Credits> = bids.iter()
                        .filter(|b| b.amount >= reserve)
                        .map(|b| b.amount)
                        .collect();
                    qualifying.sort_by_key(|&a| std::cmp::Reverse(a));
                    prop_assert!(award.price <= qualifying[0]);
                    match qualifying.get(1) {
                        Some(&second) => prop_assert_eq!(award.price, second),
                        None => prop_assert_eq!(award.price, reserve),
                    }
                }
            }

            // Double-auction invariant: trades exist exactly when supply
            // crosses demand — the best bid meets the best ask — and
            // every clearing price sits in the crossing band.
            #[test]
            fn double_auction_clears_iff_supply_crosses_demand(
                buys in prop::collection::vec((1i64..50, 1u64..10), 0..8),
                sells in prop::collection::vec((1i64..50, 1u64..10), 0..8),
            ) {
                let buys: Vec<Order> = buys.into_iter().enumerate()
                    .map(|(i, (l, q))| Order { trader: format!("b{i}"), limit: Credits::from_gd(l), quantity: q })
                    .collect();
                let sells: Vec<Order> = sells.into_iter().enumerate()
                    .map(|(i, (l, q))| Order { trader: format!("s{i}"), limit: Credits::from_gd(l), quantity: q })
                    .collect();
                let best_bid = buys.iter().map(|o| o.limit).max();
                let best_ask = sells.iter().map(|o| o.limit).min();
                let crosses = matches!((best_bid, best_ask), (Some(b), Some(a)) if b >= a);
                let trades = clear_double_auction(&buys, &sells);
                prop_assert_eq!(!trades.is_empty(), crosses);
                for t in &trades {
                    prop_assert!(t.price >= best_ask.unwrap());
                    prop_assert!(t.price <= best_bid.unwrap());
                }
            }

            // Terminal-state invariant across mechanisms: once an
            // auction is closed — by award, by dead stock, or by floor
            // breach — every further driver call is rejected.
            #[test]
            fn closed_auctions_reject_all_further_calls(
                bids in arb_bids(),
                late in 1i64..500,
            ) {
                let late = Credits::from_gd(late);

                let mut english = EnglishAuction::open(Credits::from_gd(1), Credits::from_gd(1));
                for b in &bids {
                    let _ = english.bid(&b.bidder, b.amount);
                }
                let _ = english.close();
                prop_assert!(matches!(english.bid("late", late), Err(TradeError::ProtocolViolation(_))));

                let mut dutch = DutchAuction::open(Credits::from_gd(10), Credits::from_gd(3), Credits::from_gd(2));
                let _ = dutch.take("winner");
                prop_assert!(matches!(dutch.tick(), Err(TradeError::ProtocolViolation(_))));
                prop_assert!(matches!(dutch.take("late"), Err(TradeError::ProtocolViolation(_))));

                let mut dead = DutchAuction::open(Credits::from_gd(3), Credits::from_gd(2), Credits::from_gd(3));
                while dead.tick().is_ok() {}
                prop_assert!(matches!(dead.take("late"), Err(TradeError::ProtocolViolation(_))));

                // Sealed mechanisms close through the session driver.
                for kind in [
                    crate::session::AuctionKind::FirstPriceSealed { reserve: Credits::from_gd(1) },
                    crate::session::AuctionKind::Vickrey { reserve: Credits::from_gd(1) },
                ] {
                    let mut s = crate::session::AuctionSession::open(crate::session::Announcement {
                        auction_id: 1,
                        seller: "gsp".into(),
                        item: "capacity".into(),
                        kind,
                    });
                    for b in &bids {
                        let _ = s.submit_bid(&b.bidder, b.amount);
                    }
                    let _ = s.close();
                    prop_assert!(s.is_closed());
                    prop_assert!(matches!(s.submit_bid("late", late), Err(TradeError::ProtocolViolation(_))));
                    prop_assert!(matches!(s.close(), Err(TradeError::ProtocolViolation(_))));
                }
            }
        }
    }

    #[test]
    fn double_auction_conserves_quantity() {
        let buys = vec![
            Order { trader: "b1".into(), limit: gd(9), quantity: 7 },
            Order { trader: "b2".into(), limit: gd(8), quantity: 3 },
        ];
        let sells = vec![
            Order { trader: "s1".into(), limit: gd(1), quantity: 2 },
            Order { trader: "s2".into(), limit: gd(2), quantity: 6 },
        ];
        let trades = clear_double_auction(&buys, &sells);
        let traded: u64 = trades.iter().map(|t| t.quantity).sum();
        assert_eq!(traded, 8); // min(10 demand, 8 supply)
    }
}
