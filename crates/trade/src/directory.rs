//! Grid Market Directory (GMD).
//!
//! "Resource providers advertise their services with the discovery
//! service" (§1); "The GRB interacts with GSP's Grid Trading Service
//! (GTS) or Grid Market Directory (GMD) to establish the cost of
//! services and then selects suitable GSP" (§2). Providers register
//! [`ProviderAd`]s; brokers run [`Query`]s over hardware attributes and
//! headline prices.

use gridbank_rur::Credits;

use crate::rates::ServiceRates;

/// A provider advertisement: identity, hardware attributes, posted rates.
///
/// The attribute set follows §4.2's list for resource comparison:
/// "processor speed, number of processors, amount of main memory and
/// secondary storage, network bandwidth".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProviderAd {
    /// Provider certificate name.
    pub provider: String,
    /// Endpoint address (for the broker to connect to the GTS).
    pub address: String,
    /// Host type label (e.g. "Linux/x86", "Cray").
    pub host_type: String,
    /// Per-core speed rating (abstract MIPS-like units).
    pub cpu_speed: u32,
    /// Core count.
    pub cpu_count: u32,
    /// Main memory, MB.
    pub memory_mb: u64,
    /// Secondary storage, MB.
    pub storage_mb: u64,
    /// Network bandwidth, Mbit/s.
    pub bandwidth_mbps: u32,
    /// Posted rates at registration time.
    pub rates: ServiceRates,
}

impl ProviderAd {
    /// Aggregate compute rating: speed × cores.
    pub fn compute_rating(&self) -> u64 {
        self.cpu_speed as u64 * self.cpu_count as u64
    }
}

/// A broker query over the directory.
#[derive(Clone, Debug, Default)]
pub struct Query {
    /// Minimum per-core speed.
    pub min_cpu_speed: Option<u32>,
    /// Minimum core count.
    pub min_cpu_count: Option<u32>,
    /// Minimum memory, MB.
    pub min_memory_mb: Option<u64>,
    /// Required host type, exact match.
    pub host_type: Option<String>,
    /// Maximum headline (time-item) price per hour.
    pub max_price_per_hour: Option<Credits>,
}

impl Query {
    /// True if the advertisement satisfies every set constraint.
    pub fn matches(&self, ad: &ProviderAd) -> bool {
        if let Some(v) = self.min_cpu_speed {
            if ad.cpu_speed < v {
                return false;
            }
        }
        if let Some(v) = self.min_cpu_count {
            if ad.cpu_count < v {
                return false;
            }
        }
        if let Some(v) = self.min_memory_mb {
            if ad.memory_mb < v {
                return false;
            }
        }
        if let Some(ht) = &self.host_type {
            if &ad.host_type != ht {
                return false;
            }
        }
        if let Some(max) = self.max_price_per_hour {
            if ad.rates.total_time_price_per_hour() > max {
                return false;
            }
        }
        true
    }
}

/// The directory itself.
#[derive(Clone, Debug, Default)]
pub struct MarketDirectory {
    ads: Vec<ProviderAd>,
}

impl MarketDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or re-registers, replacing) a provider's advertisement.
    pub fn register(&mut self, ad: ProviderAd) {
        if let Some(existing) = self.ads.iter_mut().find(|a| a.provider == ad.provider) {
            *existing = ad;
        } else {
            self.ads.push(ad);
        }
    }

    /// Removes a provider's advertisement; true if one was present.
    pub fn deregister(&mut self, provider: &str) -> bool {
        let before = self.ads.len();
        self.ads.retain(|a| a.provider != provider);
        self.ads.len() != before
    }

    /// All registered ads.
    pub fn all(&self) -> &[ProviderAd] {
        &self.ads
    }

    /// Runs a query, returning matches cheapest-first (then fastest).
    pub fn query(&self, q: &Query) -> Vec<&ProviderAd> {
        let mut hits: Vec<&ProviderAd> = self.ads.iter().filter(|ad| q.matches(ad)).collect();
        hits.sort_by(|a, b| {
            a.rates
                .total_time_price_per_hour()
                .cmp(&b.rates.total_time_price_per_hour())
                .then(b.compute_rating().cmp(&a.compute_rating()))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_rur::record::ChargeableItem;

    fn ad(name: &str, speed: u32, cores: u32, mem: u64, price_gd: i64) -> ProviderAd {
        ProviderAd {
            provider: format!("/CN={name}"),
            address: format!("{name}.grid.org"),
            host_type: "Linux/x86".into(),
            cpu_speed: speed,
            cpu_count: cores,
            memory_mb: mem,
            storage_mb: 100_000,
            bandwidth_mbps: 1000,
            rates: ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(price_gd)),
        }
    }

    #[test]
    fn register_query_deregister() {
        let mut d = MarketDirectory::new();
        d.register(ad("alpha", 1000, 16, 32_768, 3));
        d.register(ad("beta", 2000, 8, 16_384, 5));
        assert_eq!(d.all().len(), 2);

        let hits = d.query(&Query::default());
        assert_eq!(hits.len(), 2);
        // Cheapest first.
        assert_eq!(hits[0].provider, "/CN=alpha");

        assert!(d.deregister("/CN=alpha"));
        assert!(!d.deregister("/CN=alpha"));
        assert_eq!(d.all().len(), 1);
    }

    #[test]
    fn reregistration_replaces() {
        let mut d = MarketDirectory::new();
        d.register(ad("alpha", 1000, 16, 32_768, 3));
        d.register(ad("alpha", 1000, 16, 32_768, 7));
        assert_eq!(d.all().len(), 1);
        assert_eq!(d.all()[0].rates.price(ChargeableItem::Cpu), Some(Credits::from_gd(7)));
    }

    #[test]
    fn constraints_filter() {
        let mut d = MarketDirectory::new();
        d.register(ad("small", 500, 4, 4_096, 1));
        d.register(ad("big", 3000, 64, 262_144, 9));

        let q = Query { min_cpu_count: Some(32), ..Query::default() };
        let hits = d.query(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].provider, "/CN=big");

        let q = Query { max_price_per_hour: Some(Credits::from_gd(2)), ..Query::default() };
        let hits = d.query(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].provider, "/CN=small");

        let q = Query { host_type: Some("Cray".into()), ..Query::default() };
        assert!(d.query(&q).is_empty());

        let q = Query { min_memory_mb: Some(8_192), min_cpu_speed: Some(1000), ..Query::default() };
        let hits = d.query(&q);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].provider, "/CN=big");
    }

    #[test]
    fn price_tie_breaks_on_compute_rating() {
        let mut d = MarketDirectory::new();
        d.register(ad("slow", 100, 2, 1_000, 4));
        d.register(ad("fast", 4000, 32, 1_000, 4));
        let hits = d.query(&Query::default());
        assert_eq!(hits[0].provider, "/CN=fast");
    }

    #[test]
    fn compute_rating() {
        assert_eq!(ad("x", 1500, 4, 0, 1).compute_rating(), 6000);
    }
}
