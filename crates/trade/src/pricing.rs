//! Provider-side pricing policies.
//!
//! §1: "Resource owners are permitted to solicit an open market price in a
//! way that achieves maximum profit … when there is less demand for
//! resources, the price is lowered; when there is high demand, the price
//! is raised. This helps in regulating the supply-and-demand for access to
//! Grid resources." A [`PricingPolicy`] maps the provider's base rates and
//! its current utilization to the rates the GTS quotes.

use gridbank_rur::Credits;

use crate::error::TradeError;
use crate::rates::ServiceRates;

/// Utilization expressed in percent busy capacity, 0..=100.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Utilization(pub u8);

impl Utilization {
    /// Clamps to 0..=100.
    pub fn new(pct: u8) -> Self {
        Utilization(pct.min(100))
    }
}

/// A pricing policy: base rates + load → quoted rates.
pub trait PricingPolicy: Send + Sync {
    /// Produces the rates to quote at the given utilization.
    fn quote(&self, base: &ServiceRates, load: Utilization) -> Result<ServiceRates, TradeError>;
}

/// Posted-price: always quotes the base rates (commodity-market model).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlatPricing;

impl PricingPolicy for FlatPricing {
    fn quote(&self, base: &ServiceRates, _load: Utilization) -> Result<ServiceRates, TradeError> {
        Ok(base.clone())
    }
}

/// Supply/demand-responsive pricing.
///
/// The quoted price scales linearly between `floor_pct` of base (idle
/// resource) and `ceil_pct` of base (fully subscribed resource):
///
/// ```text
/// factor(load) = floor + (ceil - floor) × load/100
/// ```
///
/// Typical GRACE-style configuration: floor 50%, ceiling 300%.
#[derive(Clone, Copy, Debug)]
pub struct SupplyDemandPricing {
    /// Multiplier (percent of base) quoted at zero utilization.
    pub floor_pct: u32,
    /// Multiplier (percent of base) quoted at full utilization.
    pub ceil_pct: u32,
}

impl Default for SupplyDemandPricing {
    fn default() -> Self {
        SupplyDemandPricing { floor_pct: 50, ceil_pct: 300 }
    }
}

impl PricingPolicy for SupplyDemandPricing {
    fn quote(&self, base: &ServiceRates, load: Utilization) -> Result<ServiceRates, TradeError> {
        if self.ceil_pct < self.floor_pct {
            return Err(TradeError::Numeric("ceiling below floor".into()));
        }
        // factor in percent, interpolated at integer precision ×100 for
        // sub-percent steps: pct100 = floor*100 + (ceil-floor)*load.
        let span = (self.ceil_pct - self.floor_pct) as u64;
        let pct100 = self.floor_pct as u64 * 100 + span * load.0 as u64;
        base.scaled(pct100, 10_000)
    }
}

/// Demand-tracking price adjuster for long-running markets: nudges a
/// single scalar price toward equilibrium after each quote round, the
/// mechanism the co-operative model's "community pricing authority" (§4.1)
/// uses to keep supply and demand balanced.
#[derive(Clone, Debug)]
pub struct EquilibriumTracker {
    /// Current price level.
    pub price: Credits,
    /// Percent step applied per adjustment round.
    pub step_pct: u32,
    /// Lower bound.
    pub min_price: Credits,
    /// Upper bound.
    pub max_price: Credits,
}

impl EquilibriumTracker {
    /// Creates a tracker starting at `price`, stepping `step_pct`% per
    /// round, clamped to `[min_price, max_price]`.
    pub fn new(price: Credits, step_pct: u32, min_price: Credits, max_price: Credits) -> Self {
        EquilibriumTracker { price, step_pct, min_price, max_price }
    }

    /// One adjustment round: raise if demand exceeded supply, lower if
    /// supply exceeded demand, hold when balanced. Returns the new price.
    pub fn adjust(&mut self, demand: u64, supply: u64) -> Result<Credits, TradeError> {
        let p = self.price;
        let next = if demand > supply {
            p.mul_ratio(100 + self.step_pct as u64, 100)
        } else if supply > demand {
            p.mul_ratio(100u64.saturating_sub(self.step_pct as u64), 100)
        } else {
            Ok(p)
        }
        .map_err(|e| TradeError::Numeric(e.to_string()))?;
        self.price = next.max(self.min_price).min(self.max_price);
        Ok(self.price)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridbank_rur::record::ChargeableItem;

    fn base() -> ServiceRates {
        ServiceRates::new()
            .with(ChargeableItem::Cpu, Credits::from_gd(2))
            .with(ChargeableItem::Network, Credits::from_milli(10))
    }

    #[test]
    fn flat_quotes_base_at_any_load() {
        let b = base();
        for load in [0, 50, 100] {
            assert_eq!(FlatPricing.quote(&b, Utilization::new(load)).unwrap(), b);
        }
    }

    #[test]
    fn supply_demand_interpolates() {
        let policy = SupplyDemandPricing { floor_pct: 50, ceil_pct: 300 };
        let b = base();
        // Idle: half price.
        let idle = policy.quote(&b, Utilization::new(0)).unwrap();
        assert_eq!(idle.price(ChargeableItem::Cpu), Some(Credits::from_gd(1)));
        // Full: triple price.
        let full = policy.quote(&b, Utilization::new(100)).unwrap();
        assert_eq!(full.price(ChargeableItem::Cpu), Some(Credits::from_gd(6)));
        // Midpoint: 175% of base.
        let mid = policy.quote(&b, Utilization::new(50)).unwrap();
        assert_eq!(mid.price(ChargeableItem::Cpu), Some(Credits::from_micro(3_500_000)));
        // Monotone in load.
        let mut prev = Credits::ZERO;
        for load in 0..=100 {
            let p = policy
                .quote(&b, Utilization::new(load))
                .unwrap()
                .price(ChargeableItem::Cpu)
                .unwrap();
            assert!(p >= prev, "price decreased at load {load}");
            prev = p;
        }
    }

    #[test]
    fn utilization_clamps() {
        assert_eq!(Utilization::new(250), Utilization(100));
    }

    #[test]
    fn bad_policy_config_rejected() {
        let policy = SupplyDemandPricing { floor_pct: 300, ceil_pct: 50 };
        assert!(policy.quote(&base(), Utilization::new(10)).is_err());
    }

    #[test]
    fn equilibrium_tracker_moves_toward_balance() {
        let mut t = EquilibriumTracker::new(
            Credits::from_gd(1),
            10,
            Credits::from_milli(100),
            Credits::from_gd(10),
        );
        // Demand exceeds supply: price rises 10%.
        assert_eq!(t.adjust(10, 5).unwrap(), Credits::from_micro(1_100_000));
        // Supply exceeds demand: price falls 10%.
        assert_eq!(t.adjust(5, 10).unwrap(), Credits::from_micro(990_000));
        // Balanced: unchanged.
        assert_eq!(t.adjust(7, 7).unwrap(), Credits::from_micro(990_000));
    }

    #[test]
    fn equilibrium_tracker_clamps_to_bounds() {
        let mut t = EquilibriumTracker::new(
            Credits::from_milli(110),
            10,
            Credits::from_milli(100),
            Credits::from_milli(120),
        );
        for _ in 0..10 {
            t.adjust(0, 100).unwrap();
        }
        assert_eq!(t.price, Credits::from_milli(100));
        for _ in 0..10 {
            t.adjust(100, 0).unwrap();
        }
        assert_eq!(t.price, Credits::from_milli(120));
    }
}
