//! Error type for trading and negotiation.

use std::fmt;

/// Errors from rates, negotiation, auctions and the market directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TradeError {
    /// The rates record and a usage record do not conform (§2.1).
    Nonconforming(String),
    /// A negotiation/auction was driven outside its protocol state.
    ProtocolViolation(String),
    /// A quote or offer has expired.
    QuoteExpired {
        /// Expiry time.
        valid_until: u64,
        /// Observation time.
        now: u64,
    },
    /// An offer was below a reserve or otherwise unacceptable by rule.
    Rejected(String),
    /// No provider/bid matched the request.
    NoMatch(String),
    /// A numeric error (overflow, negative price where forbidden).
    Numeric(String),
}

impl fmt::Display for TradeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TradeError::Nonconforming(why) => write!(f, "rates/RUR nonconforming: {why}"),
            TradeError::ProtocolViolation(why) => write!(f, "protocol violation: {why}"),
            TradeError::QuoteExpired { valid_until, now } => {
                write!(f, "quote expired at {valid_until}, now {now}")
            }
            TradeError::Rejected(why) => write!(f, "rejected: {why}"),
            TradeError::NoMatch(why) => write!(f, "no match: {why}"),
            TradeError::Numeric(why) => write!(f, "numeric error: {why}"),
        }
    }
}

impl std::error::Error for TradeError {}
