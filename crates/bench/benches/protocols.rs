//! E5 — the three payment strategies (§3.1) head to head: latency of a
//! complete payment through each protocol, plus batched cheque
//! redemption (§3.1: "This can be done in batches").

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion};

use gridbank_bench::{bank, funded, quick};
use gridbank_core::port::BankPort;
use gridbank_rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_rur::units::Duration;
use gridbank_rur::Credits;

fn rur(payee: &str, hours: u64) -> gridbank_rur::ResourceUsageRecord {
    RurBuilder::default()
        .user("h", "/O=Bench/OU=Users/CN=payer")
        .job("j", "a", 0, hours * 3_600_000)
        .resource("r", payee, None, 1)
        .line(
            ChargeableItem::Cpu,
            UsageAmount::Time(Duration::from_hours(hours)),
            Credits::from_gd(1),
        )
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocols");
    // Each issued instrument consumes one MSS leaf of the bank's 2^14
    // signing capacity; keep the sampling window small enough that no
    // bench exhausts its bank.
    g.measurement_time(std::time::Duration::from_millis(300));
    g.warm_up_time(std::time::Duration::from_millis(100));
    const PAYEE: &str = "/O=Bench/OU=Users/CN=payee";

    // Pay-before-use: one direct transfer with signed confirmation.
    g.bench_function("pay_before_use_direct_transfer", |b| {
        let bank = bank(14);
        let (mut payer, _) = funded(&bank, "payer", 10_000_000);
        let (_, payee_id) = funded(&bank, "payee", 0);
        b.iter(|| payer.direct_transfer(payee_id, Credits::from_micro(10), "payee.host").unwrap());
    });

    // Pay-after-use: issue + redeem one cheque.
    g.bench_function("pay_after_use_cheque_cycle", |b| {
        let bank = bank(14);
        let (mut payer, _) = funded(&bank, "payer", 10_000_000);
        let (mut payee, _) = funded(&bank, "payee", 0);
        let record = rur(PAYEE, 1);
        b.iter(|| {
            let cheque = payer.request_cheque(PAYEE, Credits::from_gd(2), 1_000_000).unwrap();
            payee.redeem_cheque(cheque, record.clone()).unwrap()
        });
    });

    // Pay-as-you-go: issue a chain of 16 then redeem it all.
    g.bench_function("pay_as_you_go_chain_cycle_16", |b| {
        let bank = bank(14);
        let (mut payer, _) = funded(&bank, "payer", 10_000_000);
        let (mut payee, _) = funded(&bank, "payee", 0);
        b.iter(|| {
            let chain =
                payer.request_hash_chain(PAYEE, 16, Credits::from_micro(100), 1_000_000).unwrap();
            let pw = chain.payword(16).unwrap();
            payee
                .redeem_payword(chain.commitment.clone(), chain.signature.clone(), pw, vec![])
                .unwrap()
        });
    });

    // Batched cheque redemption amortizes per-call overhead.
    for batch in [1usize, 8, 32] {
        g.bench_with_input(BenchmarkId::new("cheque_redeem_batch", batch), &batch, |b, &n| {
            let bank = bank(14);
            let (mut payer, _) = funded(&bank, "payer", 100_000_000);
            let (mut payee, _) = funded(&bank, "payee", 0);
            b.iter_with_setup(
                || {
                    (0..n)
                        .map(|_| {
                            (
                                payer
                                    .request_cheque(PAYEE, Credits::from_gd(2), 1_000_000)
                                    .unwrap(),
                                rur(PAYEE, 1),
                            )
                        })
                        .collect::<Vec<_>>()
                },
                |batch| {
                    for (cheque, record) in batch {
                        black_box(payee.redeem_cheque(cheque, record).unwrap());
                    }
                },
            );
        });
    }

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
