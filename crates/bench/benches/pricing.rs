//! E8 — §4.2 competitive-model pricing: estimator ingest/query cost as
//! history grows, and the supply-demand quote path providers price with.

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_core::pricing::{PriceEstimator, ResourceDescription};
use gridbank_rur::record::ChargeableItem;
use gridbank_rur::Credits;
use gridbank_trade::pricing::{
    EquilibriumTracker, PricingPolicy, SupplyDemandPricing, Utilization,
};
use gridbank_trade::rates::ServiceRates;

fn desc(i: u64) -> ResourceDescription {
    ResourceDescription {
        cpu_speed: 500 + (i % 40) as u32 * 100,
        cpu_count: 1 << (i % 6),
        memory_mb: 4_096 * (1 + i % 8),
        storage_mb: 100_000,
        bandwidth_mbps: 1_000,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("pricing");

    g.bench_function("observe", |b| {
        let e = PriceEstimator::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            e.observe(desc(i), Credits::from_milli(1_000 + (i % 3_000) as i64))
        });
    });

    // Estimate cost scales with history size.
    for history in [100u64, 1_000, 10_000] {
        g.throughput(Throughput::Elements(history));
        g.bench_with_input(BenchmarkId::new("estimate", history), &history, |b, &n| {
            let e = PriceEstimator::new();
            for i in 0..n {
                e.observe(desc(i), Credits::from_milli(1_000 + (i % 3_000) as i64));
            }
            let target = desc(3);
            b.iter(|| e.estimate(black_box(&target), 200).unwrap());
        });
    }

    // Supply/demand quote generation across the utilization range.
    g.throughput(Throughput::Elements(1));
    g.bench_function("supply_demand_quote", |b| {
        let policy = SupplyDemandPricing::default();
        let base = ServiceRates::new()
            .with(ChargeableItem::Cpu, Credits::from_gd(2))
            .with(ChargeableItem::Memory, Credits::from_milli(10))
            .with(ChargeableItem::Network, Credits::from_milli(5));
        let mut load = 0u8;
        b.iter(|| {
            load = (load + 7) % 101;
            policy.quote(black_box(&base), Utilization::new(load)).unwrap()
        });
    });

    // The community price authority's adjustment loop (§4.1).
    g.bench_function("equilibrium_tracker_1000_rounds", |b| {
        b.iter(|| {
            let mut t = EquilibriumTracker::new(
                Credits::from_gd(1),
                5,
                Credits::from_milli(100),
                Credits::from_gd(100),
            );
            for k in 0..1_000u64 {
                t.adjust(k % 13, k % 7).unwrap();
            }
            black_box(t.price)
        });
    });

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
