//! E12 — DBC scheduling: planning cost across the four Nimrod-G
//! algorithms as job and resource counts grow, plus one full dispatched
//! batch (plan + payments + execution) per algorithm.

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_broker::job::{JobBatch, QosConstraints};
use gridbank_broker::scheduling::{schedule, Algorithm, ResourceView};
use gridbank_meter::machine::JobSpec;
use gridbank_rur::units::MS_PER_HOUR;
use gridbank_rur::Credits;
use gridbank_sim::scenario::GridScenario;
use gridbank_sim::topology::{build_grid, TopologyConfig};

fn views(n: usize) -> Vec<ResourceView> {
    (0..n)
        .map(|i| ResourceView {
            provider_idx: i,
            price_per_hour: Credits::from_milli(500 + 500 * (i as i64 % 8)),
            speed: 100 + 50 * (i as u64 % 7),
            free_at_ms: 0,
        })
        .collect()
}

fn grid() -> GridScenario {
    build_grid(&TopologyConfig {
        seed: 77,
        providers: 4,
        machines_per_provider: 2,
        signer_height: 8,
        ..TopologyConfig::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduling");
    let qos = QosConstraints { deadline_ms: 24 * MS_PER_HOUR, budget: Credits::from_gd(100_000) };

    // Pure planning cost: jobs × resources sweep per algorithm.
    for (jobs, resources) in [(64usize, 8usize), (256, 16), (1024, 32)] {
        let works: Vec<u64> = (0..jobs).map(|i| 10_000_000 + (i as u64 % 10) * 1_000_000).collect();
        let rs = views(resources);
        g.throughput(Throughput::Elements(jobs as u64));
        for alg in Algorithm::ALL {
            g.bench_with_input(
                BenchmarkId::new(format!("plan_{}", alg.name()), format!("{jobs}x{resources}")),
                &(&works, &rs),
                |b, (works, rs)| {
                    b.iter(|| {
                        let plan = schedule(alg, works, rs, qos, 0).unwrap();
                        black_box(plan.assignments.len())
                    })
                },
            );
        }
    }

    // Full dispatched batch: negotiation + cheques + execution + settle.
    g.measurement_time(std::time::Duration::from_millis(400));
    for alg in Algorithm::ALL {
        g.bench_with_input(
            BenchmarkId::new("dispatch_batch_12_jobs", alg.name()),
            &alg,
            |b, &alg| {
                b.iter_with_setup(
                    || {
                        let grid = grid();
                        let broker = grid.new_consumer(
                            "bench-user",
                            Credits::from_gd(10_000),
                            Credits::from_gd(1_000),
                        );
                        (grid, broker)
                    },
                    |(mut grid, mut broker)| {
                        let batch = JobBatch::sweep(
                            "bench",
                            JobSpec::cpu_bound(1_000_000),
                            12,
                            QosConstraints {
                                deadline_ms: 24 * MS_PER_HOUR,
                                budget: Credits::from_gd(1_000),
                            },
                        );
                        let report = broker.run_batch(alg, &batch, &mut grid.providers, 0).unwrap();
                        assert_eq!(report.completed, 12);
                        black_box(report.total_paid)
                    },
                )
            },
        );
    }

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
