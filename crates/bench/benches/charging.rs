//! E2 — the Figure 2 metering/charging pipeline: native-record
//! conversion per OS flavour, per-resource aggregation (R1–R4), rate
//! conformance + charge calculation, and streaming interval slicing.

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_meter::levels::AccountingLevel;
use gridbank_meter::machine::{JobSpec, Machine, MachineSpec, OsFlavour};
use gridbank_meter::meter::{GridResourceMeter, MeteredJob};
use gridbank_rur::record::ChargeableItem;
use gridbank_rur::Credits;
use gridbank_trade::rates::ServiceRates;

fn rates() -> ServiceRates {
    ServiceRates::new()
        .with(ChargeableItem::WallClock, Credits::from_milli(100))
        .with(ChargeableItem::Cpu, Credits::from_gd(2))
        .with(ChargeableItem::Memory, Credits::from_milli(10))
        .with(ChargeableItem::Storage, Credits::from_milli(2))
        .with(ChargeableItem::Network, Credits::from_milli(5))
        .with(ChargeableItem::Software, Credits::from_milli(500))
}

fn job() -> JobSpec {
    JobSpec {
        work: 2_000_000,
        parallelism: 2,
        memory_mb: 1024,
        storage_mb: 256,
        network_mb: 64,
        sys_pct: 10,
    }
}

fn metered(os: OsFlavour, resources: usize) -> MeteredJob {
    let mut executions = Vec::new();
    for i in 0..resources {
        let spec = MachineSpec { host: format!("r{i}"), os, speed: 150, cores: 4, memory_mb: 8192 };
        let mut m = Machine::new(spec.clone(), i as u64);
        let e = m.execute(&job(), 0);
        executions.push((spec.host, os.host_type().to_string(), e.native));
    }
    MeteredJob {
        user_host: "h".into(),
        user_cert: "/CN=alice".into(),
        job_id: "j".into(),
        application: "a".into(),
        executions,
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("charging");
    let prices: Vec<(ChargeableItem, Credits)> = rates().iter().collect();
    let meter = GridResourceMeter::new("/CN=gsp");

    // Conversion unit per OS flavour.
    for os in [OsFlavour::Linux, OsFlavour::Solaris, OsFlavour::Cray] {
        let m = metered(os, 1);
        let native = m.executions[0].2.clone();
        g.bench_with_input(
            BenchmarkId::new("native_normalize", format!("{os:?}")),
            &native,
            |b, native| b.iter(|| native.normalize().unwrap()),
        );
    }

    // Full GRM: native → priced RUR.
    let single = metered(OsFlavour::Linux, 1);
    g.bench_function("build_rur_single_resource", |b| {
        b.iter(|| meter.build_rur(black_box(&single), &prices, AccountingLevel::Standard).unwrap())
    });

    // Aggregation across R1..Rn.
    for n in [2usize, 4, 16] {
        let m = metered(OsFlavour::Linux, n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("aggregate_resources", n), &m, |b, m| {
            b.iter(|| meter.build_rur(m, &prices, AccountingLevel::Standard).unwrap())
        });
    }

    // GBCM charge calculation (conformance + itemized total).
    let r = rates();
    let rur = meter.build_rur(&single, &prices, AccountingLevel::Standard).unwrap();
    g.bench_function("conformance_and_charge", |b| b.iter(|| r.charge(black_box(&rur)).unwrap()));

    // Streaming interval slicing for pay-as-you-go.
    let native = single.executions[0].2.clone();
    for interval in [1000u64, 100, 10] {
        g.bench_with_input(BenchmarkId::new("stream_intervals", interval), &interval, |b, &iv| {
            b.iter(|| meter.stream_intervals(black_box(&native), iv).unwrap().len())
        });
    }

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
