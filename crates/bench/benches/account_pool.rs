//! E6 — §2.3 access scalability: template-account pool behaviour as the
//! ratio of concurrent consumers to pool size grows. The paper's claim is
//! that a *small constant* pool serves an unbounded consumer population;
//! these curves show acquire/release cost and contention.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Duration as StdDuration;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_gsp::template::TemplatePool;
use gridbank_gsp::GridMapfile;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("account_pool");

    g.bench_function("uncontended_acquire_release", |b| {
        let pool = TemplatePool::new("grid", 8, 0o700);
        b.iter(|| {
            let a = pool.try_acquire().unwrap();
            pool.release(black_box(a));
        });
    });

    // Consumers ≫ pool: throughput of bind/execute/unbind churn.
    for (pool_size, threads) in [(4usize, 4usize), (4, 16), (16, 16), (4, 64)] {
        let label = format!("pool{pool_size}_threads{threads}");
        g.throughput(Throughput::Elements((threads * 50) as u64));
        g.bench_with_input(
            BenchmarkId::new("churn", label),
            &(pool_size, threads),
            |b, &(k, n)| {
                b.iter(|| {
                    let pool = Arc::new(TemplatePool::new("grid", k, 0o700));
                    let mapfile = Arc::new(GridMapfile::new());
                    std::thread::scope(|s| {
                        for t in 0..n {
                            let pool = pool.clone();
                            let mapfile = mapfile.clone();
                            s.spawn(move || {
                                for i in 0..50usize {
                                    let acct =
                                        pool.acquire(StdDuration::from_secs(5)).expect("cycles");
                                    let cert = format!("/CN=c{t}-{i}");
                                    mapfile.bind(&cert, &acct.local_name).unwrap();
                                    mapfile.unbind(&cert).unwrap();
                                    pool.release(acct);
                                }
                            });
                        }
                    });
                    black_box(pool.stats().acquisitions)
                });
            },
        );
    }

    // Wait behaviour at saturation: one slot, many waiters.
    g.bench_function("handoff_latency_1_slot_8_waiters", |b| {
        b.iter(|| {
            let pool = Arc::new(TemplatePool::new("grid", 1, 0o700));
            std::thread::scope(|s| {
                for _ in 0..8 {
                    let pool = pool.clone();
                    s.spawn(move || {
                        let a = pool.acquire(StdDuration::from_secs(5)).unwrap();
                        pool.release(a);
                    });
                }
            });
            black_box(pool.stats().waits)
        });
    });

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
