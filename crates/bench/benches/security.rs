//! E13 — the security substrate (GSI substitute): hash/MAC throughput,
//! signature sign/verify, certificate-chain validation, the mutual
//! handshake, and sealed-channel throughput. Signature and certificate
//! sizes are printed alongside (the size/latency trade is the point of
//! comparing hash-based signatures to the RSA certificates GSI used).

use std::hint::black_box;
use std::sync::Arc;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_crypto::hmac::hmac_sha256;
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_crypto::sha256::sha256;
use gridbank_net::channel::SecureChannel;
use gridbank_net::gate::OpenGate;
use gridbank_net::transport::{Address, Network};
use gridbank_net::{client_handshake, server_handshake, HandshakeConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("security");
    g.measurement_time(std::time::Duration::from_millis(400));
    g.warm_up_time(std::time::Duration::from_millis(100));

    // Hash and MAC throughput.
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xA5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("sha256", size), &data, |b, data| {
            b.iter(|| sha256(black_box(data)))
        });
        g.bench_with_input(BenchmarkId::new("hmac_sha256", size), &data, |b, data| {
            b.iter(|| hmac_sha256(b"key", black_box(data)))
        });
    }
    g.throughput(Throughput::Elements(1));

    // MSS sign / verify, with size report.
    let signer = SigningIdentity::generate_with_height(KeyMaterial { seed: 1 }, "bench", 12);
    let vk = signer.verifying_key();
    let sample = signer.sign(b"sample").unwrap();
    println!(
        "[sizes] MSS signature: {} bytes; public key: 32 bytes; capacity 2^12",
        sample.to_bytes().len()
    );
    g.bench_function("mss_sign", |b| b.iter(|| signer.sign(black_box(b"message")).unwrap()));
    g.bench_function("mss_verify", |b| {
        b.iter(|| vk.verify(black_box(b"sample"), &sample).unwrap())
    });

    // Certificate chain validation (CA cert + user cert + proxy).
    let ca = CertificateAuthority::new(
        SubjectName::new("GB", "CA", "Root"),
        SigningIdentity::generate_with_height(KeyMaterial { seed: 2 }, "ca", 10),
    );
    let user = SigningIdentity::generate_with_height(KeyMaterial { seed: 3 }, "user", 10);
    let cert = ca
        .issue(SubjectName::new("O", "U", "user"), user.verifying_key(), 0, u64::MAX / 2)
        .unwrap();
    let proxy_id = SigningIdentity::generate_with_height(KeyMaterial { seed: 4 }, "proxy", 10);
    let proxy = create_proxy(&user, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    g.bench_function("proxy_chain_validation", |b| {
        b.iter(|| proxy.verify_chain(&ca.verifying_key(), black_box(100)).unwrap())
    });

    // Full mutual handshake: the per-connection cost of the §3.2 gate.
    g.bench_function("mutual_handshake", |b| {
        // Tall identities so repeated handshakes don't exhaust leaves.
        let server_id =
            Arc::new(SigningIdentity::generate_with_height(KeyMaterial { seed: 5 }, "srv", 14));
        let server_cert = ca
            .issue(
                SubjectName::new("GB", "Srv", "bank"),
                server_id.verifying_key(),
                0,
                u64::MAX / 2,
            )
            .unwrap();
        let client_proxy_id =
            SigningIdentity::generate_with_height(KeyMaterial { seed: 6 }, "cli", 14);
        let client_proxy =
            create_proxy(&user, &cert, client_proxy_id.verifying_key(), 0, u64::MAX / 2, 1)
                .unwrap();
        let network = Network::new();
        let listener = network.bind(Address::new("srv")).unwrap();
        let config = HandshakeConfig { ca_key: ca.verifying_key(), now: 100 };
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let link = network.connect(Address::new("cli"), &Address::new("srv")).unwrap();
            let server_link = listener.accept().unwrap();
            std::thread::scope(|s| {
                let handle = s.spawn(|| {
                    let mut nonces = DeterministicStream::from_u64(n, b"s");
                    server_handshake(
                        server_link,
                        &config,
                        &server_cert,
                        &server_id,
                        &OpenGate,
                        &mut nonces,
                    )
                    .unwrap()
                });
                let mut nonces = DeterministicStream::from_u64(n, b"c");
                let client =
                    client_handshake(link, &config, &client_proxy, &client_proxy_id, &mut nonces)
                        .unwrap();
                let _server = handle.join().unwrap();
                black_box(client.1)
            })
        });
    });

    // Sealed channel throughput at several frame sizes.
    for size in [256usize, 4 * 1024, 64 * 1024] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(
            BenchmarkId::new("sealed_channel_roundtrip", size),
            &size,
            |b, &size| {
                let network = Network::new();
                let listener = network.bind(Address::new("srv")).unwrap();
                let link = network.connect(Address::new("cli"), &Address::new("srv")).unwrap();
                let server_link = listener.accept().unwrap();
                let secret = sha256(b"bench-secret");
                let mut client = SecureChannel::new(link, &secret, true);
                let mut server = SecureChannel::new(server_link, &secret, false);
                let payload = vec![0x5Au8; size];
                b.iter(|| {
                    client.send(&payload).unwrap();
                    black_box(server.recv().unwrap())
                });
            },
        );
    }

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
