//! E11 — PayWord/GridHash scaling (ref [21]): chain generation,
//! single-payword verification, and redemption as functions of chain
//! length. PayWord's selling point is that verification costs `k` hashes
//! while signatures cost thousands — these curves show exactly that.

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::{bank, funded, quick};
use gridbank_core::port::BankPort;
use gridbank_crypto::sha256::{iterate_hash, sha256};
use gridbank_rur::Credits;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("payword");
    g.measurement_time(std::time::Duration::from_millis(400));
    g.warm_up_time(std::time::Duration::from_millis(100));
    const PAYEE: &str = "/O=Bench/OU=Users/CN=payee";

    // Raw chain construction: n hashes.
    for len in [64u32, 256, 1024, 4096] {
        g.throughput(Throughput::Elements(len as u64));
        g.bench_with_input(BenchmarkId::new("chain_generation", len), &len, |b, &len| {
            let tip = sha256(b"tip");
            b.iter(|| {
                let mut chain = vec![tip; (len + 1) as usize];
                for i in (0..len as usize).rev() {
                    chain[i] = sha256(chain[i + 1].as_bytes());
                }
                black_box(chain[0])
            });
        });
    }

    // Verification of payword k costs k hashes: linear in the index.
    for k in [1usize, 16, 256, 4096] {
        g.throughput(Throughput::Elements(k as u64));
        g.bench_with_input(BenchmarkId::new("payword_verify", k), &k, |b, &k| {
            let tip = sha256(b"tip");
            let word = tip;
            let root = iterate_hash(word, k);
            b.iter(|| {
                assert_eq!(iterate_hash(black_box(word), k), root);
            });
        });
    }

    // Full bank-side issue for growing lengths (locks funds + signs).
    for len in [16u32, 128, 1024] {
        g.bench_with_input(BenchmarkId::new("bank_issue_chain", len), &len, |b, &len| {
            let bank = bank(13);
            let (mut payer, _) = funded(&bank, "payer", 100_000_000);
            let (_payee, _) = funded(&bank, "payee", 0);
            b.iter(|| {
                black_box(
                    payer
                        .request_hash_chain(PAYEE, len, Credits::from_micro(1), 1_000_000)
                        .unwrap()
                        .commitment
                        .root,
                )
            });
        });
    }

    // Incremental redemption: 8 redemptions walking up one chain.
    g.bench_function("incremental_redemption_8_steps", |b| {
        let bank = bank(13);
        let (mut payer, _) = funded(&bank, "payer", 100_000_000);
        let (mut payee, _) = funded(&bank, "payee", 0);
        b.iter_with_setup(
            || payer.request_hash_chain(PAYEE, 64, Credits::from_micro(1), 1_000_000).unwrap(),
            |chain| {
                for step in 1..=8u32 {
                    let pw = chain.payword(step * 8).unwrap();
                    payee
                        .redeem_payword(
                            chain.commitment.clone(),
                            chain.signature.clone(),
                            pw,
                            vec![],
                        )
                        .unwrap();
                }
            },
        );
    });

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
