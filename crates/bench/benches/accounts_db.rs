//! E9 — accounts/DB layer throughput: the §5.1 record operations.
//!
//! Regenerates: account creation rate, lookup by certificate name,
//! transfer throughput (uncontended and contended across threads),
//! statement range scans, and journal replay cost.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{BenchmarkId, Criterion};

use gridbank_bench::quick;
use gridbank_core::accounts::GbAccounts;
use gridbank_core::clock::Clock;
use gridbank_core::db::Database;
use gridbank_rur::Credits;

fn setup(accounts_n: usize) -> (GbAccounts, Vec<gridbank_core::db::AccountId>) {
    let db = Arc::new(Database::new(1, 1));
    let acc = GbAccounts::new(db.clone(), Clock::new());
    let ids: Vec<_> = (0..accounts_n)
        .map(|i| {
            let id = acc.create_account(&format!("/CN=user-{i}"), None).unwrap();
            db.with_account_mut(&id, |r| {
                r.available = Credits::from_gd(1_000_000);
                Ok(())
            })
            .unwrap();
            id
        })
        .collect();
    (acc, ids)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("accounts_db");

    g.bench_function("create_account", |b| {
        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db, Clock::new());
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            acc.create_account(&format!("/CN=new-{i}"), None).unwrap()
        });
    });

    g.bench_function("lookup_by_cert", |b| {
        let (acc, _) = setup(1_000);
        b.iter(|| acc.account_by_cert(black_box("/CN=user-500")).unwrap());
    });

    g.bench_function("transfer_uncontended", |b| {
        let (acc, ids) = setup(2);
        b.iter(|| acc.transfer(&ids[0], &ids[1], Credits::from_micro(1), Vec::new()).unwrap());
    });

    for threads in [2usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("transfer_contended", threads),
            &threads,
            |b, &threads| {
                let (acc, ids) = setup(16);
                b.iter(|| {
                    std::thread::scope(|s| {
                        for t in 0..threads {
                            let acc = acc.clone();
                            let ids = &ids;
                            s.spawn(move || {
                                for k in 0..50usize {
                                    let from = ids[(t * 3 + k) % ids.len()];
                                    let to = ids[(t * 3 + k + 1) % ids.len()];
                                    if from != to {
                                        let _ = acc.transfer(
                                            &from,
                                            &to,
                                            Credits::from_micro(1),
                                            Vec::new(),
                                        );
                                    }
                                }
                            });
                        }
                    })
                });
            },
        );
    }

    g.bench_function("statement_scan_10k_rows", |b| {
        let (acc, ids) = setup(2);
        for _ in 0..10_000 {
            acc.transfer(&ids[0], &ids[1], Credits::from_micro(1), Vec::new()).unwrap();
        }
        b.iter(|| {
            let st = acc.statement(&ids[0], 0, u64::MAX).unwrap();
            black_box(st.transactions.len())
        });
    });

    g.bench_function("journal_replay_10k_entries", |b| {
        let (acc, ids) = setup(8);
        for k in 0..2_500usize {
            acc.transfer(&ids[k % 8], &ids[(k + 1) % 8], Credits::from_micro(1), Vec::new())
                .unwrap();
        }
        let journal = acc.db().journal_snapshot();
        b.iter(|| {
            let db = Database::replay(1, 1, black_box(&journal));
            black_box(db.account_count())
        });
    });

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
