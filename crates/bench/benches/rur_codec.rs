//! E9 (codec leg) — Resource Usage Record serialization: the binary BLOB
//! form GridBank stores (§5.1) vs the XML-ish site-exchange form, both
//! directions.

use std::hint::black_box;

use criterion::{Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_rur::codec::{Decode, Encode};
use gridbank_rur::record::{ChargeableItem, ResourceUsageRecord, RurBuilder, UsageAmount};
use gridbank_rur::text;
use gridbank_rur::units::{DataSize, Duration, MbHours};
use gridbank_rur::Credits;

fn full_record() -> ResourceUsageRecord {
    RurBuilder::default()
        .user("submit.uwa.edu.au", "/O=UWA/OU=CSSE/CN=alice")
        .job("nimrod-000042", "povray-parameter-sweep", 1_000, 7_201_000)
        .resource(
            "cluster.unimelb.edu.au",
            "/O=UniMelb/OU=GRIDS/CN=gsp-alpha",
            Some("Linux/x86".into()),
            918_273,
        )
        .line(
            ChargeableItem::WallClock,
            UsageAmount::Time(Duration::from_hours(2)),
            Credits::from_milli(100),
        )
        .line(
            ChargeableItem::Cpu,
            UsageAmount::Time(Duration::from_ms(6_400_000)),
            Credits::from_gd(2),
        )
        .line(
            ChargeableItem::Memory,
            UsageAmount::Occupancy(MbHours::occupancy(
                DataSize::from_mb(2048),
                Duration::from_hours(2),
            )),
            Credits::from_milli(10),
        )
        .line(
            ChargeableItem::Storage,
            UsageAmount::Occupancy(MbHours::occupancy(
                DataSize::from_mb(512),
                Duration::from_hours(2),
            )),
            Credits::from_milli(2),
        )
        .line(
            ChargeableItem::Network,
            UsageAmount::Data(DataSize::from_mb(850)),
            Credits::from_milli(5),
        )
        .line(
            ChargeableItem::Software,
            UsageAmount::Time(Duration::from_ms(300_000)),
            Credits::from_milli(500),
        )
        .build()
        .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("rur_codec");
    let record = full_record();
    let bytes = record.to_bytes();
    let rendered = text::to_text(&record);
    println!("[sizes] full RUR: binary {} bytes, text {} bytes", bytes.len(), rendered.len());

    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("binary_encode", |b| b.iter(|| black_box(&record).to_bytes()));
    g.bench_function("binary_decode", |b| {
        b.iter(|| ResourceUsageRecord::from_bytes(black_box(&bytes)).unwrap())
    });

    g.throughput(Throughput::Bytes(rendered.len() as u64));
    g.bench_function("text_encode", |b| b.iter(|| text::to_text(black_box(&record))));
    g.bench_function("text_decode", |b| b.iter(|| text::from_text(black_box(&rendered)).unwrap()));

    g.throughput(Throughput::Elements(1));
    g.bench_function("validate", |b| b.iter(|| black_box(&record).validate().unwrap()));
    g.bench_function("total_cost", |b| b.iter(|| black_box(&record).total_cost().unwrap()));

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
