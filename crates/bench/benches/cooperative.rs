//! E4 — Figure 4's co-operative barter community at several ring sizes:
//! full rounds of mutual service provision through the bank, plus the
//! equilibrium-gap computation over the transfer history.

use std::hint::black_box;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_core::coop::BarterStats;
use gridbank_sim::scenario::run_cooperative;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("cooperative");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(600));

    // Whole-community rounds: n participants × r rounds of paid jobs.
    for n in [2usize, 4, 8] {
        g.throughput(Throughput::Elements((n * 2) as u64));
        g.bench_with_input(BenchmarkId::new("barter_rounds", n), &n, |b, &n| {
            b.iter(|| {
                let report = run_cooperative(n, 2, 1_800_000, 7);
                assert_eq!(report.rows.len(), n);
                black_box(report.equilibrium_gap)
            })
        });
    }

    // Stats computation alone over a populated transfer table.
    g.bench_function("barter_stats_over_history", |b| {
        use gridbank_core::accounts::GbAccounts;
        use gridbank_core::clock::Clock;
        use gridbank_core::db::Database;
        use gridbank_rur::Credits;
        use std::sync::Arc;

        let db = Arc::new(Database::new(1, 1));
        let acc = GbAccounts::new(db.clone(), Clock::new());
        let ids: Vec<_> = (0..16)
            .map(|i| {
                let id = acc.create_account(&format!("/CN=p{i}"), None).unwrap();
                db.with_account_mut(&id, |r| {
                    r.available = Credits::from_gd(1_000_000);
                    Ok(())
                })
                .unwrap();
                id
            })
            .collect();
        for k in 0..5_000usize {
            acc.transfer(&ids[k % 16], &ids[(k + 1) % 16], Credits::from_micro(10), Vec::new())
                .unwrap();
        }
        b.iter(|| {
            let stats = BarterStats::compute(&db, 0, u64::MAX);
            black_box(stats.equilibrium_gap())
        });
    });

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
