//! E10 — §6 inter-branch settlement: cross-branch transfer latency and
//! netting cost as the federation grows.

use std::hint::black_box;
use std::sync::Arc;

use criterion::{BenchmarkId, Criterion, Throughput};

use gridbank_bench::quick;
use gridbank_core::accounts::GbAccounts;
use gridbank_core::admin::GbAdmin;
use gridbank_core::branch::{Branch, InterBank};
use gridbank_core::clock::Clock;
use gridbank_core::db::{AccountId, Database};
use gridbank_rur::Credits;

const ADMIN: &str = "/CN=root";

fn federation(branches: u16) -> (InterBank, Vec<AccountId>) {
    let mut ib = InterBank::new();
    let mut members = Vec::new();
    for b in 1..=branches {
        let db = Arc::new(Database::new(1, b));
        let acc = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(acc.clone(), [ADMIN.to_string()]);
        let id = acc.create_account(&format!("/O=vo-{b}/CN=member"), None).unwrap();
        admin.deposit(ADMIN, &id, Credits::from_gd(1_000_000)).unwrap();
        ib.add_branch(Branch::new(b, acc, admin));
        members.push(id);
    }
    (ib, members)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("settlement");

    g.bench_function("cross_branch_transfer", |b| {
        let (mut ib, members) = federation(2);
        b.iter(|| {
            ib.cross_branch_transfer(members[0], members[1], Credits::from_micro(10), Vec::new())
                .unwrap()
        });
    });

    // Same-branch transfer for comparison (the local fast path).
    g.bench_function("local_transfer_baseline", |b| {
        let (ib, _members) = federation(1);
        let branch = ib.branch(1).unwrap();
        let a = branch.accounts.create_account("/CN=a2", None).unwrap();
        branch.admin.deposit(ADMIN, &a, Credits::from_gd(1_000_000)).unwrap();
        let to = branch.accounts.create_account("/CN=b2", None).unwrap();
        b.iter(|| branch.accounts.transfer(&a, &to, Credits::from_micro(10), Vec::new()).unwrap());
    });

    // Settlement cost vs federation size: all-pairs traffic, then net.
    for branches in [2u16, 4, 8] {
        g.throughput(Throughput::Elements((branches as u64) * (branches as u64 - 1)));
        g.bench_with_input(
            BenchmarkId::new("all_pairs_traffic_and_settle", branches),
            &branches,
            |b, &n| {
                b.iter_with_setup(
                    || {
                        let (mut ib, members) = federation(n);
                        for i in 0..n as usize {
                            for j in 0..n as usize {
                                if i != j {
                                    ib.cross_branch_transfer(
                                        members[i],
                                        members[j],
                                        Credits::from_gd(1 + (i as i64 * 3 + j as i64) % 7),
                                        Vec::new(),
                                    )
                                    .unwrap();
                                }
                            }
                        }
                        ib
                    },
                    |mut ib| {
                        let report = ib.settle().unwrap();
                        black_box(report.total_net())
                    },
                )
            },
        );
    }

    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
