//! Ablations for the design choices DESIGN.md calls out.
//!
//! Three knobs, each printed as a small table before the timing runs:
//!
//! 1. **Cheque reservation margin** — the broker reserves estimate×margin
//!    (§3.4); too little and providers get short-paid when actual usage
//!    exceeds the estimate, too much and budget headroom is wasted.
//! 2. **Pairwise netting** (§6) — gross vs net settlement volume under
//!    random cross-branch traffic: what netting actually saves.
//! 3. **Supply/demand vs flat pricing** — revenue distribution when
//!    providers reprice under load.

use std::hint::black_box;
use std::sync::Arc;

use criterion::Criterion;

use gridbank_bench::quick;
use gridbank_broker::job::{JobBatch, QosConstraints};
use gridbank_broker::scheduling::Algorithm;
use gridbank_core::accounts::GbAccounts;
use gridbank_core::admin::GbAdmin;
use gridbank_core::branch::{Branch, InterBank};
use gridbank_core::clock::Clock;
use gridbank_core::db::Database;
use gridbank_meter::machine::JobSpec;
use gridbank_rur::units::MS_PER_HOUR;
use gridbank_rur::Credits;
use gridbank_sim::scenario::{run_open_market, ScenarioConfig};
use gridbank_sim::topology::{build_grid, TopologyConfig};
use gridbank_sim::workload::{JobSizeDistribution, WorkloadConfig};

fn margin_table() {
    println!("\n[ablation 1] cheque reservation margin (estimate×margin vs actual charge)");
    println!(
        "{:>8} {:>12} {:>14} {:>14} {:>12}",
        "margin%", "completed", "charged", "paid", "shortfall"
    );
    for margin in [100u32, 125, 200, 400] {
        let grid = build_grid(&TopologyConfig {
            seed: 5,
            providers: 3,
            machines_per_provider: 2,
            signer_height: 9,
            ..TopologyConfig::default()
        });
        let mut grid = grid;
        let mut broker =
            grid.new_consumer("margin-probe", Credits::from_gd(10_000), Credits::from_gd(1_000));
        broker.cheque_margin_pct = margin;
        // Jobs with heavy memory+network components the CPU-hour estimate
        // cannot see: at 100% margin the reservation under-covers.
        let batch = JobBatch::sweep(
            "ablation",
            JobSpec {
                work: 2_000_000,
                parallelism: 1,
                memory_mb: 8_192,
                storage_mb: 2_048,
                network_mb: 500,
                sys_pct: 10,
            },
            10,
            QosConstraints { deadline_ms: 8 * MS_PER_HOUR, budget: Credits::from_gd(1_000) },
        );
        let report = broker.run_batch(Algorithm::CostOpt, &batch, &mut grid.providers, 0).unwrap();
        let shortfall = report.total_charge.checked_sub(report.total_paid).unwrap_or(Credits::ZERO);
        println!(
            "{:>8} {:>12} {:>14} {:>14} {:>12}",
            margin,
            report.completed,
            report.total_charge.to_string(),
            report.total_paid.to_string(),
            shortfall.to_string(),
        );
    }
    println!("(shortfall → provider under-payment when reservations under-cover; 200% eliminates it here)");
}

fn netting_table() {
    println!("\n[ablation 2] pairwise netting benefit vs federation size");
    println!("{:>9} {:>10} {:>14} {:>14} {:>8}", "branches", "payments", "gross", "net", "saved%");
    for branches in [2u16, 4, 8] {
        let mut ib = InterBank::new();
        let mut members = Vec::new();
        for b in 1..=branches {
            let db = Arc::new(Database::new(1, b));
            let acc = GbAccounts::new(db, Clock::new());
            let admin = GbAdmin::new(acc.clone(), ["/CN=root".to_string()]);
            let id = acc.create_account(&format!("/O=vo-{b}/CN=m"), None).unwrap();
            admin.deposit("/CN=root", &id, Credits::from_gd(100_000)).unwrap();
            ib.add_branch(Branch::new(b, acc, admin));
            members.push(id);
        }
        let mut payments = 0u32;
        for round in 0..20u64 {
            for i in 0..branches as usize {
                for j in 0..branches as usize {
                    if i != j {
                        ib.cross_branch_transfer(
                            members[i],
                            members[j],
                            Credits::from_milli(
                                ((round * 7 + i as u64 * 3 + j as u64) % 50 + 1) as i64 * 100,
                            ),
                            Vec::new(),
                        )
                        .unwrap();
                        payments += 1;
                    }
                }
            }
        }
        let report = ib.settle().unwrap();
        let gross = report.total_gross();
        let net = report.total_net();
        let saved_pct =
            if gross.is_positive() { 100 - (net.micro() * 100 / gross.micro()) } else { 0 };
        println!(
            "{:>9} {:>10} {:>14} {:>14} {:>7}%",
            branches,
            payments,
            gross.to_string(),
            net.to_string(),
            saved_pct,
        );
    }
}

fn pricing_table() {
    println!("\n[ablation 3] flat vs supply/demand pricing: market outcome");
    println!("{:>10} {:>10} {:>14} {:>16}", "pricing", "completed", "total paid", "revenue spread");
    for dynamic in [false, true] {
        let config = ScenarioConfig {
            topology: TopologyConfig {
                seed: 11,
                providers: 4,
                machines_per_provider: 2,
                dynamic_pricing: dynamic,
                signer_height: 9,
                ..TopologyConfig::default()
            },
            workload: WorkloadConfig {
                seed: 12,
                count: 24,
                consumers: 4,
                mean_interarrival_ms: 50,
                sizes: JobSizeDistribution::Uniform { lo: 2_000_000, hi: 6_000_000 },
                memory_mb: 0,
                network_mb: 0,
                diurnal: None,
            },
            algorithm: Algorithm::CostOpt,
            deadline_ms: 8 * MS_PER_HOUR,
            budget: Credits::from_gd(1_000),
        };
        let report = run_open_market(&config);
        let max = report.provider_revenue.iter().max().copied().unwrap_or(Credits::ZERO);
        let min = report.provider_revenue.iter().min().copied().unwrap_or(Credits::ZERO);
        println!(
            "{:>10} {:>10} {:>14} {:>16}",
            if dynamic { "dynamic" } else { "flat" },
            report.completed,
            report.total_paid.to_string(),
            format!("{}..{}", min, max),
        );
    }
    println!("(dynamic pricing raises busy providers' quotes, spreading load and revenue)");
}

fn bench(c: &mut Criterion) {
    margin_table();
    netting_table();
    pricing_table();

    // One timed path: full market run, flat vs dynamic pricing.
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.measurement_time(std::time::Duration::from_millis(600));
    for dynamic in [false, true] {
        let label = if dynamic { "market_dynamic_pricing" } else { "market_flat_pricing" };
        g.bench_function(label, |b| {
            let config = ScenarioConfig {
                topology: TopologyConfig {
                    seed: 21,
                    providers: 3,
                    machines_per_provider: 2,
                    dynamic_pricing: dynamic,
                    signer_height: 8,
                    ..TopologyConfig::default()
                },
                workload: WorkloadConfig {
                    seed: 22,
                    count: 8,
                    consumers: 2,
                    mean_interarrival_ms: 50,
                    sizes: JobSizeDistribution::Constant(1_000_000),
                    memory_mb: 0,
                    network_mb: 0,
                    diurnal: None,
                },
                algorithm: Algorithm::CostOpt,
                deadline_ms: 8 * MS_PER_HOUR,
                budget: Credits::from_gd(1_000),
            };
            b.iter(|| black_box(run_open_market(&config).completed));
        });
    }
    g.finish();
}

fn main() {
    let mut c = quick();
    bench(&mut c);
    c.final_summary();
}
