//! `gridbank-bench` — the load-generation harness (EXPERIMENTS.md E16).
//!
//! `gridbank-bench loadgen` drives the Figure-1 payment flow against a
//! *real* [`GridBankServer`] (authenticated handshakes, secure channels,
//! pipelined RPC, bounded worker pool, group-commit journal) and reports
//! end-to-end throughput plus p50/p95/p99 latency per payment strategy,
//! sourced from `gridbank-obs` histograms. Results land in
//! `BENCH_payments.json`. Methodology and schema: `docs/BENCHMARKS.md`.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gridbank_core::client::GridBankClient;
use gridbank_core::clock::Clock;
use gridbank_core::db::GroupCommitConfig;
use gridbank_core::federation::{FederationRouter, RemotePeer};
use gridbank_core::resilient::{Connector, ResilientBankClient};
use gridbank_core::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials, ServerTuning,
};
use gridbank_core::BankError;
use gridbank_crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_crypto::rng::DeterministicStream;
use gridbank_net::retry::RetryPolicy;
use gridbank_net::transport::{Address, Network};
use gridbank_rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_rur::units::Duration as RurDuration;
use gridbank_rur::Credits;

/// One payment strategy from §3.1 / Figure 1.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Strategy {
    /// Pay-before-use: a keyed `DirectTransfer` per op (pipelines).
    PayBefore,
    /// Pay-after-use: request + redeem one GridCheque per op.
    Cheque,
    /// Pay-as-you-go: issue a short GridHash chain and redeem it.
    PayWord,
}

impl Strategy {
    fn name(self) -> &'static str {
        match self {
            Strategy::PayBefore => "paybefore",
            Strategy::Cheque => "cheque",
            Strategy::PayWord => "payword",
        }
    }

    fn parse(s: &str) -> Option<Strategy> {
        match s {
            "paybefore" => Some(Strategy::PayBefore),
            "cheque" => Some(Strategy::Cheque),
            "payword" => Some(Strategy::PayWord),
            _ => None,
        }
    }
}

/// Loadgen run configuration (see `docs/BENCHMARKS.md` for semantics).
struct LoadgenConfig {
    /// `closed` (fixed concurrency) or `open` (fixed arrival rate).
    mode: String,
    /// Measured window per strategy, after warmup.
    duration_ms: u64,
    /// Unrecorded lead-in per strategy.
    warmup_ms: u64,
    /// Concurrent client connections per strategy.
    clients: usize,
    /// In-flight requests per connection (closed loop, paybefore only —
    /// the cheque/payword cycles are request/response pairs).
    pipeline: usize,
    /// Total target ops/sec across clients (open loop only).
    rate: u64,
    /// Strategies to run, in order.
    strategies: Vec<Strategy>,
    /// Seed for certificate keys and idempotency-key spacing.
    seed: u64,
    /// Bank MSS signer height (capacity = 2^height instruments).
    signer_height: usize,
    /// Server worker pool size.
    workers: usize,
    /// Federated branches (1 = single-bank; N > 1 adds a cross-branch
    /// paybefore phase against live federated servers plus a timed
    /// settlement pass).
    branches: usize,
    /// Server-side telemetry: `true` fills the `server_stages` section
    /// from the `server.stage.*` histograms; `false` measures the bare
    /// pipeline (EXPERIMENTS.md E18).
    telemetry: bool,
    /// Repetitions per measured phase; throughput reports mean ±
    /// stddev across runs.
    runs: usize,
    /// Run the market-economy scenario (auctions + barter + PayWord
    /// streams through live federated servers) and emit a `market`
    /// section with its invariant evidence.
    market: bool,
    /// Run the kill/restart drill (`gridbank_sim::run_recovery`) and
    /// emit a `recovery` section: restart-to-serving time plus the
    /// tail-only-replay and conservation evidence (EXPERIMENTS.md E19).
    recovery: bool,
    /// Output path.
    out: String,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            mode: "closed".into(),
            duration_ms: 500,
            warmup_ms: 150,
            clients: 2,
            pipeline: 8,
            rate: 2_000,
            strategies: vec![Strategy::PayBefore, Strategy::Cheque, Strategy::PayWord],
            seed: 42,
            signer_height: 15,
            workers: 4,
            branches: 1,
            telemetry: true,
            runs: 1,
            market: false,
            recovery: false,
            out: "BENCH_payments.json".into(),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: gridbank-bench loadgen [options]\n\
         \n\
         Drives the Figure-1 payment flow against a live in-process\n\
         GridBank server and writes BENCH_payments.json.\n\
         \n\
         options:\n\
           --mode closed|open      closed loop (default) or open loop\n\
           --duration-ms N         measured window per strategy (default 500)\n\
           --warmup-ms N           unrecorded lead-in (default 150)\n\
           --clients N             concurrent connections (default 2)\n\
           --pipeline N            in-flight requests per connection (default 8)\n\
           --rate N                open-loop target ops/sec (default 2000)\n\
           --strategies a,b,c      paybefore,cheque,payword (default all)\n\
           --seed N                deterministic key seed (default 42)\n\
           --signer-height N       bank signing capacity 2^N (default 15)\n\
           --workers N             server worker pool size (default 4)\n\
           --branches N            federated branches; N>1 adds a\n\
                                   cross-branch phase + settlement pass (default 1)\n\
           --telemetry on|off      server-side stage timing; off measures the\n\
                                   bare pipeline, E18 (default on)\n\
           --runs N                repetitions per measured phase; throughput\n\
                                   reports mean ± stddev across runs (default 1)\n\
           --market                also run the market-economy scenario\n\
                                   (auctions, barter, PayWord streams) and emit\n\
                                   a `market` section with invariant evidence\n\
           --recovery              also run the kill/restart drill against a\n\
                                   durable store and emit a `recovery` section\n\
                                   (restart-to-serving ms, tail-only replay)\n\
           --out PATH              output file (default BENCH_payments.json)\n\
         \n\
         See docs/BENCHMARKS.md for methodology."
    );
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> LoadgenConfig {
    let mut cfg = LoadgenConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().unwrap_or_else(|| usage()).clone();
        match flag.as_str() {
            "--mode" => {
                cfg.mode = value();
                if cfg.mode != "closed" && cfg.mode != "open" {
                    usage();
                }
            }
            "--duration-ms" => cfg.duration_ms = value().parse().unwrap_or_else(|_| usage()),
            "--warmup-ms" => cfg.warmup_ms = value().parse().unwrap_or_else(|_| usage()),
            "--clients" => cfg.clients = value().parse().unwrap_or_else(|_| usage()),
            "--pipeline" => cfg.pipeline = value().parse().unwrap_or_else(|_| usage()),
            "--rate" => cfg.rate = value().parse().unwrap_or_else(|_| usage()),
            "--strategies" => {
                cfg.strategies = value()
                    .split(',')
                    .map(|s| Strategy::parse(s.trim()).unwrap_or_else(|| usage()))
                    .collect();
            }
            "--seed" => cfg.seed = value().parse().unwrap_or_else(|_| usage()),
            "--signer-height" => cfg.signer_height = value().parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = value().parse().unwrap_or_else(|_| usage()),
            "--branches" => cfg.branches = value().parse().unwrap_or_else(|_| usage()),
            "--telemetry" => {
                cfg.telemetry = match value().as_str() {
                    "on" => true,
                    "off" => false,
                    _ => usage(),
                }
            }
            "--runs" => cfg.runs = value().parse().unwrap_or_else(|_| usage()),
            "--market" => cfg.market = true,
            "--recovery" => cfg.recovery = true,
            "--out" => cfg.out = value(),
            _ => usage(),
        }
    }
    if cfg.clients == 0
        || cfg.pipeline == 0
        || cfg.duration_ms == 0
        || cfg.strategies.is_empty()
        || cfg.branches == 0
        || cfg.runs == 0
    {
        usage();
    }
    cfg
}

/// Sample mean and (population) standard deviation.
fn mean_stddev(xs: &[f64]) -> (f64, f64) {
    let n = xs.len().max(1) as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

struct World {
    network: Network,
    ca: CertificateAuthority,
    clock: Clock,
    /// One per branch, index 0 = branch 1 (bound at address `bank`).
    banks: Vec<Arc<GridBank>>,
    /// Parallel to `banks`; empty when `--branches 1`.
    routers: Vec<Arc<FederationRouter>>,
    _servers: Vec<GridBankServer>,
}

/// Address a branch's server is bound at. Branch 1 keeps the historical
/// `bank` address so single-branch runs are byte-identical to earlier
/// harness versions.
fn branch_address(branch: u16) -> Address {
    if branch == 1 {
        Address::new("bank")
    } else {
        Address::new(format!("branch-{branch}"))
    }
}

fn start_world(cfg: &LoadgenConfig) -> World {
    // 2^8 = 256 certificate issues: three per client thread (payer,
    // payee, admin) plus the bank's own — plenty for any sane --clients.
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_with_height(KeyMaterial { seed: cfg.seed ^ 1 }, "ca", 8),
    );
    let clock = Clock::new();
    let network = Network::new();
    let mut banks = Vec::new();
    let mut servers = Vec::new();
    for b in 1..=cfg.branches as u16 {
        let bank = Arc::new(GridBank::new(
            GridBankConfig {
                branch: b,
                gate_mode: GateMode::AllowEnrollment,
                signer_height: cfg.signer_height,
                group_commit: GroupCommitConfig::default(),
                key_material: KeyMaterial { seed: 0xB4A2 ^ (b as u64) },
                ..GridBankConfig::default()
            },
            clock.clone(),
        ));
        let bank_identity = Arc::new(SigningIdentity::generate(
            KeyMaterial { seed: cfg.seed ^ (2 + b as u64 * 13) },
            "bank-tls",
        ));
        let bank_cert = ca
            .issue(
                SubjectName::new("GridBank", "Server", &format!("gridbank-{b:04}")),
                bank_identity.verifying_key(),
                0,
                u64::MAX / 2,
            )
            .expect("bank certificate");
        let server = GridBankServer::start_tuned(
            &network,
            branch_address(b),
            Arc::clone(&bank),
            ServerCredentials {
                certificate: bank_cert,
                identity: bank_identity,
                ca_key: ca.verifying_key(),
            },
            cfg.seed ^ 7 ^ (b as u64) << 8,
            ServerTuning {
                workers: cfg.workers,
                queue_depth: (cfg.clients * cfg.pipeline * 2).max(64),
                max_connections: (cfg.clients * 4).max(64),
            },
        )
        .expect("server starts");
        banks.push(bank);
        servers.push(server);
    }

    // Federate every branch with a pooled resilient route to each peer.
    let routers: Vec<Arc<FederationRouter>> = if cfg.branches > 1 {
        let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
        for from in 1..=cfg.branches as u16 {
            for to in 1..=cfg.branches as u16 {
                if from == to {
                    continue;
                }
                let dn = SubjectName::new("GridBank", "Settlement", &format!("branch-{from:04}"));
                let id_seed = cfg.seed ^ 0x5E77_0000 ^ (from as u64);
                let id = SigningIdentity::generate_small(KeyMaterial { seed: id_seed }, "settle");
                let cert = ca
                    .issue(dn, id.verifying_key(), 0, u64::MAX / 2)
                    .expect("settlement certificate");
                let (net, clk, ca_key) = (network.clone(), clock.clone(), ca.verifying_key());
                let target = branch_address(to);
                let mut attempt = 0u64;
                let connector: Connector = Box::new(move || {
                    attempt += 1;
                    let id =
                        SigningIdentity::generate_small(KeyMaterial { seed: id_seed }, "settle");
                    let proxy_id = SigningIdentity::generate_small(
                        KeyMaterial { seed: id_seed ^ (attempt << 16) ^ 0x9A },
                        "proxy",
                    );
                    let proxy =
                        create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)?;
                    let mut nonces = DeterministicStream::from_u64(
                        ((from as u64) << 32) | ((to as u64) << 16) | attempt,
                        b"fed-nonce",
                    );
                    GridBankClient::connect(
                        &net,
                        Address::new(format!("fed-{from}-{to}-{attempt}")),
                        &target,
                        ca_key,
                        clk.now_ms(),
                        &proxy,
                        &proxy_id,
                        &mut nonces,
                    )
                });
                let policy = RetryPolicy {
                    base_delay_ms: 1,
                    max_delay_ms: 16,
                    max_attempts: 8,
                    deadline_ms: 30_000,
                    seed: cfg.seed ^ (from as u64),
                };
                let client = ResilientBankClient::new(
                    connector,
                    policy,
                    clock.clone(),
                    cfg.seed ^ ((from as u64) << 24) ^ (to as u64),
                );
                routers[(from - 1) as usize].add_peer(to, RemotePeer::new(client));
            }
        }
        routers
    } else {
        Vec::new()
    };

    World { network, ca, clock, banks, routers, _servers: servers }
}

fn connect(w: &World, cn: &str, seed: u64) -> Result<GridBankClient, BankError> {
    connect_to(w, cn, seed, 1)
}

fn connect_to(w: &World, cn: &str, seed: u64, branch: u16) -> Result<GridBankClient, BankError> {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, cn);
    let dn = SubjectName::new("Load", "Gen", cn);
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).expect("client certificate");
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed ^ 0x9999 }, "proxy");
    let proxy =
        create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).expect("proxy");
    let mut nonces = DeterministicStream::from_u64(seed, b"loadgen-nonce");
    GridBankClient::connect(
        &w.network,
        Address::new(format!("{cn}.host")),
        &branch_address(branch),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
}

fn admin(w: &World, seed: u64) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, "operator");
    let dn = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).expect("admin certificate");
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed ^ 0x8888 }, "proxy");
    let proxy =
        create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).expect("proxy");
    let mut nonces = DeterministicStream::from_u64(seed, b"loadgen-admin-nonce");
    GridBankClient::connect(
        &w.network,
        Address::new("ops.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("admin connects")
}

fn rur(payee_cert: &str) -> gridbank_rur::ResourceUsageRecord {
    RurBuilder::default()
        .user("h", "/O=Load/OU=Gen/CN=payer")
        .job("j", "a", 0, 3_600_000)
        .resource("r", payee_cert, None, 1)
        .line(
            ChargeableItem::Cpu,
            UsageAmount::Time(RurDuration::from_hours(1)),
            Credits::from_gd(1),
        )
        .build()
        .expect("well-formed RUR")
}

/// Per-thread worker state: one payer connection, one payee connection
/// (the cheque/payword redeeming side), their accounts, and a private
/// idempotency-key range.
struct Payer {
    payer: GridBankClient,
    payee: GridBankClient,
    payee_cert: String,
    payee_account: gridbank_core::AccountId,
    next_key: u64,
}

fn setup_payer(w: &World, strategy: Strategy, thread: usize, seed: u64) -> Payer {
    let tag = format!("{}-{thread}", strategy.name());
    let mut payer = connect(w, &format!("payer-{tag}"), seed ^ (thread as u64 * 2 + 11))
        .expect("payer connects");
    let payer_account = payer.create_account(None).expect("payer account");
    let payee_cn = format!("payee-{tag}");
    let mut payee = connect(w, &payee_cn, seed ^ (thread as u64 * 2 + 12)).expect("payee connects");
    let payee_account = payee.create_account(None).expect("payee account");
    let mut ops = admin(w, seed ^ (0xAD00 + thread as u64));
    ops.admin_deposit(payer_account, Credits::from_gd(10_000_000)).expect("funding");
    Payer {
        payer,
        payee,
        payee_cert: format!("/O=Load/OU=Gen/CN={payee_cn}"),
        payee_account,
        next_key: (seed << 20) ^ ((thread as u64) << 40),
    }
}

/// Runs one complete payment and returns `Ok` on success. Transport
/// errors abort the worker (`Err`); bank-level refusals count as op
/// errors (`Ok(false)`).
fn run_op(p: &mut Payer, strategy: Strategy) -> Result<bool, BankError> {
    let outcome = match strategy {
        Strategy::PayBefore => {
            p.next_key += 1;
            p.payer
                .call_keyed(
                    Some(p.next_key),
                    &gridbank_core::BankRequest::DirectTransfer {
                        to: p.payee_account,
                        amount: Credits::from_micro(100),
                        recipient_address: "payee.host".into(),
                    },
                )
                .map(|_| ())
        }
        Strategy::Cheque => p
            .payer
            .request_cheque(&p.payee_cert, Credits::from_gd(2), 1_000_000)
            .and_then(|cheque| p.payee.redeem_cheque(cheque, rur(&p.payee_cert)))
            .map(|_| ()),
        Strategy::PayWord => p
            .payer
            .request_hash_chain(&p.payee_cert, 4, Credits::from_micro(100), 1_000_000)
            .and_then(|chain| {
                let word = chain.payword(4)?;
                p.payee.redeem_payword(
                    chain.commitment.clone(),
                    chain.signature.clone(),
                    word,
                    vec![],
                )
            })
            .map(|_| ()),
    };
    match outcome {
        Ok(()) => Ok(true),
        // Channel/protocol failures poison the connection: stop the
        // worker rather than reporting garbage.
        Err(e @ (BankError::Net(_) | BankError::Protocol(_))) => Err(e),
        Err(_) => Ok(false),
    }
}

struct StrategyResult {
    strategy: Strategy,
    ops: u64,
    errors: u64,
    elapsed: Duration,
}

/// One strategy's results aggregated across `--runs` repetitions.
struct StrategyAgg {
    strategy: Strategy,
    /// Totals across all runs.
    ops: u64,
    errors: u64,
    elapsed: Duration,
    /// Per-run throughput samples (ops/s).
    throughputs: Vec<f64>,
}

/// Closed loop: every worker keeps a constant number of requests in
/// flight (pipelined for pay-before, request/response cycles otherwise)
/// for the whole window. Throughput is "as fast as the system allows" at
/// that concurrency; latency is send-to-response per op.
fn run_closed(w: &World, cfg: &LoadgenConfig, strategy: Strategy, run: usize) -> StrategyResult {
    let hist = gridbank_obs::registry().histogram(&format!("loadgen.op_ns.{}", strategy.name()));
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let warmup_end = start + Duration::from_millis(cfg.warmup_ms);
    let deadline = warmup_end + Duration::from_millis(cfg.duration_ms);
    std::thread::scope(|scope| {
        for thread in 0..cfg.clients {
            let (hist, ops, errors) = (&hist, &ops, &errors);
            let mut p = setup_payer(w, strategy, run * cfg.clients + thread, cfg.seed);
            scope.spawn(move || {
                while Instant::now() < deadline {
                    if strategy == Strategy::PayBefore && cfg.pipeline > 1 {
                        // One pipelined window of keyed transfers.
                        let mut window = Vec::with_capacity(cfg.pipeline);
                        for _ in 0..cfg.pipeline {
                            p.next_key += 1;
                            let sent = Instant::now();
                            match p.payer.send_pipelined(
                                Some(p.next_key),
                                &gridbank_core::BankRequest::DirectTransfer {
                                    to: p.payee_account,
                                    amount: Credits::from_micro(100),
                                    recipient_address: "payee.host".into(),
                                },
                            ) {
                                Ok(id) => window.push((id, sent)),
                                Err(_) => return,
                            }
                        }
                        for (id, sent) in window {
                            let done = Instant::now();
                            match p.payer.recv_pipelined(id) {
                                Ok(_) => {
                                    if done >= warmup_end {
                                        hist.record_duration(done - sent);
                                        ops.fetch_add(1, Ordering::Relaxed);
                                    }
                                }
                                Err(BankError::Net(_)) | Err(BankError::Protocol(_)) => return,
                                Err(_) => {
                                    errors.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                    } else {
                        let sent = Instant::now();
                        match run_op(&mut p, strategy) {
                            Ok(true) => {
                                let done = Instant::now();
                                if done >= warmup_end {
                                    hist.record_duration(done - sent);
                                    ops.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            Ok(false) => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => return,
                        }
                    }
                }
            });
        }
    });
    StrategyResult {
        strategy,
        ops: ops.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: Instant::now().saturating_duration_since(warmup_end),
    }
}

/// Open loop: ops are *scheduled* at a fixed arrival rate and latency is
/// measured from the scheduled instant, so queueing delay shows up in
/// the percentiles instead of being silently absorbed (no coordinated
/// omission).
fn run_open(w: &World, cfg: &LoadgenConfig, strategy: Strategy, run: usize) -> StrategyResult {
    let hist = gridbank_obs::registry().histogram(&format!("loadgen.op_ns.{}", strategy.name()));
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let per_client_rate = (cfg.rate as f64 / cfg.clients as f64).max(1.0);
    let interval = Duration::from_secs_f64(1.0 / per_client_rate);
    let start = Instant::now();
    let warmup_end = start + Duration::from_millis(cfg.warmup_ms);
    let deadline = warmup_end + Duration::from_millis(cfg.duration_ms);
    std::thread::scope(|scope| {
        for thread in 0..cfg.clients {
            let (hist, ops, errors) = (&hist, &ops, &errors);
            let mut p = setup_payer(w, strategy, run * cfg.clients + thread, cfg.seed);
            scope.spawn(move || {
                let mut scheduled = start + interval * (thread as u32 + 1);
                while scheduled < deadline {
                    if let Some(wait) = scheduled.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    match run_op(&mut p, strategy) {
                        Ok(true) => {
                            let done = Instant::now();
                            if done >= warmup_end {
                                hist.record_duration(done - scheduled);
                                ops.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(false) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => return,
                    }
                    scheduled += interval;
                }
            });
        }
    });
    StrategyResult {
        strategy,
        ops: ops.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed: Instant::now().saturating_duration_since(warmup_end),
    }
}

/// Outcome of the cross-branch phase: federated paybefore throughput
/// plus the timed §6 netting pass that follows it.
struct FederationStats {
    branches: usize,
    ops: u64,
    errors: u64,
    elapsed: Duration,
    settle_elapsed: Duration,
    gross_micro: u64,
    net_micro: u64,
    residual_micro: u64,
    pending_after: usize,
}

/// Closed-loop cross-branch paybefore: every payer lives on branch 1,
/// every payee on one of the other branches, so each payment crosses the
/// federation (local debit into clearing + exactly-once `IbCredit` over
/// RPC). Afterwards, one timed settlement pass nets the clearing
/// accounts over the wire.
fn run_federated(w: &World, cfg: &LoadgenConfig) -> FederationStats {
    let hist = gridbank_obs::registry().histogram("loadgen.op_ns.federated");
    let ops = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let start = Instant::now();
    let warmup_end = start + Duration::from_millis(cfg.warmup_ms);
    let deadline = warmup_end + Duration::from_millis(cfg.duration_ms);
    std::thread::scope(|scope| {
        for thread in 0..cfg.clients {
            let (hist, ops, errors) = (&hist, &ops, &errors);
            let payee_branch = (thread % (cfg.branches - 1) + 2) as u16;
            let mut payer =
                connect(w, &format!("fed-payer-{thread}"), cfg.seed ^ (0xF0 + thread as u64))
                    .expect("payer connects");
            let payer_account = payer.create_account(None).expect("payer account");
            let mut payee = connect_to(
                w,
                &format!("fed-payee-{thread}"),
                cfg.seed ^ (0xF100 + thread as u64),
                payee_branch,
            )
            .expect("payee connects");
            let payee_account = payee.create_account(None).expect("payee account");
            let mut ops_client = admin(w, cfg.seed ^ (0xFAD0 + thread as u64));
            ops_client.admin_deposit(payer_account, Credits::from_gd(10_000_000)).expect("funding");
            let mut next_key = (cfg.seed << 18) ^ ((thread as u64) << 44) ^ 0xFED;
            scope.spawn(move || {
                while Instant::now() < deadline {
                    next_key += 1;
                    let sent = Instant::now();
                    let outcome = payer.call_keyed(
                        Some(next_key),
                        &gridbank_core::BankRequest::DirectTransfer {
                            to: payee_account,
                            amount: Credits::from_micro(100),
                            recipient_address: "payee.host".into(),
                        },
                    );
                    match outcome {
                        Ok(_) => {
                            let done = Instant::now();
                            if done >= warmup_end {
                                hist.record_duration(done - sent);
                                ops.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(BankError::Net(_)) | Err(BankError::Protocol(_)) => return,
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = Instant::now().saturating_duration_since(warmup_end);

    // The timed netting pass: every router settles what it owes.
    let settle_start = Instant::now();
    let mut gross = Credits::ZERO;
    let mut net = Credits::ZERO;
    for router in &w.routers {
        let report = router.settle_once().expect("settlement");
        gross = gross.saturating_add(report.total_gross());
        net = net.saturating_add(report.total_net());
    }
    let settle_elapsed = settle_start.elapsed();

    let mut residual = Credits::ZERO;
    let mut pending_after = 0;
    for (i, router) in w.routers.iter().enumerate() {
        for peer in router.peer_branches() {
            residual = residual.saturating_add(router.clearing_balance(peer).abs());
        }
        pending_after += w.banks[i].accounts.db().ib_pending_snapshot().len();
    }
    let micro = |c: Credits| c.metric_micro();
    FederationStats {
        branches: cfg.branches,
        ops: ops.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed,
        settle_elapsed,
        gross_micro: micro(gross),
        net_micro: micro(net),
        residual_micro: micro(residual),
        pending_after,
    }
}

/// The `--market` phase aggregated across `--runs` repetitions.
struct MarketStats {
    runs: usize,
    population: usize,
    spot_payments: u32,
    cross_branch: u32,
    auctions_settled: u32,
    auction_volume_micro: u64,
    barter_volume_micro: u64,
    payword_paid_micro: u64,
    /// `EconomyReport::verify` passed on every run.
    invariants_ok: bool,
    elapsed_secs: Vec<f64>,
    payment_rates: Vec<f64>,
    ledger_digest: u64,
}

/// Runs the full market economy (`gridbank_sim::market`) `--runs`
/// times: Zipf/diurnal spot traffic, flash-crowd auctions settled
/// exactly-once through live federated servers, a barter ring, and
/// PayWord streams. Wall-clock per run feeds the mean ± stddev; the
/// conservation/exactly-once evidence must hold on every run.
fn run_market_phase(cfg: &LoadgenConfig) -> MarketStats {
    use gridbank_sim::market::{run_market, EconomyConfig};
    use gridbank_sim::workload::DiurnalCurve;

    let mut stats = MarketStats {
        runs: cfg.runs,
        population: 0,
        spot_payments: 0,
        cross_branch: 0,
        auctions_settled: 0,
        auction_volume_micro: 0,
        barter_volume_micro: 0,
        payword_paid_micro: 0,
        invariants_ok: true,
        elapsed_secs: Vec::new(),
        payment_rates: Vec::new(),
        ledger_digest: 0,
    };
    for run in 0..cfg.runs {
        let mcfg = EconomyConfig {
            seed: cfg.seed.wrapping_add(run as u64 * 101),
            population_per_branch: 5_000,
            payers_per_branch: 3,
            spot_payments: 400,
            payword_words: 14,
            payword_redemptions: 4,
            diurnal: Some(DiurnalCurve { period_ms: 120_000, trough_pct: 20 }),
            signer_height: 11,
            ..EconomyConfig::default()
        };
        let start = Instant::now();
        let report = match run_market(&mcfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: market run {run} failed: {e}");
                stats.invariants_ok = false;
                continue;
            }
        };
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        if let Err(faults) = report.verify() {
            eprintln!("loadgen: market run {run} invariants violated: {faults}");
            stats.invariants_ok = false;
        }
        stats.population = report.population;
        stats.spot_payments = report.spot_payments;
        stats.cross_branch = report.cross_branch_payments;
        stats.auctions_settled = report.auctions_settled;
        stats.auction_volume_micro = report.auction_volume.metric_micro();
        stats.barter_volume_micro = report.barter_volume.metric_micro();
        stats.payword_paid_micro = report.payword_paid.metric_micro();
        stats.elapsed_secs.push(secs);
        stats.payment_rates.push(report.spot_payments as f64 / secs);
        stats.ledger_digest = report.ledger_digest;
        eprintln!(
            "loadgen: market run {run}: {} payments ({} cross-branch), {} auctions, \
             {:.2}s",
            report.spot_payments, report.cross_branch_payments, report.auctions_settled, secs,
        );
    }
    stats
}

/// The `--recovery` phase aggregated across `--runs` repetitions: one
/// kill/restart drill per run against a fresh durable store.
struct RecoveryStats {
    runs: usize,
    accounts: usize,
    journal_entries_total: usize,
    tail_entries_replayed: usize,
    snapshots_loaded: usize,
    /// Per-run storage-recovery and restart-to-serving times (ms).
    recovery_ms: Vec<f64>,
    restart_to_serving_ms: Vec<f64>,
    /// `RecoveryDrillReport::verify` passed on every run (digest and
    /// funds identical across the kill, replay tail-only).
    invariants_ok: bool,
}

/// Runs the `gridbank_sim::recovery` drill `--runs` times: a live
/// durable branch takes keyed wire payments, checkpoints, takes a
/// replay tail, is killed, and a fresh stack reopens the same store —
/// timing kill → first served RPC. See docs/STORAGE.md §5 and
/// EXPERIMENTS.md E19 for what the numbers mean.
fn run_recovery_phase(cfg: &LoadgenConfig) -> RecoveryStats {
    use gridbank_sim::RecoveryConfig;

    let mut stats = RecoveryStats {
        runs: cfg.runs,
        accounts: 0,
        journal_entries_total: 0,
        tail_entries_replayed: 0,
        snapshots_loaded: 0,
        recovery_ms: Vec::new(),
        restart_to_serving_ms: Vec::new(),
        invariants_ok: true,
    };
    for run in 0..cfg.runs {
        let rcfg = RecoveryConfig {
            seed: cfg.seed.wrapping_add(run as u64 * 71),
            store_dir: std::env::temp_dir()
                .join(format!("gridbank-bench-recovery-{}-{run}", std::process::id())),
            ..RecoveryConfig::default()
        };
        let report = match gridbank_sim::run_recovery(&rcfg) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("loadgen: recovery run {run} failed: {e}");
                stats.invariants_ok = false;
                continue;
            }
        };
        if let Err(why) = report.verify() {
            eprintln!("loadgen: recovery run {run} invariants violated: {why}");
            stats.invariants_ok = false;
        }
        stats.accounts = report.accounts;
        stats.journal_entries_total = report.journal_entries_total;
        stats.tail_entries_replayed = report.tail_entries_replayed;
        stats.snapshots_loaded = report.snapshots_loaded;
        stats.recovery_ms.push(report.recovery_ms as f64);
        stats.restart_to_serving_ms.push(report.restart_to_serving_ms as f64);
        eprintln!(
            "loadgen: recovery run {run}: {} accounts, {} of {} entries replayed, \
             serving again in {}ms",
            report.accounts,
            report.tail_entries_replayed,
            report.journal_entries_total,
            report.restart_to_serving_ms,
        );
    }
    stats
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn render_json(
    cfg: &LoadgenConfig,
    results: &[StrategyAgg],
    federation: Option<&FederationStats>,
    market: Option<&MarketStats>,
    recovery: Option<&RecoveryStats>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"benchmark\": \"payments_loadgen\",\n");
    out.push_str(&format!("  \"mode\": \"{}\",\n", json_escape(&cfg.mode)));
    out.push_str(&format!("  \"duration_ms\": {},\n", cfg.duration_ms));
    out.push_str(&format!("  \"warmup_ms\": {},\n", cfg.warmup_ms));
    out.push_str(&format!("  \"clients\": {},\n", cfg.clients));
    out.push_str(&format!("  \"pipeline_depth\": {},\n", cfg.pipeline));
    if cfg.mode == "open" {
        out.push_str(&format!("  \"target_rate_ops_per_sec\": {},\n", cfg.rate));
    }
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"server_workers\": {},\n", cfg.workers));
    out.push_str(&format!("  \"runs\": {},\n", cfg.runs));
    out.push_str("  \"strategies\": {\n");
    let snapshot = gridbank_obs::registry().snapshot();
    for (i, r) in results.iter().enumerate() {
        let name = r.strategy.name();
        let secs = r.elapsed.as_secs_f64().max(1e-9);
        let (tp_mean, tp_sd) = mean_stddev(&r.throughputs);
        out.push_str(&format!("    \"{name}\": {{\n"));
        out.push_str(&format!("      \"ops\": {},\n", r.ops));
        out.push_str(&format!("      \"errors\": {},\n", r.errors));
        out.push_str(&format!("      \"measured_secs\": {secs:.3},\n"));
        out.push_str(&format!("      \"throughput_ops_per_sec\": {tp_mean:.1},\n"));
        out.push_str(&format!("      \"throughput_stddev_ops_per_sec\": {tp_sd:.1},\n"));
        match snapshot.histogram(&format!("loadgen.op_ns.{name}")) {
            Some(h) => out.push_str(&format!(
                "      \"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
                 \"p95\": {}, \"p99\": {}}}\n",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            )),
            None => out.push_str("      \"latency_ns\": null\n"),
        }
        out.push_str(if i + 1 == results.len() { "    }\n" } else { "    },\n" });
    }
    match federation {
        None => out.push_str("  },\n"),
        Some(f) => {
            let secs = f.elapsed.as_secs_f64().max(1e-9);
            out.push_str("  },\n");
            out.push_str("  \"federation\": {\n");
            out.push_str(&format!("    \"branches\": {},\n", f.branches));
            out.push_str(&format!("    \"cross_branch_ops\": {},\n", f.ops));
            out.push_str(&format!("    \"errors\": {},\n", f.errors));
            out.push_str(&format!("    \"measured_secs\": {secs:.3},\n"));
            out.push_str(&format!("    \"throughput_ops_per_sec\": {:.1},\n", f.ops as f64 / secs));
            match snapshot.histogram("loadgen.op_ns.federated") {
                Some(h) => out.push_str(&format!(
                    "    \"latency_ns\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
                     \"p95\": {}, \"p99\": {}}},\n",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99()
                )),
                None => out.push_str("    \"latency_ns\": null,\n"),
            }
            out.push_str("    \"settlement\": {\n");
            out.push_str(&format!("      \"elapsed_us\": {},\n", f.settle_elapsed.as_micros()));
            out.push_str(&format!("      \"gross_micro\": {},\n", f.gross_micro));
            out.push_str(&format!("      \"net_micro\": {},\n", f.net_micro));
            out.push_str(&format!("      \"residual_clearing_micro\": {},\n", f.residual_micro));
            out.push_str(&format!("      \"pending_credits_after\": {}\n", f.pending_after));
            out.push_str("    }\n");
            out.push_str("  },\n");
        }
    }

    if let Some(m) = market {
        let (el_mean, el_sd) = mean_stddev(&m.elapsed_secs);
        let (rate_mean, rate_sd) = mean_stddev(&m.payment_rates);
        out.push_str("  \"market\": {\n");
        out.push_str(&format!("    \"runs\": {},\n", m.runs));
        out.push_str(&format!("    \"population_per_branch\": {},\n", m.population));
        out.push_str(&format!("    \"spot_payments_per_run\": {},\n", m.spot_payments));
        out.push_str(&format!("    \"cross_branch_payments\": {},\n", m.cross_branch));
        out.push_str(&format!("    \"auctions_settled\": {},\n", m.auctions_settled));
        out.push_str(&format!("    \"auction_volume_micro\": {},\n", m.auction_volume_micro));
        out.push_str(&format!("    \"barter_volume_micro\": {},\n", m.barter_volume_micro));
        out.push_str(&format!("    \"payword_paid_micro\": {},\n", m.payword_paid_micro));
        out.push_str(&format!("    \"invariants_ok\": {},\n", m.invariants_ok));
        out.push_str(&format!(
            "    \"elapsed_secs\": {{\"mean\": {el_mean:.3}, \"stddev\": {el_sd:.3}}},\n"
        ));
        out.push_str(&format!(
            "    \"payments_per_sec\": {{\"mean\": {rate_mean:.1}, \"stddev\": {rate_sd:.1}}},\n"
        ));
        out.push_str(&format!("    \"ledger_digest\": \"{:#018x}\"\n", m.ledger_digest));
        out.push_str("  },\n");
    }

    if let Some(r) = recovery {
        let (rec_mean, rec_sd) = mean_stddev(&r.recovery_ms);
        let (srv_mean, srv_sd) = mean_stddev(&r.restart_to_serving_ms);
        out.push_str("  \"recovery\": {\n");
        out.push_str(&format!("    \"runs\": {},\n", r.runs));
        out.push_str(&format!("    \"accounts\": {},\n", r.accounts));
        out.push_str(&format!("    \"journal_entries_total\": {},\n", r.journal_entries_total));
        out.push_str(&format!("    \"tail_entries_replayed\": {},\n", r.tail_entries_replayed));
        out.push_str(&format!("    \"snapshots_loaded\": {},\n", r.snapshots_loaded));
        out.push_str(&format!(
            "    \"recovery_ms\": {{\"mean\": {rec_mean:.1}, \"stddev\": {rec_sd:.1}}},\n"
        ));
        out.push_str(&format!(
            "    \"restart_to_serving_ms\": {{\"mean\": {srv_mean:.1}, \"stddev\": {srv_sd:.1}}},\n"
        ));
        out.push_str(&format!("    \"invariants_ok\": {}\n", r.invariants_ok));
        out.push_str("  },\n");
    }

    // Server-side stage decomposition (queue wait → reply write) scraped
    // from the `server.stage.*` histograms the server recorded while
    // under load. All-null when `--telemetry off`.
    out.push_str(&format!("  \"telemetry\": {},\n", cfg.telemetry));
    out.push_str("  \"server_stages\": {\n");
    const STAGES: [&str; 6] = ["queue", "decode", "dispatch", "lock", "journal", "reply"];
    for (i, stage) in STAGES.iter().enumerate() {
        let comma = if i + 1 == STAGES.len() { "" } else { "," };
        match snapshot.histogram(&format!("server.stage.{stage}_ns")) {
            Some(h) => out.push_str(&format!(
                "    \"{stage}\": {{\"count\": {}, \"mean\": {:.0}, \"p50\": {}, \
                 \"p95\": {}, \"p99\": {}}}{comma}\n",
                h.count,
                h.mean(),
                h.p50(),
                h.p95(),
                h.p99()
            )),
            None => out.push_str(&format!("    \"{stage}\": null{comma}\n")),
        }
    }
    out.push_str("  }\n}\n");
    out
}

fn loadgen(args: &[String]) {
    let cfg = parse_args(args);
    // Stage timing is server-side and gated: without this the
    // `server_stages` section scrapes empty ("disabled means free").
    gridbank_obs::set_telemetry(cfg.telemetry);
    eprintln!(
        "loadgen: mode={} strategies={:?} clients={} pipeline={} duration={}ms warmup={}ms",
        cfg.mode,
        cfg.strategies.iter().map(|s| s.name()).collect::<Vec<_>>(),
        cfg.clients,
        cfg.pipeline,
        cfg.duration_ms,
        cfg.warmup_ms,
    );
    let w = start_world(&cfg);
    let mut results = Vec::new();
    for &strategy in &cfg.strategies {
        let mut agg = StrategyAgg {
            strategy,
            ops: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            throughputs: Vec::new(),
        };
        for run in 0..cfg.runs {
            let r = if cfg.mode == "open" {
                run_open(&w, &cfg, strategy, run)
            } else {
                run_closed(&w, &cfg, strategy, run)
            };
            let throughput = r.ops as f64 / r.elapsed.as_secs_f64().max(1e-9);
            eprintln!(
                "loadgen: {} run {run}: ops={} errors={} ({throughput:.1} ops/s)",
                r.strategy.name(),
                r.ops,
                r.errors,
            );
            agg.ops += r.ops;
            agg.errors += r.errors;
            agg.elapsed += r.elapsed;
            agg.throughputs.push(throughput);
        }
        if cfg.runs > 1 {
            let (mean, sd) = mean_stddev(&agg.throughputs);
            eprintln!(
                "loadgen: {} over {} runs: {mean:.1} ± {sd:.1} ops/s",
                strategy.name(),
                cfg.runs,
            );
        }
        results.push(agg);
    }
    let federation = (cfg.branches > 1).then(|| {
        let f = run_federated(&w, &cfg);
        eprintln!(
            "loadgen: federated ops={} errors={} ({:.1} ops/s), settle gross={}µ net={}µ in {}µs",
            f.ops,
            f.errors,
            f.ops as f64 / f.elapsed.as_secs_f64().max(1e-9),
            f.gross_micro,
            f.net_micro,
            f.settle_elapsed.as_micros(),
        );
        if f.residual_micro != 0 || f.pending_after != 0 {
            eprintln!(
                "loadgen: WARNING settlement residue: clearing {}µ, {} pending credits",
                f.residual_micro, f.pending_after
            );
        }
        f
    });
    let market = cfg.market.then(|| {
        let m = run_market_phase(&cfg);
        let (mean, sd) = mean_stddev(&m.payment_rates);
        eprintln!(
            "loadgen: market over {} runs: {mean:.1} ± {sd:.1} payments/s, invariants {}",
            m.runs,
            if m.invariants_ok { "OK" } else { "VIOLATED" },
        );
        m
    });
    let recovery = cfg.recovery.then(|| {
        let r = run_recovery_phase(&cfg);
        let (mean, sd) = mean_stddev(&r.restart_to_serving_ms);
        eprintln!(
            "loadgen: recovery over {} runs: restart-to-serving {mean:.1} ± {sd:.1} ms, \
             invariants {}",
            r.runs,
            if r.invariants_ok { "OK" } else { "VIOLATED" },
        );
        r
    });
    let json = render_json(&cfg, &results, federation.as_ref(), market.as_ref(), recovery.as_ref());
    let mut file = std::fs::File::create(&cfg.out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", cfg.out));
    file.write_all(json.as_bytes()).expect("write results");
    eprintln!("loadgen: wrote {}", cfg.out);
    if recovery.as_ref().is_some_and(|r| !r.invariants_ok) {
        eprintln!("loadgen: recovery drill invariants violated");
        std::process::exit(1);
    }
    // A recovery-drill run is a complete run even when the strategy
    // window was too short to land a payment on a loaded machine.
    if results.iter().all(|r| r.ops == 0) && recovery.is_none() {
        eprintln!("loadgen: no operation completed — check configuration");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("loadgen") => loadgen(&args[1..]),
        _ => usage(),
    }
}
