//! Shared fixtures for the GridBank benchmark harness.
//!
//! One bench target per experiment in EXPERIMENTS.md (E2, E4–E6,
//! E8–E13). Every bench uses [`quick`] Criterion settings so the full
//! suite finishes in minutes while still reporting stable medians.

use std::sync::Arc;

use criterion::Criterion;

use gridbank_core::api::BankRequest;
use gridbank_core::clock::Clock;
use gridbank_core::db::AccountId;
use gridbank_core::port::{BankPort, InProcessBank};
use gridbank_core::server::{GridBank, GridBankConfig};
use gridbank_crypto::cert::SubjectName;
use gridbank_rur::Credits;

/// Criterion tuned for a broad suite: small samples, short measurement.
///
/// Set `GRIDBANK_TELEMETRY=1` to run the same suite with tracing and
/// metrics live — the pair of runs quantifies the telemetry overhead
/// (EXPERIMENTS.md E14).
pub fn quick() -> Criterion {
    if std::env::var_os("GRIDBANK_TELEMETRY").is_some_and(|v| v == "1") {
        gridbank_obs::set_telemetry(true);
    }
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(800))
        .warm_up_time(std::time::Duration::from_millis(200))
        .without_plots()
        .configure_from_args()
}

/// The standard administrator subject.
pub fn admin() -> SubjectName {
    SubjectName("/O=GridBank/OU=Admin/CN=operator".into())
}

/// A bank with `2^signer_height` signing capacity.
pub fn bank(signer_height: usize) -> Arc<GridBank> {
    Arc::new(GridBank::new(
        GridBankConfig { signer_height, ..GridBankConfig::default() },
        Clock::new(),
    ))
}

/// Creates and funds an account, returning its port and id.
pub fn funded(bank: &Arc<GridBank>, cn: &str, gd: i64) -> (InProcessBank, AccountId) {
    let subject = SubjectName::new("Bench", "Users", cn);
    let mut port = InProcessBank::new(bank.clone(), subject);
    let id = port.create_account(None).expect("fresh account");
    if gd > 0 {
        bank.handle(
            &admin(),
            BankRequest::AdminDeposit { account: id, amount: Credits::from_gd(gd) },
        );
    }
    (port, id)
}
