//! Trace-context propagation across federated forwarding (PR 6).
//!
//! A client-side root span must cover the whole cross-branch payment
//! path: the payer's `rpc_call`, branch 1's `rpc_serve`, the
//! inter-branch `rpc_call` branch 1 makes as a federation client to
//! ship the `IbCredit`, and branch 2's `rpc_serve` — one trace id
//! stitched across three independently-connected parties by the wire
//! protocol's 16-byte trace header. The same request, forced slow, must
//! land in the flight recorder as a complete tree.
//!
//! Kept to a single `#[test]` because the span store and flight
//! recorder are process-global.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use gridbank_suite::bank::client::GridBankClient;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::federation::{FederationRouter, RemotePeer};
use gridbank_suite::bank::resilient::{Connector, ResilientBankClient};
use gridbank_suite::bank::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_suite::crypto::rng::DeterministicStream;
use gridbank_suite::net::retry::RetryPolicy;
use gridbank_suite::net::transport::{Address, Network};
use gridbank_suite::obs::flight;

struct World {
    network: Network,
    clock: Clock,
    ca: CertificateAuthority,
    banks: Vec<Arc<GridBank>>,
    _servers: Vec<GridBankServer>,
}

/// Two live server stacks federated over real RPC: branch 1 routes to
/// branch 2 through a pooled resilient client, exactly like the CLI's
/// `settle` world.
fn two_branch_world() -> World {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let network = Network::new();
    let mut banks = Vec::new();
    let mut servers = Vec::new();
    for b in 1..=2u16 {
        let bank = Arc::new(GridBank::new(
            GridBankConfig {
                branch: b,
                signer_height: 8,
                gate_mode: GateMode::AllowEnrollment,
                key_material: KeyMaterial { seed: 0xFED0 + b as u64 },
                ..GridBankConfig::default()
            },
            clock.clone(),
        ));
        let tls = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 100 + b as u64 }, "tls"));
        let cert = ca
            .issue(
                SubjectName::new("GridBank", "Server", &format!("branch-{b:04}")),
                tls.verifying_key(),
                0,
                u64::MAX / 2,
            )
            .unwrap();
        let server = GridBankServer::start(
            &network,
            Address::new(format!("branch-{b}")),
            Arc::clone(&bank),
            ServerCredentials { certificate: cert, identity: tls, ca_key: ca.verifying_key() },
            b as u64,
        )
        .unwrap();
        banks.push(bank);
        servers.push(server);
    }

    let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
    for (from, to) in [(1u16, 2u16), (2, 1)] {
        let id =
            SigningIdentity::generate_small(KeyMaterial { seed: 0x5E77 + from as u64 }, "settle");
        let dn = SubjectName::new("GridBank", "Settlement", &format!("branch-{from:04}"));
        let cert = ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
        let (net, clk, ca_key) = (network.clone(), clock.clone(), ca.verifying_key());
        let target = Address::new(format!("branch-{to}"));
        let mut attempt = 0u64;
        let connector: Connector = Box::new(move || {
            attempt += 1;
            let id = SigningIdentity::generate_small(
                KeyMaterial { seed: 0x5E77 + from as u64 },
                "settle",
            );
            let proxy_id = SigningIdentity::generate_small(
                KeyMaterial { seed: 0x9000 + (from as u64) * 977 + attempt },
                "proxy",
            );
            let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1)?;
            let mut nonces = DeterministicStream::from_u64(
                ((from as u64) << 32) | ((to as u64) << 16) | attempt,
                b"fed-nonce",
            );
            GridBankClient::connect(
                &net,
                Address::new(format!("fed-{from}-{to}-{attempt}")),
                &target,
                ca_key,
                clk.now_ms(),
                &proxy,
                &proxy_id,
                &mut nonces,
            )
        });
        let policy = RetryPolicy {
            base_delay_ms: 1,
            max_delay_ms: 8,
            max_attempts: 6,
            deadline_ms: 10_000,
            seed: from as u64,
        };
        let client =
            ResilientBankClient::new(connector, policy, clock.clone(), (from as u64) * 31 + 7);
        routers[(from - 1) as usize].add_peer(to, RemotePeer::new(client));
    }

    World { network, clock, ca, banks, _servers: servers }
}

fn connect(world: &World, dn: SubjectName, seed: u64, branch: u16) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, "client");
    let cert = world.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 5000 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(seed, b"nonce");
    GridBankClient::connect(
        &world.network,
        Address::new(format!("client-{seed}")),
        &Address::new(format!("branch-{branch}")),
        world.ca.verifying_key(),
        world.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .unwrap()
}

#[test]
fn trace_context_crosses_federated_forwarding() {
    gridbank_suite::obs::set_telemetry(true);
    let world = two_branch_world();

    // A payee on branch 2 and a funded payer on branch 1: paying the
    // payee crosses the federation (clearing debit at branch 1, then an
    // exactly-once `IbCredit` shipped to branch 2 over live RPC).
    let mut payee = connect(&world, SubjectName::new("Test", "Traces", "payee"), 21, 2);
    let payee_account = payee.create_account(None).unwrap();
    let mut payer = connect(&world, SubjectName::new("Test", "Traces", "payer"), 11, 1);
    let payer_account = payer.create_account(None).unwrap();
    let mut admin = connect(&world, SubjectName("/O=GridBank/OU=Admin/CN=operator".into()), 31, 1);
    admin.admin_deposit(payer_account, gridbank_suite::rur::Credits::from_gd(100)).unwrap();

    // Retain everything: threshold 0 marks every request slow, so the
    // cross-branch payment below must land in the flight recorder.
    flight::configure(flight::FlightConfig { slow_threshold_us: 0, capacity: 8 });
    gridbank_suite::obs::set_flight_recorder(true);
    let _ = gridbank_suite::obs::take_spans();

    let trace_id = {
        let root = gridbank_suite::obs::root_span("test", "federated_payment");
        payer
            .direct_transfer(
                payee_account,
                gridbank_suite::rur::Credits::from_gd(1),
                "payee.vo2.org",
            )
            .unwrap();
        root.trace_id()
    };

    // Server-side serve spans close just after the reply is written, so
    // they can trail the client's return by a scheduling quantum.
    let deadline = Instant::now() + Duration::from_secs(10);
    let ours = loop {
        let spans = gridbank_suite::obs::buffered_spans();
        let ours: Vec<_> = spans.into_iter().filter(|s| s.trace_id == trace_id).collect();
        let serves = ours.iter().filter(|s| s.name == "rpc_serve").count();
        if serves >= 2 || Instant::now() > deadline {
            break ours;
        }
        std::thread::sleep(Duration::from_millis(5));
    };

    // One trace, two hops: the payer's rpc_call and branch 1's
    // rpc_serve, then the federation's own rpc_call shipping the
    // IbCredit and branch 2's rpc_serve — all under the client root.
    let count = |name: &str| ours.iter().filter(|s| s.name == name).count();
    assert!(count("rpc_serve") >= 2, "both serve spans in trace {trace_id:#x}: {ours:#?}");
    assert!(count("rpc_call") >= 2, "both call spans in trace {trace_id:#x}: {ours:#?}");
    assert_eq!(count("cross_branch_transfer"), 1, "{ours:#?}");
    assert_eq!(count("federated_payment"), 1, "{ours:#?}");

    // The tree is complete: exactly one root, and every other span's
    // parent is present in the same trace.
    let ids: std::collections::HashSet<u64> = ours.iter().map(|s| s.span_id).collect();
    let roots: Vec<_> = ours.iter().filter(|s| s.parent_span == 0).collect();
    assert_eq!(roots.len(), 1, "{ours:#?}");
    assert_eq!(roots[0].name, "federated_payment");
    for span in &ours {
        assert!(
            span.parent_span == 0 || ids.contains(&span.parent_span),
            "span {} ({}) has a parent outside the trace:\n{ours:#?}",
            span.span_id,
            span.name,
        );
    }

    // The forced-slow request was retained by the flight recorder with
    // its full cross-process tree, and the dump renders it.
    let retained = flight::retained();
    let tree = retained
        .iter()
        .find(|t| t.trace_id == trace_id)
        .unwrap_or_else(|| panic!("trace {trace_id:#x} not retained: {retained:#?}"));
    assert!(tree.spans.iter().filter(|s| s.name == "rpc_serve").count() >= 2, "{tree:#?}");
    let dump = flight::dump();
    assert!(dump.contains("federated_payment"), "{dump}");
    assert!(dump.contains("rpc_serve"), "{dump}");

    gridbank_suite::obs::set_flight_recorder(false);

    // Sanity: the credit really landed on branch 2.
    let rec = world.banks[1].accounts.account_details(&payee_account).unwrap();
    assert_eq!(rec.available, gridbank_suite::rur::Credits::from_gd(1));
}
