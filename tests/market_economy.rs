//! The population-scale market economy, end-to-end through live
//! servers: 100k accounts across two federated branches, a Zipf hot
//! set under a diurnal arrival curve, flash-crowd capacity auctions
//! settled exactly-once through the bank (with deliberate duplicate
//! re-sends), a co-op barter ring, and concurrent PayWord streams —
//! every hard invariant checked by `EconomyReport::verify`.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use gridbank_suite::rur::Credits;
use gridbank_suite::sim::market::{run_market, EconomyConfig};
use gridbank_suite::sim::workload::DiurnalCurve;

fn population_config() -> EconomyConfig {
    EconomyConfig {
        seed: 0x6B1D_2003,
        // 50k accounts per branch — 100k across the federation.
        population_per_branch: 50_000,
        payers_per_branch: 4,
        spot_payments: 1_500,
        cross_branch_pct: 35,
        zipf_s_permille: 1_100,
        auctions: 3,
        bidders_per_auction: 4,
        barter_members: 6,
        barter_rounds: 3,
        payword_streams: 3,
        // 4 redemption calls of ⌊14/4⌋ = 3 words leave a 2-word tail,
        // so closing at expiry must release a nonzero reservation.
        payword_words: 14,
        payword_redemptions: 4,
        mean_interarrival_ms: 30,
        diurnal: Some(DiurnalCurve { period_ms: 200_000, trough_pct: 15 }),
        // 2^12 signed instruments per branch covers the traffic.
        signer_height: 12,
    }
}

#[test]
fn population_scale_market_conserves_and_settles_exactly_once() {
    let cfg = population_config();
    let report = run_market(&cfg).expect("scenario runs");

    // Hard invariants: conservation across both ledgers (clearing and
    // suspense included), zero residual clearing after netting, zero
    // pending inter-branch credits, zero stranded locked funds, the
    // `ib.credit.stranded` counter unmoved, and exactly-once
    // settlement of every auction win despite duplicate re-sends.
    report.verify().unwrap_or_else(|faults| panic!("market invariants violated: {faults}"));

    // The economy actually exercised every traffic class at scale.
    assert_eq!(report.population, 50_000);
    assert_eq!(report.spot_payments, 1_500);
    assert!(
        report.cross_branch_payments > 300,
        "expected a third of {} payments to cross branches, saw {}",
        report.spot_payments,
        report.cross_branch_payments
    );
    assert_eq!(report.auctions_settled, 3);
    assert_eq!(report.dutch_auctions, 1, "the first auction finds the provider idle");
    assert_eq!(report.english_auctions, 2, "flash crowd flips later auctions to English");
    assert_eq!(report.duplicate_settlements_deduped, 3);
    assert!(report.exactly_once_ok);
    assert!(report.auction_volume > Credits::ZERO);
    assert!(report.barter_volume > Credits::ZERO);
    assert!(report.payword_paid > Credits::ZERO);
    assert!(report.payword_released > Credits::ZERO, "unspent chain tails must release");
    assert_eq!(report.stranded_locked_micro, 0);
    assert_eq!(report.stranded_credit_delta, 0);
}
