//! E6 — §2.3 access scalability: many consumers share a small pool of
//! template accounts with dynamic grid-mapfile bindings, concurrently.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;
use std::time::Duration as StdDuration;

use gridbank_suite::bank::api::BankRequest;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::port::{BankPort, InProcessBank};
use gridbank_suite::bank::server::{GridBank, GridBankConfig};
use gridbank_suite::crypto::cert::SubjectName;
use gridbank_suite::gsp::charging::PaymentInstrument;
use gridbank_suite::gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_suite::gsp::template::TemplatePool;
use gridbank_suite::gsp::GridMapfile;
use gridbank_suite::meter::levels::AccountingLevel;
use gridbank_suite::meter::machine::{JobSpec, MachineSpec, OsFlavour};
use gridbank_suite::rur::record::ChargeableItem;
use gridbank_suite::rur::Credits;
use gridbank_suite::trade::pricing::FlatPricing;
use gridbank_suite::trade::rates::ServiceRates;

#[test]
fn many_consumers_few_template_accounts() {
    // 24 consumers, pool of 3 accounts: everyone eventually gets served
    // because bindings are transient.
    let pool = Arc::new(TemplatePool::new("grid", 3, 0o700));
    let mapfile = Arc::new(GridMapfile::new());
    let served = Arc::new(std::sync::atomic::AtomicUsize::new(0));

    std::thread::scope(|s| {
        for c in 0..24 {
            let pool = pool.clone();
            let mapfile = mapfile.clone();
            let served = served.clone();
            s.spawn(move || {
                let cert = format!("/CN=consumer-{c}");
                let account = pool
                    .acquire(StdDuration::from_secs(10))
                    .expect("pool should cycle fast enough");
                mapfile.bind(&cert, &account.local_name).expect("fresh binding");
                // "Execute" briefly while bound.
                std::thread::yield_now();
                assert_eq!(mapfile.lookup(&cert).as_deref(), Some(account.local_name.as_str()));
                mapfile.unbind(&cert).expect("still bound");
                pool.release(account);
                served.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
        }
    });

    assert_eq!(served.load(std::sync::atomic::Ordering::Relaxed), 24);
    assert_eq!(pool.free_count(), 3);
    assert!(mapfile.is_empty(), "all bindings removed after execution");
    let stats = pool.stats();
    assert_eq!(stats.acquisitions, 24);
    assert_eq!(stats.releases, 24);
    assert!(stats.high_watermark <= 3);
}

#[test]
fn provider_pipeline_recycles_accounts_across_paying_consumers() {
    let bank = Arc::new(GridBank::new(
        GridBankConfig { signer_height: 9, ..GridBankConfig::default() },
        Clock::new(),
    ));
    let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let gsp = SubjectName::new("UM", "GRIDS", "gsp");
    let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
    gsp_port.create_account(None).unwrap();
    let rates = ServiceRates::new().with(ChargeableItem::Cpu, Credits::from_gd(1));
    let mut provider = GridServiceProvider::new(
        GspConfig {
            cert: gsp.0.clone(),
            host: "gsp.grid.org".into(),
            machines: vec![MachineSpec {
                host: "node".into(),
                os: OsFlavour::Linux,
                speed: 500,
                cores: 8,
                memory_mb: 16_384,
            }],
            base_rates: rates.clone(),
            pool_size: 2, // deliberately tiny
            accounting_level: AccountingLevel::Standard,
            machine_seed: 3,
        },
        bank.verifying_key(),
        InProcessBank::new(bank.clone(), gsp.clone()),
        Box::new(FlatPricing),
    );

    // 10 distinct consumers run jobs sequentially through a pool of 2.
    let mut local_accounts = std::collections::HashSet::new();
    for c in 0..10 {
        let consumer = SubjectName::new("Org", "Users", &format!("user-{c}"));
        let mut port = InProcessBank::new(bank.clone(), consumer.clone());
        let account = port.create_account(None).unwrap();
        bank.handle(&admin, BankRequest::AdminDeposit { account, amount: Credits::from_gd(10) });
        let cheque = port.request_cheque(&gsp.0, Credits::from_gd(5), 1_000_000).unwrap();
        let outcome = provider
            .execute_job(
                &consumer.0,
                PaymentInstrument::Cheque(cheque),
                &JobSpec::cpu_bound(100_000),
                &rates,
                0,
            )
            .unwrap();
        local_accounts.insert(outcome.local_account);
    }
    assert_eq!(provider.jobs_served, 10);
    // Only pool accounts were ever used.
    assert!(local_accounts.len() <= 2, "used {local_accounts:?}");
    assert!(provider.mapfile.is_empty());
    assert_eq!(provider.pool.free_count(), 2);
    // Every consumer is charged against their own bank account.
    for c in 0..10 {
        let rec = bank.accounts.account_by_cert(&format!("/O=Org/OU=Users/CN=user-{c}")).unwrap();
        assert!(rec.available < Credits::from_gd(10), "user-{c} was never charged");
        assert_eq!(rec.locked, Credits::ZERO);
    }
}

#[test]
fn binding_conflicts_are_impossible_by_construction() {
    // Even under racing bind attempts, a local account never serves two
    // certs and a cert never holds two accounts.
    let mapfile = Arc::new(GridMapfile::new());
    let pool = Arc::new(TemplatePool::new("grid", 4, 0o700));
    std::thread::scope(|s| {
        for t in 0..8 {
            let mapfile = mapfile.clone();
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..100 {
                    let cert = format!("/CN=t{t}-i{i}");
                    if let Some(acct) = pool.try_acquire() {
                        mapfile.bind(&cert, &acct.local_name).expect("fresh pair");
                        mapfile.unbind(&cert).unwrap();
                        pool.release(acct);
                    }
                }
            });
        }
    });
    assert!(mapfile.is_empty());
    assert_eq!(pool.free_count(), 4);
}
