//! E1 — Figure 1 end to end, over the authenticated network path.
//!
//! One bank server, two providers (four resources total), one consumer.
//! Everything flows over mutually-authenticated secure channels: account
//! opening, deposits, cheque purchase, job execution, metering,
//! redemption, statements.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use gridbank_suite::bank::client::GridBankClient;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_suite::crypto::rng::DeterministicStream;
use gridbank_suite::gsp::charging::PaymentInstrument;
use gridbank_suite::gsp::provider::{GridServiceProvider, GspConfig};
use gridbank_suite::meter::levels::AccountingLevel;
use gridbank_suite::meter::machine::{JobSpec, MachineSpec, OsFlavour};
use gridbank_suite::net::transport::{Address, Network};
use gridbank_suite::net::NetError;
use gridbank_suite::rur::codec::Decode;
use gridbank_suite::rur::record::{ChargeableItem, ResourceUsageRecord};
use gridbank_suite::rur::Credits;
use gridbank_suite::trade::pricing::FlatPricing;
use gridbank_suite::trade::rates::ServiceRates;

struct World {
    network: Network,
    ca: CertificateAuthority,
    clock: Clock,
    bank: Arc<GridBank>,
    _server: GridBankServer,
}

fn world(gate_mode: GateMode) -> World {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig { gate_mode, signer_height: 9, ..GridBankConfig::default() },
        clock.clone(),
    ));
    let bank_identity = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 }, "bank-tls"));
    let bank_cert = ca
        .issue(
            SubjectName::new("GridBank", "Server", "gridbank"),
            bank_identity.verifying_key(),
            0,
            u64::MAX / 2,
        )
        .unwrap();
    let network = Network::new();
    let server = GridBankServer::start(
        &network,
        Address::new("bank"),
        bank.clone(),
        ServerCredentials {
            certificate: bank_cert,
            identity: bank_identity,
            ca_key: ca.verifying_key(),
        },
        7,
    )
    .unwrap();
    World { network, ca, clock, bank, _server: server }
}

fn connect(
    w: &World,
    cn: &str,
    seed: u64,
) -> Result<GridBankClient, gridbank_suite::bank::BankError> {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, cn);
    let dn = SubjectName::new("Org", "Unit", cn);
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 5000 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(seed, b"nonce");
    GridBankClient::connect(
        &w.network,
        Address::new(format!("{cn}.host")),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
}

fn admin_client(w: &World) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed: 999 }, "operator");
    let dn = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 998 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(997, b"nonce");
    GridBankClient::connect(
        &w.network,
        Address::new("ops.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("admin connects")
}

fn rates() -> ServiceRates {
    ServiceRates::new()
        .with(ChargeableItem::Cpu, Credits::from_gd(2))
        .with(ChargeableItem::Memory, Credits::from_milli(10))
        .with(ChargeableItem::Network, Credits::from_milli(5))
}

#[test]
fn figure1_interaction_over_the_wire() {
    let w = world(GateMode::AllowEnrollment);

    // Consumer and provider enroll over authenticated channels.
    let mut alice = connect(&w, "alice", 10).expect("alice connects");
    let alice_account = alice.create_account(Some("UWA".into())).unwrap();
    let mut gsp_client = connect(&w, "gsp-alpha", 11).expect("gsp connects");
    gsp_client.create_account(None).unwrap();

    let mut operator = admin_client(&w);
    operator.admin_deposit(alice_account, Credits::from_gd(200)).unwrap();

    // Two providers, four resources between them (R1-R4 of Figure 1);
    // this one serves the job, its GBCM redeeming over the wire.
    let gsp_cert = "/O=Org/OU=Unit/CN=gsp-alpha".to_string();
    let mut provider = GridServiceProvider::new(
        GspConfig {
            cert: gsp_cert.clone(),
            host: "gsp-alpha.grid.org".into(),
            machines: (1..=4)
                .map(|i| MachineSpec {
                    host: format!("r{i}"),
                    os: OsFlavour::Linux,
                    speed: 150,
                    cores: 4,
                    memory_mb: 8_192,
                })
                .collect(),
            base_rates: rates(),
            pool_size: 4,
            accounting_level: AccountingLevel::Standard,
            machine_seed: 7,
        },
        w.bank.verifying_key(),
        gsp_client,
        Box::new(FlatPricing),
    );

    let quote = provider.quote(w.clock.now_ms(), 60_000).unwrap();
    let cheque = alice.request_cheque(&gsp_cert, Credits::from_gd(30), 600_000).unwrap();
    let job = JobSpec {
        work: 900_000,
        parallelism: 2,
        memory_mb: 512,
        storage_mb: 0,
        network_mb: 20,
        sys_pct: 5,
    };
    let outcome = provider
        .execute_job(
            "/O=Org/OU=Unit/CN=alice",
            PaymentInstrument::Cheque(cheque),
            &job,
            &quote.rates,
            w.clock.now_ms(),
        )
        .expect("job executes");

    assert!(outcome.charge.is_positive());
    assert_eq!(outcome.paid, outcome.charge);

    // Bank-side state reflects the deal, and the stored RUR decodes.
    let alice_rec = alice.my_account().unwrap();
    assert_eq!(alice_rec.available, Credits::from_gd(200).checked_sub(outcome.paid).unwrap());
    assert_eq!(alice_rec.locked, Credits::ZERO);
    let st = alice.statement(alice_account, 0, u64::MAX).unwrap();
    assert_eq!(st.transfers.len(), 1);
    let stored = ResourceUsageRecord::from_bytes(&st.transfers[0].rur_blob).unwrap();
    assert_eq!(stored, outcome.rur);
    assert_eq!(stored.resource.certificate_name, gsp_cert);
}

#[test]
fn strict_gate_refuses_unknown_subjects_at_connection() {
    let w = world(GateMode::Strict);
    // Nobody has an account yet: the connection itself is refused —
    // "clients simply cannot send any requests before a connection is
    // established" (§3.2).
    let err = match connect(&w, "stranger", 77) {
        Err(e) => e,
        Ok(_) => panic!("stranger should be refused"),
    };
    assert!(
        matches!(err, gridbank_suite::bank::BankError::Net(NetError::Refused { .. })),
        "got {err:?}"
    );

    // An admin is in the administrator table, so the gate admits them;
    // they can then act on the bank.
    let mut operator = admin_client(&w);
    // The admin has no account, and strict mode has no enrollment: the
    // protocol-level restriction still applies to account-less calls
    // other than account creation.
    let r = operator.my_account();
    assert!(r.is_err());
}

#[test]
fn forged_client_chain_never_reaches_the_bank() {
    let w = world(GateMode::AllowEnrollment);
    // A client whose certificate chain is signed by a rogue CA.
    let rogue_ca = CertificateAuthority::new(
        SubjectName::new("Rogue", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 666 }, "rogue"),
    );
    let id = SigningIdentity::generate_small(KeyMaterial { seed: 70 }, "mallory");
    let dn = SubjectName::new("Evil", "Org", "mallory");
    let cert = rogue_ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 71 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(72, b"nonce");
    let res = GridBankClient::connect(
        &w.network,
        Address::new("mallory.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    );
    assert!(res.is_err());
}

#[test]
fn expired_proxy_is_rejected_later() {
    let w = world(GateMode::AllowEnrollment);
    // Issue a proxy valid only until t=1000.
    let id = SigningIdentity::generate_small(KeyMaterial { seed: 80 }, "carol");
    let dn = SubjectName::new("Org", "Unit", "carol");
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 81 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, 1_000, 1).unwrap();

    // Works now...
    let mut nonces = DeterministicStream::from_u64(82, b"nonce");
    let c = GridBankClient::connect(
        &w.network,
        Address::new("carol.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    );
    assert!(c.is_ok());

    // ...but not after the virtual clock passes the proxy expiry: single
    // sign-on credentials are short-lived by design.
    w.clock.advance(2_000);
    let mut nonces = DeterministicStream::from_u64(83, b"nonce");
    let c = GridBankClient::connect(
        &w.network,
        Address::new("carol2.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    );
    assert!(c.is_err());
}
