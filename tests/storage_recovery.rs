//! Sharded on-disk store — crash recovery suite (docs/STORAGE.md).
//!
//! Every test follows the same shape: run real banking traffic against a
//! durable bank, "kill" it (drop the process state so only the files
//! survive), damage the files the way a specific crash would, reopen,
//! and assert the durability contract: conservation of funds,
//! exactly-once idempotency and cross-branch credits, and tail-only
//! replay (the [`RecoveryReport`] counts exactly the entries past the
//! last durable snapshot).

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use gridbank_suite::bank::api::{BankRequest, BankResponse};
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::server::{GridBank, GridBankConfig};
use gridbank_suite::bank::store::{self, StoreConfig};
use gridbank_suite::bank::BankError;
use gridbank_suite::crypto::cert::SubjectName;
use gridbank_suite::rur::Credits;

/// A fresh per-test store directory under the system temp dir.
fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gridbank-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config() -> GridBankConfig {
    GridBankConfig { signer_height: 5, ..GridBankConfig::default() }
}

/// Tests snapshot manually; `snapshot_every: u64::MAX` keeps the
/// server-driven incremental checkpointer out of the way.
fn store_config(dir: &Path) -> StoreConfig {
    StoreConfig { snapshot_every: u64::MAX, ..StoreConfig::at(dir).no_fsync() }
}

fn open_account(bank: &GridBank, s: &SubjectName) -> gridbank_suite::bank::AccountId {
    match bank.handle(s, BankRequest::CreateAccount { organization: None }) {
        BankResponse::AccountCreated { account } => account,
        other => panic!("create failed: {other:?}"),
    }
}

const OPERATOR: &str = "/O=GridBank/OU=Admin/CN=operator";

fn deposit(bank: &GridBank, account: gridbank_suite::bank::AccountId, gd: i64) {
    let operator = SubjectName(OPERATOR.into());
    match bank
        .handle(&operator, BankRequest::AdminDeposit { account, amount: Credits::from_gd(gd) })
    {
        BankResponse::Confirmed(_) | BankResponse::Confirmation { .. } => {}
        other => panic!("deposit failed: {other:?}"),
    }
}

fn balance_of(bank: &GridBank, id: gridbank_suite::bank::AccountId) -> Credits {
    bank.all_accounts().into_iter().find(|r| r.id == id).expect("account exists").available
}

/// The newest segment file in each shard directory that holds any
/// record bytes past its header, paired with its byte length.
fn newest_segments(dir: &Path) -> Vec<(PathBuf, u64)> {
    let mut out = Vec::new();
    for shard in 0..64u32 {
        let sdir = dir.join(format!("shard-{shard:02}"));
        let Ok(entries) = std::fs::read_dir(&sdir) else { continue };
        let mut segs: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "gbj"))
            .collect();
        segs.sort();
        if let Some(seg) = segs.pop() {
            let len = std::fs::metadata(&seg).map(|m| m.len()).unwrap_or(0);
            if len > 20 {
                out.push((seg, len));
            }
        }
    }
    out
}

#[test]
fn restart_replays_only_the_journal_tail() {
    let dir = test_dir("tail-only");
    let (bank, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert_eq!(report.tail_entries_replayed, 0, "fresh store replays nothing");

    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let a = open_account(&bank, &alice);
    let b = open_account(&bank, &bob);
    deposit(&bank, a, 100);
    for key in 0..10u64 {
        let reply = bank.handle_keyed(
            &alice,
            Some(key),
            BankRequest::DirectTransfer {
                to: b,
                amount: Credits::from_gd(1),
                recipient_address: "bob.grid.org".into(),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    }

    // Checkpoint, then a known number of journal entries on top.
    let before_checkpoint = bank.journal_snapshot().len();
    let stats = bank.accounts.db().checkpoint().unwrap();
    assert!(stats.shards_snapshotted > 0);
    for key in 10..13u64 {
        let reply = bank.handle_keyed(
            &alice,
            Some(key),
            BankRequest::DirectTransfer {
                to: b,
                amount: Credits::from_gd(1),
                recipient_address: "bob.grid.org".into(),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    }
    let tail_entries = bank.journal_snapshot().len() - before_checkpoint;
    assert!(tail_entries > 0);
    let digest = bank.accounts.db().state_digest();
    let funds = bank.total_funds();

    // Kill: drop all in-memory state; only the files survive.
    drop(bank);

    // The offline inspector and the recovery report must agree: only
    // the tail past the snapshots is replayed, not the full history.
    let inspection = store::inspect(&dir).unwrap();
    assert_eq!(inspection.tail_entries(), tail_entries, "inspector sees the tail");

    let (rebuilt, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert_eq!(report.tail_entries_replayed, tail_entries, "tail-only replay");
    assert_eq!(report.snapshots_loaded, report.shards, "every shard restored from snapshot");
    assert_eq!(report.torn_tails, 0);
    assert_eq!(rebuilt.accounts.db().state_digest(), digest, "identical logical state");
    assert_eq!(rebuilt.total_funds(), funds, "conservation");

    // The rebuilt bank keeps serving, and replayed dedup still holds:
    // a retried key returns the original outcome without re-applying.
    match rebuilt.handle_keyed(
        &alice,
        Some(12),
        BankRequest::DirectTransfer {
            to: b,
            amount: Credits::from_gd(1),
            recipient_address: "bob.grid.org".into(),
        },
    ) {
        BankResponse::Confirmation { .. } => {}
        other => panic!("retry not deduplicated: {other:?}"),
    }
    assert_eq!(rebuilt.total_funds(), funds, "dedup hit moved no money");
}

#[test]
fn kill_mid_snapshot_falls_back_one_generation() {
    let dir = test_dir("mid-snapshot");
    let (bank, _) = GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let a = open_account(&bank, &alice);
    let b = open_account(&bank, &bob);
    deposit(&bank, a, 50);

    // Two snapshot generations (retain_snapshots = 2 keeps both), with
    // traffic between and after them.
    bank.accounts.db().checkpoint().unwrap();
    let pay = |key: u64| {
        let reply = bank.handle_keyed(
            &alice,
            Some(key),
            BankRequest::DirectTransfer {
                to: b,
                amount: Credits::from_gd(2),
                recipient_address: "bob.grid.org".into(),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    };
    pay(1);
    bank.accounts.db().checkpoint().unwrap();
    pay(2);
    let digest = bank.accounts.db().state_digest();
    let funds = bank.total_funds();
    drop(bank);

    // Kill mid-snapshot: the newest generation is half-written. Corrupt
    // every shard's newest snapshot and leave a stray tmp file behind.
    let mut damaged = 0;
    for shard in 0..64u32 {
        let sdir = dir.join(format!("shard-{shard:02}"));
        let Ok(entries) = std::fs::read_dir(&sdir) else { continue };
        let mut snaps: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "gbs"))
            .collect();
        snaps.sort();
        if let Some(newest) = snaps.pop() {
            let mut bytes = std::fs::read(&newest).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            std::fs::write(&newest, bytes).unwrap();
            std::fs::write(sdir.join("snap-999.gbs.tmp"), b"half-written").unwrap();
            damaged += 1;
        }
    }
    assert!(damaged > 0, "test must damage at least one snapshot");

    let (rebuilt, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert_eq!(report.snapshots_skipped, damaged, "corrupt generation skipped per shard");
    assert_eq!(report.snapshots_loaded, report.shards, "older generation restored everywhere");
    assert_eq!(rebuilt.accounts.db().state_digest(), digest, "no state lost");
    assert_eq!(rebuilt.total_funds(), funds, "conservation");
    // Exactly-once held: both payments exist, no duplicates.
    assert_eq!(rebuilt.all_transfers().len(), 2);
    assert_eq!(balance_of(&rebuilt, b), Credits::from_gd(4));
}

#[test]
fn kill_mid_compaction_before_deletion_recovers_cleanly() {
    // Compaction writes the COMPACTED marker *before* deleting
    // segments. A crash between the two steps leaves a marker that
    // promises less than the files deliver — which is harmless, and the
    // next recovery must treat it that way.
    let dir = test_dir("mid-compaction");
    let (bank, _) = GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    let alice = SubjectName::new("Org", "Unit", "alice");
    let a = open_account(&bank, &alice);
    deposit(&bank, a, 25);
    bank.accounts.db().checkpoint().unwrap();
    deposit(&bank, a, 5);
    let digest = bank.accounts.db().state_digest();
    let funds = bank.total_funds();
    drop(bank);

    // Hand-craft the crash state: a valid marker at the snapshot's
    // through-LSN in every snapshotted shard, all segments still there.
    let inspection = store::inspect(&dir).unwrap();
    let mut marked = 0;
    for (shard, inv) in inspection.shards.iter().enumerate() {
        if inv.snapshot_lsn == 0 {
            continue;
        }
        let sdir = dir.join(format!("shard-{shard:02}"));
        let mut body = Vec::new();
        body.extend_from_slice(&0x4742_4354u32.to_be_bytes()); // "GBCT"
        body.extend_from_slice(&store::FORMAT_VERSION.to_be_bytes());
        body.extend_from_slice(&inv.snapshot_lsn.to_be_bytes());
        let check = store::fnv64(&body);
        body.extend_from_slice(&check.to_le_bytes());
        std::fs::write(sdir.join("COMPACTED"), body).unwrap();
        marked += 1;
    }
    assert!(marked > 0);

    let (rebuilt, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert!(report.tail_entries_replayed > 0, "post-snapshot deposit replays");
    assert_eq!(rebuilt.accounts.db().state_digest(), digest);
    assert_eq!(rebuilt.total_funds(), funds);
}

#[test]
fn compaction_marker_past_every_snapshot_fails_loudly() {
    // The converse crash shape — the journal prefix is gone (marker
    // says so) but no retained snapshot covers it — must refuse to
    // serve rather than silently lose history.
    let dir = test_dir("marker-gap");
    let (bank, _) = GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    let alice = SubjectName::new("Org", "Unit", "alice");
    let a = open_account(&bank, &alice);
    deposit(&bank, a, 10);
    bank.accounts.db().checkpoint().unwrap();
    drop(bank);

    let sdir = dir.join("shard-00");
    let mut body = Vec::new();
    body.extend_from_slice(&0x4742_4354u32.to_be_bytes());
    body.extend_from_slice(&store::FORMAT_VERSION.to_be_bytes());
    body.extend_from_slice(&u64::MAX.to_be_bytes());
    let check = store::fnv64(&body);
    body.extend_from_slice(&check.to_le_bytes());
    std::fs::write(sdir.join("COMPACTED"), body).unwrap();

    match GridBank::open_durable(config(), Clock::new(), store_config(&dir)) {
        Err(BankError::Storage(why)) => {
            assert!(why.contains("compacted"), "unexpected message: {why}")
        }
        Ok(_) => panic!("recovery must refuse a compacted-past-snapshots store"),
        Err(other) => panic!("wrong error: {other}"),
    }
}

#[test]
fn torn_segment_tail_drops_the_whole_final_batch() {
    // Truncate the final frame of a shard's newest segment — the torn
    // write a power cut leaves behind. The final commit batch (a
    // multi-shard transfer) must disappear *atomically*: both sides of
    // the transfer gone, never one.
    let dir = test_dir("torn-tail");
    let (bank, _) = GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let a = open_account(&bank, &alice);
    let b = open_account(&bank, &bob);
    deposit(&bank, a, 100);
    bank.accounts.db().checkpoint().unwrap();
    let digest_before_transfer = bank.accounts.db().state_digest();
    let funds = bank.total_funds();

    let reply = bank.handle_keyed(
        &alice,
        Some(7),
        BankRequest::DirectTransfer {
            to: b,
            amount: Credits::from_gd(30),
            recipient_address: "bob.grid.org".into(),
        },
    );
    assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    drop(bank);

    // Tear the tail: cut a few bytes off every shard's newest segment
    // that grew past the snapshot cut. Each cut lands inside that
    // file's final frame, exactly like an interrupted write.
    let torn: Vec<_> = newest_segments(&dir)
        .into_iter()
        .map(|(seg, len)| {
            let f = std::fs::OpenOptions::new().write(true).open(&seg).unwrap();
            f.set_len(len - 3).unwrap();
            seg
        })
        .collect();
    assert!(!torn.is_empty(), "the transfer must have reached at least one segment");

    let (rebuilt, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert_eq!(report.torn_tails, torn.len(), "each cut is a tolerated torn tail");
    assert!(
        report.torn_batch_entries_dropped > 0,
        "the incomplete final batch is dropped, not half-applied"
    );
    // All-or-nothing: the bank is exactly at its pre-transfer state.
    assert_eq!(rebuilt.accounts.db().state_digest(), digest_before_transfer);
    assert_eq!(rebuilt.total_funds(), funds, "conservation under torn writes");
    assert_eq!(balance_of(&rebuilt, a), Credits::from_gd(100));
    assert_eq!(balance_of(&rebuilt, b), Credits::ZERO);

    // The ack never reached the client, so its retry must *apply* (the
    // dropped batch took its idempotency stamp with it) — exactly once
    // end to end.
    let reply = rebuilt.handle_keyed(
        &alice,
        Some(7),
        BankRequest::DirectTransfer {
            to: b,
            amount: Credits::from_gd(30),
            recipient_address: "bob.grid.org".into(),
        },
    );
    assert!(matches!(reply, BankResponse::Confirmed(_)), "retry re-applies: {reply:?}");
    assert_eq!(balance_of(&rebuilt, b), Credits::from_gd(30));
    drop(rebuilt);

    // Recovery repaired the torn files (truncated the dead suffix), so
    // a third open replays a clean log: no torn tails, same state.
    let (again, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert_eq!(report.torn_tails, 0, "repair made recovery idempotent");
    assert_eq!(report.torn_batch_entries_dropped, 0);
    assert_eq!(balance_of(&again, b), Credits::from_gd(30));
}

#[test]
fn pending_ib_credit_survives_restart_and_ships_exactly_once() {
    use gridbank_suite::bank::federation::{FederationRouter, LocalPeer, PeerTransport};
    use gridbank_suite::net::error::NetError;

    /// A permanently dead wire: every ship attempt fails, so the credit
    /// stays in the journal-backed pending set.
    struct DeadPeer;
    impl PeerTransport for DeadPeer {
        fn call(
            &self,
            _idem_key: Option<u64>,
            _request: &BankRequest,
        ) -> Result<BankResponse, BankError> {
            Err(BankError::Net(NetError::Disconnected))
        }
    }

    let dir = test_dir("ib-credit");
    let branch_config =
        |branch: u16| GridBankConfig { branch, signer_height: 5, ..GridBankConfig::default() };
    let clock = Clock::new();
    let (home, _) =
        GridBank::open_durable(branch_config(1), clock.clone(), store_config(&dir)).unwrap();
    let home = Arc::new(home);
    let remote = Arc::new(GridBank::new(branch_config(2), clock.clone()));
    let home_router = FederationRouter::install(&home);
    FederationRouter::install(&remote).add_peer(1, LocalPeer::new(Arc::clone(&home), 2));
    // The peer link for branch 2 is a dead wire: the ship attempt fails
    // and the credit stays pending.
    home_router.add_peer(2, Arc::new(DeadPeer) as Arc<dyn PeerTransport>);

    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let a = open_account(&home, &alice);
    let bob_account = open_account(&remote, &bob);
    deposit(&home, a, 40);
    let reply = home.handle_keyed(
        &alice,
        Some(9),
        BankRequest::DirectTransfer {
            to: bob_account,
            amount: Credits::from_gd(15),
            recipient_address: "bob.grid.org".into(),
        },
    );
    assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    assert_eq!(home.accounts.db().ib_pending_snapshot().len(), 1);
    assert_eq!(home_router.clearing_balance(2), Credits::from_gd(15));
    drop(home_router);
    drop(home);

    // Restart from disk: the pending credit must still be owed.
    let (rebuilt, _) =
        GridBank::open_durable(branch_config(1), Clock::new(), store_config(&dir)).unwrap();
    let rebuilt = Arc::new(rebuilt);
    assert_eq!(rebuilt.accounts.db().ib_pending_snapshot().len(), 1, "pending survived the kill");
    let router = FederationRouter::install(&rebuilt);
    router.add_peer(2, LocalPeer::new(Arc::clone(&remote), 1));
    assert_eq!(router.ship_pending(), 1, "re-ship delivers the stranded credit");
    assert_eq!(balance_of(&remote, bob_account), Credits::from_gd(15), "credited exactly once");
    assert_eq!(router.ship_pending(), 0, "nothing left to ship");
    drop(router);
    drop(rebuilt);

    // And the ack is durable too: a second restart owes nothing.
    let (again, _) =
        GridBank::open_durable(branch_config(1), Clock::new(), store_config(&dir)).unwrap();
    assert!(again.accounts.db().ib_pending_snapshot().is_empty());
    assert_eq!(balance_of(&remote, bob_account), Credits::from_gd(15));
}

#[test]
fn incremental_checkpoints_bound_the_tail_under_live_traffic() {
    // With a small `snapshot_every`, the server's own post-dispatch
    // checkpointing keeps each shard's replay tail bounded without any
    // explicit checkpoint call.
    let dir = test_dir("incremental");
    let store = StoreConfig {
        snapshot_every: 8,
        segment_bytes: 4096, // force rotation too
        ..StoreConfig::at(&dir).no_fsync()
    };
    // signer_height 9 = 512 one-time signatures, enough for 200 signed
    // transfer confirmations.
    let wide = GridBankConfig { signer_height: 9, ..GridBankConfig::default() };
    let (bank, _) = GridBank::open_durable(wide, Clock::new(), store).unwrap();
    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let a = open_account(&bank, &alice);
    let b = open_account(&bank, &bob);
    deposit(&bank, a, 1_000);
    for key in 0..200u64 {
        let reply = bank.handle_keyed(
            &alice,
            Some(key),
            BankRequest::DirectTransfer {
                to: b,
                amount: Credits::from_gd(1),
                recipient_address: "bob.grid.org".into(),
            },
        );
        assert!(matches!(reply, BankResponse::Confirmed(_)), "{reply:?}");
    }
    let total_entries = bank.journal_snapshot().len();
    let digest = bank.accounts.db().state_digest();
    drop(bank);

    let (rebuilt, report) =
        GridBank::open_durable(config(), Clock::new(), store_config(&dir)).unwrap();
    assert!(report.snapshots_loaded > 0, "the server checkpointed on its own");
    assert!(
        report.tail_entries_replayed < total_entries / 2,
        "replay is bounded by the tail, not the {total_entries}-entry history \
         (replayed {})",
        report.tail_entries_replayed
    );
    assert_eq!(rebuilt.accounts.db().state_digest(), digest);
}

/// ISSUE acceptance: restart-to-serving bounded by tail length at one
/// million accounts. Ignored in the default run (it builds a seven-digit
/// account table); run manually in release:
///
/// ```text
/// cargo test --release --test storage_recovery -- --ignored --nocapture
/// ```
///
/// Results are recorded in EXPERIMENTS.md §E19.
#[test]
#[ignore = "millions of accounts; run in release for EXPERIMENTS.md E19"]
fn bounded_recovery_at_one_million_accounts() {
    use gridbank_suite::bank::db::{AccountId, AccountRecord, Database};

    let dir = test_dir("million");
    const ACCOUNTS: u32 = 1_000_000;
    const TAIL: u32 = 2_000;

    let (db, _) = Database::open(1, 1, store_config(&dir)).unwrap();
    let populate_started = std::time::Instant::now();
    for n in 1..=ACCOUNTS {
        db.insert_account(AccountRecord {
            id: AccountId::new(1, 1, n),
            certificate_name: format!("/CN=holder-{n}"),
            organization: None,
            available: Credits::from_gd(10),
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        })
        .unwrap();
    }
    println!("populate: {} accounts in {:?}", ACCOUNTS, populate_started.elapsed());
    let snap_started = std::time::Instant::now();
    let stats = db.checkpoint().unwrap();
    println!(
        "checkpoint: {} shards, {} MiB in {:?}",
        stats.shards_snapshotted,
        stats.bytes / (1024 * 1024),
        snap_started.elapsed()
    );
    // A bounded tail on top of the snapshots.
    for n in 1..=TAIL {
        db.insert_account(AccountRecord {
            id: AccountId::new(1, 1, ACCOUNTS + n),
            certificate_name: format!("/CN=tail-{n}"),
            organization: None,
            available: Credits::from_gd(1),
            locked: Credits::ZERO,
            currency: "GridDollar".into(),
            credit_limit: Credits::ZERO,
        })
        .unwrap();
    }
    let funds = db.total_funds();
    drop(db);

    let (rebuilt, report) = Database::open(1, 1, store_config(&dir)).unwrap();
    println!(
        "recovery: {} accounts, {} tail entries replayed, {} segments, {} ms",
        report.accounts, report.tail_entries_replayed, report.segments_scanned, report.elapsed_ms
    );
    assert_eq!(report.accounts, (ACCOUNTS + TAIL) as usize);
    assert_eq!(report.tail_entries_replayed, TAIL as usize, "tail-only, even at 1M accounts");
    assert_eq!(rebuilt.total_funds(), funds);
    let _ = std::fs::remove_dir_all(&dir);
}
