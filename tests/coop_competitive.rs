//! E4 + E8 — the two operating models of §4 as whole-grid scenarios.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use gridbank_suite::broker::scheduling::Algorithm;
use gridbank_suite::rur::Credits;
use gridbank_suite::sim::scenario::{
    run_competitive, run_cooperative, run_open_market, ScenarioConfig,
};
use gridbank_suite::sim::topology::TopologyConfig;
use gridbank_suite::sim::workload::{JobSizeDistribution, WorkloadConfig};

fn market_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        topology: TopologyConfig {
            seed,
            providers: 4,
            machines_per_provider: 2,
            signer_height: 9,
            ..TopologyConfig::default()
        },
        workload: WorkloadConfig {
            seed: seed ^ 0xFF,
            count: 16,
            consumers: 4,
            mean_interarrival_ms: 100,
            sizes: JobSizeDistribution::Uniform { lo: 1_000_000, hi: 3_000_000 },
            memory_mb: 0,
            network_mb: 0,
            diurnal: None,
        },
        algorithm: Algorithm::CostOpt,
        deadline_ms: 8 * 3_600_000,
        budget: Credits::from_gd(200),
    }
}

#[test]
fn cooperative_scales_with_participants_and_rounds() {
    // Figure 4's property must hold for rings of different sizes.
    for (n, rounds) in [(2usize, 2usize), (4, 3), (6, 2)] {
        let report = run_cooperative(n, rounds, 3_600_000, 17 + n as u64);
        assert_eq!(report.rows.len(), n);
        let tolerance = Credits::from_micro(2_000);
        assert!(report.equilibrium_gap <= tolerance, "n={n}: gap {}", report.equilibrium_gap);
        // Total exchanged grows with ring size × rounds.
        assert!(report.total_exchanged.is_positive());
        for row in &report.rows {
            assert!(row.provided.is_positive(), "n={n}: {row:?}");
        }
    }
}

#[test]
fn cooperative_is_deterministic() {
    let a = run_cooperative(4, 2, 3_600_000, 5);
    let b = run_cooperative(4, 2, 3_600_000, 5);
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        assert_eq!(ra.consumed, rb.consumed);
        assert_eq!(ra.provided, rb.provided);
        assert_eq!(ra.balance, rb.balance);
    }
    // Different seed, different magnitudes.
    let c = run_cooperative(4, 2, 3_600_000, 6);
    assert!(a.rows.iter().zip(&c.rows).any(|(x, y)| x.provided != y.provided));
}

#[test]
fn open_market_money_flows_are_airtight() {
    let report = run_open_market(&market_config(400));
    assert!(report.completed > 0);
    assert_eq!(report.conservation_drift, Credits::ZERO);
    // Provider revenue sums to total paid.
    let revenue: Credits = report.provider_revenue.iter().copied().sum();
    assert_eq!(revenue, report.total_paid);
}

#[test]
fn cheaper_providers_win_more_business_under_cost_opt() {
    // With cost-optimization and a loose deadline, the provider with the
    // lowest cost *per unit of work* (hourly price ÷ speed — what CostOpt
    // actually minimizes) should earn the largest share.
    let mut config = market_config(41);
    config.deadline_ms = 24 * 3_600_000;
    let report = run_open_market(&config);
    assert!(report.completed > 0);
    let busiest = report
        .provider_revenue
        .iter()
        .enumerate()
        .max_by_key(|(_, r)| **r)
        .map(|(i, _)| i)
        .unwrap();
    // Rebuild the same topology to inspect posted prices and speeds.
    let grid = gridbank_suite::sim::topology::build_grid(&config.topology);
    let unit_costs: Vec<f64> = grid
        .providers
        .iter()
        .map(|p| {
            let ad = p.advertisement();
            ad.rates.total_time_price_per_hour().as_gd_f64() / ad.cpu_speed as f64
        })
        .collect();
    let cheapest = unit_costs
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.total_cmp(b))
        .map(|(i, _)| i)
        .unwrap();
    assert_eq!(
        busiest, cheapest,
        "revenue {:?} vs per-work costs {unit_costs:?}",
        report.provider_revenue
    );
}

#[test]
fn competitive_estimate_reflects_what_was_actually_paid() {
    let mut config = market_config(42);
    config.workload.sizes = JobSizeDistribution::Uniform { lo: 2_000_000, hi: 6_000_000 };
    let report = run_competitive(&config);
    assert!(report.observations > 0);
    // CPU-only jobs: the realized unit price of every trade sits inside
    // the topology's configured band, so the weighted estimate must too.
    let (lo, hi) = (Credits::from_milli(500), Credits::from_milli(4_000));
    assert!(
        report.estimate >= lo && report.estimate <= hi,
        "estimate {} outside [{lo}, {hi}]",
        report.estimate
    );
}
