//! E3 — Figure 3's layering: the three payment-protocol modules operate
//! against the *same* accounts layer without interfering, and the
//! security layer's account-table gate stands in front of everything.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use gridbank_suite::bank::api::BankRequest;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::port::{BankPort, InProcessBank};
use gridbank_suite::bank::server::{GridBank, GridBankConfig};
use gridbank_suite::crypto::cert::SubjectName;
use gridbank_suite::rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_suite::rur::units::Duration;
use gridbank_suite::rur::Credits;

fn bank() -> Arc<GridBank> {
    Arc::new(GridBank::new(
        GridBankConfig { signer_height: 8, ..GridBankConfig::default() },
        Clock::new(),
    ))
}

fn admin() -> SubjectName {
    SubjectName("/O=GridBank/OU=Admin/CN=operator".into())
}

fn rur(
    consumer: &str,
    provider: &str,
    hours: u64,
    rate: Credits,
) -> gridbank_suite::rur::ResourceUsageRecord {
    RurBuilder::default()
        .user("h", consumer)
        .job("j", "app", 0, hours * 3_600_000)
        .resource("r", provider, None, 1)
        .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(hours)), rate)
        .build()
        .unwrap()
}

#[test]
fn three_protocols_share_one_accounts_layer() {
    let bank = bank();
    let alice = SubjectName::new("UWA", "CSSE", "alice");
    let gsp = SubjectName::new("UM", "GRIDS", "gsp");
    let mut alice_port = InProcessBank::new(bank.clone(), alice.clone());
    let account = alice_port.create_account(None).unwrap();
    let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
    let gsp_account = gsp_port.create_account(None).unwrap();
    bank.handle(&admin(), BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) });

    let total_before = bank.accounts.db().total_funds();

    // Protocol 1: pay-before-use — 10 G$ fixed.
    let conf = alice_port.direct_transfer(gsp_account, Credits::from_gd(10), "gsp").unwrap();
    conf.verify(&bank.verifying_key()).unwrap();

    // Protocol 2: pay-as-you-go — chain of 20 × 0.5 G$, spend 8 words.
    let chain =
        alice_port.request_hash_chain(&gsp.0, 20, Credits::from_milli(500), 100_000).unwrap();
    let pw = chain.payword(8).unwrap();
    let paid = gsp_port
        .redeem_payword(chain.commitment.clone(), chain.signature.clone(), pw, vec![])
        .unwrap();
    assert_eq!(paid, Credits::from_gd(4));

    // Protocol 3: pay-after-use — cheque for 30, charge 12.
    let cheque = alice_port.request_cheque(&gsp.0, Credits::from_gd(30), 100_000).unwrap();
    let (paid, released) =
        gsp_port.redeem_cheque(cheque, rur(&alice.0, &gsp.0, 2, Credits::from_gd(6))).unwrap();
    assert_eq!(paid, Credits::from_gd(12));
    assert_eq!(released, Credits::from_gd(18));

    // The accounts layer below is consistent: conservation holds, and the
    // GSP's earnings are the sum across all three protocols.
    assert_eq!(bank.accounts.db().total_funds(), total_before);
    let gsp_balance = gsp_port.my_account().unwrap().available;
    assert_eq!(gsp_balance, Credits::from_gd(10 + 4 + 12));

    // Alice: 100 − 10 direct − 4 paywords − 12 cheque − 6 still locked
    // on the chain's 12 unspent words.
    let alice_rec = alice_port.my_account().unwrap();
    assert_eq!(alice_rec.available, Credits::from_gd(100 - 10 - 4 - 12 - 6));
    assert_eq!(alice_rec.locked, Credits::from_gd(6));
}

#[test]
fn unknown_subject_is_limited_to_enrollment() {
    let bank = bank();
    let stranger = SubjectName::new("X", "Y", "stranger");
    // Everything but CreateAccount is refused before enrollment — the
    // protocol-layer mirror of the connection gate.
    for req in [
        BankRequest::MyAccount,
        BankRequest::EstimatePrice {
            desc: gridbank_suite::bank::pricing::ResourceDescription {
                cpu_speed: 1,
                cpu_count: 1,
                memory_mb: 1,
                storage_mb: 1,
                bandwidth_mbps: 1,
            },
            min_similarity_ppk: 0,
        },
        BankRequest::AdminDeposit {
            account: gridbank_suite::bank::db::AccountId::new(1, 1, 1),
            amount: Credits::from_gd(1),
        },
    ] {
        let resp = bank.handle(&stranger, req);
        assert!(
            matches!(resp, gridbank_suite::bank::BankResponse::Error { .. }),
            "stranger got through: {resp:?}"
        );
    }
    // Enrollment works, then MyAccount does too.
    let resp = bank.handle(&stranger, BankRequest::CreateAccount { organization: None });
    assert!(matches!(resp, gridbank_suite::bank::BankResponse::AccountCreated { .. }));
    let resp = bank.handle(&stranger, BankRequest::MyAccount);
    assert!(matches!(resp, gridbank_suite::bank::BankResponse::Account(_)));
}

#[test]
fn instruments_are_not_interchangeable_across_protocols() {
    // A cheque id cannot be redeemed through the payword path and vice
    // versa: each protocol module validates its own instrument format and
    // signature domain.
    let bank = bank();
    let alice = SubjectName::new("UWA", "CSSE", "alice");
    let gsp = SubjectName::new("UM", "GRIDS", "gsp");
    let mut alice_port = InProcessBank::new(bank.clone(), alice.clone());
    let account = alice_port.create_account(None).unwrap();
    let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
    gsp_port.create_account(None).unwrap();
    bank.handle(&admin(), BankRequest::AdminDeposit { account, amount: Credits::from_gd(100) });

    let cheque = alice_port.request_cheque(&gsp.0, Credits::from_gd(10), 100_000).unwrap();
    let chain = alice_port.request_hash_chain(&gsp.0, 4, Credits::from_gd(1), 100_000).unwrap();

    // Present the *cheque's* signature with the chain commitment: the
    // signature covers different bytes, so verification fails.
    let err = gsp_port.redeem_payword(
        chain.commitment.clone(),
        cheque.signature.clone(),
        chain.payword(1).unwrap(),
        vec![],
    );
    assert!(err.is_err());

    // Proper redemptions still work afterwards (no state was corrupted).
    gsp_port
        .redeem_payword(
            chain.commitment.clone(),
            chain.signature.clone(),
            chain.payword(1).unwrap(),
            vec![],
        )
        .unwrap();
    gsp_port.redeem_cheque(cheque, rur(&alice.0, &gsp.0, 1, Credits::from_gd(3))).unwrap();
}

#[test]
fn admin_operations_compose_with_payment_state() {
    let bank = bank();
    let a = SubjectName::new("O", "U", "payer");
    let mut port = InProcessBank::new(bank.clone(), a.clone());
    let account = port.create_account(None).unwrap();
    bank.handle(&admin(), BankRequest::AdminDeposit { account, amount: Credits::from_gd(50) });

    let gsp = SubjectName::new("O", "U", "gsp");
    let mut gsp_port = InProcessBank::new(bank.clone(), gsp.clone());
    gsp_port.create_account(None).unwrap();

    // Lock 30 behind a cheque; the admin cannot close the account while
    // the lock is live, and withdrawal is limited to available funds.
    let _cheque = port.request_cheque(&gsp.0, Credits::from_gd(30), 100_000).unwrap();
    let resp = bank.handle(&admin(), BankRequest::AdminCloseAccount { account, transfer_to: None });
    assert!(matches!(resp, gridbank_suite::bank::BankResponse::Error { .. }));
    let resp =
        bank.handle(&admin(), BankRequest::AdminWithdraw { account, amount: Credits::from_gd(21) });
    assert!(matches!(resp, gridbank_suite::bank::BankResponse::Error { .. }));
    let resp =
        bank.handle(&admin(), BankRequest::AdminWithdraw { account, amount: Credits::from_gd(20) });
    assert!(matches!(resp, gridbank_suite::bank::BankResponse::Confirmation { .. }));
}
