//! E10 — pipelined RPC against a live bank: many in-flight requests per
//! connection, responses matched by correlation id, exactly-once keyed
//! mutations under concurrency and link faults (see `docs/PROTOCOLS.md`
//! §1 for the pipelining state machine).

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use gridbank_suite::bank::client::GridBankClient;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::GroupCommitConfig;
use gridbank_suite::bank::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials, ServerTuning,
};
use gridbank_suite::bank::BankError;
use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_suite::crypto::rng::DeterministicStream;
use gridbank_suite::net::fault::{FaultInjector, FaultPlan, FaultRates};
use gridbank_suite::net::transport::{Address, Network};
use gridbank_suite::rur::Credits;

struct World {
    network: Network,
    ca: CertificateAuthority,
    clock: Clock,
    bank: Arc<GridBank>,
    _server: GridBankServer,
}

fn world(tuning: ServerTuning) -> World {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig {
            gate_mode: GateMode::AllowEnrollment,
            signer_height: 9,
            // A wide grouping window so pipelined workers share journal
            // flushes — the configuration this suite is meant to stress.
            group_commit: GroupCommitConfig { max_batch: 32, max_delay_micros: 500 },
            ..GridBankConfig::default()
        },
        clock.clone(),
    ));
    let bank_identity = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 }, "bank-tls"));
    let bank_cert = ca
        .issue(
            SubjectName::new("GridBank", "Server", "gridbank"),
            bank_identity.verifying_key(),
            0,
            u64::MAX / 2,
        )
        .unwrap();
    let network = Network::new();
    let server = GridBankServer::start_tuned(
        &network,
        Address::new("bank"),
        bank.clone(),
        ServerCredentials {
            certificate: bank_cert,
            identity: bank_identity,
            ca_key: ca.verifying_key(),
        },
        7,
        tuning,
    )
    .unwrap();
    World { network, ca, clock, bank, _server: server }
}

fn connect(w: &World, cn: &str, seed: u64) -> Result<GridBankClient, BankError> {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, cn);
    let dn = SubjectName::new("Org", "Unit", cn);
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 5000 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(seed, b"nonce");
    GridBankClient::connect(
        &w.network,
        Address::new(format!("{cn}.host")),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
}

fn admin_client(w: &World) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed: 999 }, "operator");
    let dn = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: 998 }, "proxy");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(997, b"nonce");
    GridBankClient::connect(
        &w.network,
        Address::new("ops.host"),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("admin connects")
}

use gridbank_suite::bank::api::{BankRequest, BankResponse};

#[test]
fn pipelined_transfers_settle_exactly_once() {
    // A small worker pool (2 workers, shallow queue) so requests really
    // do execute concurrently and out of submission order.
    let w = world(ServerTuning { workers: 2, queue_depth: 8, max_connections: 64 });
    let mut alice = connect(&w, "alice", 10).unwrap();
    let alice_account = alice.create_account(None).unwrap();
    let mut bob = connect(&w, "bob", 11).unwrap();
    let bob_account = bob.create_account(None).unwrap();
    let mut admin = admin_client(&w);
    admin.admin_deposit(alice_account, Credits::from_gd(100)).unwrap();

    // Pipeline 20 keyed transfers plus interleaved reads on one
    // connection, then collect every response by correlation id.
    const N: u64 = 20;
    let transfer = BankRequest::DirectTransfer {
        to: bob_account,
        amount: Credits::from_gd(1),
        recipient_address: "bob.host".into(),
    };
    let mut ids = Vec::new();
    for k in 0..N {
        ids.push(alice.send_pipelined(Some(0xA000 + k), &transfer).unwrap());
        if k % 5 == 0 {
            ids.push(alice.send_pipelined(None, &BankRequest::MyAccount).unwrap());
        }
    }
    let mut confirmed = 0;
    for id in ids {
        match alice.recv_pipelined(id).unwrap() {
            BankResponse::Confirmed(_) | BankResponse::Confirmation { .. } => confirmed += 1,
            BankResponse::Account(_) => {}
            other => panic!("unexpected response: {other:?}"),
        }
    }
    assert_eq!(confirmed, N);
    assert_eq!(alice.my_account().unwrap().available, Credits::from_gd(100 - N as i64));
    assert_eq!(bob.my_account().unwrap().available, Credits::from_gd(N as i64));
    assert_eq!(w.bank.all_transfers().len(), N as usize);
}

#[test]
fn duplicate_keys_in_one_pipeline_are_deduplicated() {
    // The same idempotency key submitted twice back-to-back in one
    // pipeline window: with 4 workers both copies can be mid-execution
    // at once, and the in-flight key guard must still collapse them to
    // a single applied transfer.
    let w = world(ServerTuning { workers: 4, queue_depth: 16, max_connections: 64 });
    let mut alice = connect(&w, "alice", 20).unwrap();
    let alice_account = alice.create_account(None).unwrap();
    let mut bob = connect(&w, "bob", 21).unwrap();
    let bob_account = bob.create_account(None).unwrap();
    let mut admin = admin_client(&w);
    admin.admin_deposit(alice_account, Credits::from_gd(50)).unwrap();

    let transfer = BankRequest::DirectTransfer {
        to: bob_account,
        amount: Credits::from_gd(7),
        recipient_address: "bob.host".into(),
    };
    const KEY: u64 = 0xD0D0_1111;
    let first = alice.send_pipelined(Some(KEY), &transfer).unwrap();
    let second = alice.send_pipelined(Some(KEY), &transfer).unwrap();
    let third = alice.send_pipelined(Some(KEY), &transfer).unwrap();
    let txid_of = |resp: BankResponse| match resp {
        BankResponse::Confirmed(conf) => conf.body.transaction_id,
        BankResponse::Confirmation { transaction_id } => transaction_id,
        other => panic!("unexpected response: {other:?}"),
    };
    let t1 = txid_of(alice.recv_pipelined(first).unwrap());
    let t2 = txid_of(alice.recv_pipelined(second).unwrap());
    let t3 = txid_of(alice.recv_pipelined(third).unwrap());
    assert_eq!(t1, t2);
    assert_eq!(t2, t3);
    // Exactly one application: one transfer row, one debit.
    assert_eq!(w.bank.all_transfers().len(), 1);
    assert_eq!(alice.my_account().unwrap().available, Credits::from_gd(43));
    assert_eq!(bob.my_account().unwrap().available, Credits::from_gd(7));
}

#[test]
fn pipelined_batch_survives_reorder_faults_with_keyed_retries() {
    // Reorder faults at the transport layer break the secure channel's
    // strict sequence check — a pipelined batch dies mid-flight instead
    // of being silently misordered. The client reconnects and retries
    // the whole batch with the *same* keys; dedup keeps every transfer
    // exactly-once no matter where the batch was cut.
    let w = world(ServerTuning::default());
    let mut alice = connect(&w, "alice", 30).unwrap();
    let alice_account = alice.create_account(None).unwrap();
    let mut bob = connect(&w, "bob", 31).unwrap();
    let bob_account = bob.create_account(None).unwrap();
    let mut admin = admin_client(&w);
    admin.admin_deposit(alice_account, Credits::from_gd(100)).unwrap();

    let injector = FaultInjector::new(FaultPlan {
        seed: 0xBEEF,
        to_server: FaultRates { reorder_pm: 120, ..FaultRates::NONE },
        to_client: FaultRates { reorder_pm: 120, ..FaultRates::NONE },
        // Let the handshake through; fault only steady-state traffic.
        skip_first: 12,
    });
    w.network.install_faults(injector.clone());
    injector.arm(true);

    const N: u64 = 12;
    let transfer = |k: u64| BankRequest::DirectTransfer {
        to: bob_account,
        amount: Credits::from_gd(1),
        recipient_address: format!("bob.host/{k}"),
    };
    let mut settled = vec![false; N as usize];
    let mut attempts = 0;
    while settled.iter().any(|s| !s) {
        attempts += 1;
        assert!(attempts <= 50, "batch never settled under reorder faults");
        // (Re-)send every unsettled key in one pipelined window.
        let mut window = Vec::new();
        let mut broken = false;
        for k in 0..N {
            if settled[k as usize] {
                continue;
            }
            match alice.send_pipelined(Some(0xE000 + k), &transfer(k)) {
                Ok(id) => window.push((k, id)),
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        for (k, id) in window {
            if broken {
                break;
            }
            match alice.recv_pipelined(id) {
                Ok(BankResponse::Confirmed(_)) | Ok(BankResponse::Confirmation { .. }) => {
                    settled[k as usize] = true;
                }
                Ok(other) => panic!("unexpected response: {other:?}"),
                Err(_) => broken = true,
            }
        }
        if broken {
            // The channel is integrity-poisoned; reconnect (the fault
            // plan's skip_first window protects the new handshake).
            injector.arm(false);
            alice = connect(&w, "alice", 32 + attempts).expect("reconnect");
            injector.arm(true);
        }
    }
    injector.arm(false);

    // Every key applied exactly once despite arbitrary mid-batch cuts.
    assert_eq!(w.bank.all_transfers().len(), N as usize);
    let mut check = connect(&w, "alice", 500).unwrap();
    assert_eq!(check.my_account().unwrap().available, Credits::from_gd(100 - N as i64));
    assert_eq!(bob.my_account().unwrap().available, Credits::from_gd(N as i64));
}
