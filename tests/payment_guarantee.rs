//! E7 — §3.4 payment guarantee: clients can never overspend; locked
//! funds make every issued instrument good for its face value.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use proptest::prelude::*;

use gridbank_suite::bank::api::BankRequest;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::port::{BankPort, InProcessBank};
use gridbank_suite::bank::server::{GridBank, GridBankConfig};
use gridbank_suite::bank::BankError;
use gridbank_suite::crypto::cert::SubjectName;
use gridbank_suite::rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_suite::rur::units::Duration;
use gridbank_suite::rur::Credits;

fn bank() -> Arc<GridBank> {
    Arc::new(GridBank::new(
        GridBankConfig { signer_height: 7, ..GridBankConfig::default() },
        Clock::new(),
    ))
}

fn admin() -> SubjectName {
    SubjectName("/O=GridBank/OU=Admin/CN=operator".into())
}

fn funded_pair(bank: &Arc<GridBank>, gd: i64) -> (InProcessBank, InProcessBank, String) {
    let alice = SubjectName::new("O", "U", "payer");
    let gsp = SubjectName::new("O", "U", "payee");
    let mut a = InProcessBank::new(bank.clone(), alice);
    let account = a.create_account(None).unwrap();
    let mut g = InProcessBank::new(bank.clone(), gsp.clone());
    g.create_account(None).unwrap();
    bank.handle(&admin(), BankRequest::AdminDeposit { account, amount: Credits::from_gd(gd) });
    (a, g, gsp.0)
}

#[test]
fn cannot_issue_instruments_beyond_balance() {
    let bank = bank();
    let (mut alice, _gsp_port, gsp) = funded_pair(&bank, 10);

    // A 10 G$ balance supports at most 10 G$ of outstanding instruments.
    alice.request_cheque(&gsp, Credits::from_gd(6), 100_000).unwrap();
    alice.request_hash_chain(&gsp, 4, Credits::from_gd(1), 100_000).unwrap();
    // 6 + 4 locked; nothing left to promise.
    assert!(matches!(
        alice.request_cheque(&gsp, Credits::from_gd(1), 100_000),
        Err(BankError::InsufficientFunds { .. })
    ));
    assert!(matches!(
        alice.request_hash_chain(&gsp, 1, Credits::from_gd(1), 100_000),
        Err(BankError::InsufficientFunds { .. })
    ));
    // Direct transfers can't touch locked funds either.
    let payee_account = {
        let mut g = InProcessBank::new(bank.clone(), SubjectName::new("O", "U", "payee"));
        g.my_account().unwrap().id
    };
    assert!(matches!(
        alice.direct_transfer(payee_account, Credits::from_gd(1), "x"),
        Err(BankError::InsufficientFunds { .. })
    ));
}

#[test]
fn every_issued_cheque_is_fully_covered() {
    // Even if the usage record claims far more than the reservation, the
    // payee receives exactly the reserved amount and the drawer's other
    // funds are untouched.
    let bank = bank();
    let (mut alice, mut gsp_port, gsp) = funded_pair(&bank, 20);
    let cheque = alice.request_cheque(&gsp, Credits::from_gd(5), 100_000).unwrap();
    let greedy_rur = RurBuilder::default()
        .user("h", "/O=O/OU=U/CN=payer")
        .job("j", "a", 0, 100 * 3_600_000)
        .resource("r", &gsp, None, 1)
        .line(
            ChargeableItem::Cpu,
            UsageAmount::Time(Duration::from_hours(100)),
            Credits::from_gd(10),
        )
        .build()
        .unwrap();
    let (paid, released) = gsp_port.redeem_cheque(cheque, greedy_rur).unwrap();
    assert_eq!(paid, Credits::from_gd(5));
    assert_eq!(released, Credits::ZERO);
    let rec = alice.my_account().unwrap();
    assert_eq!(rec.available, Credits::from_gd(15));
    assert_eq!(rec.locked, Credits::ZERO);
}

#[test]
fn credit_limits_extend_spendable_funds_but_still_bound_them() {
    let bank = bank();
    let (mut alice, _gsp_port, gsp) = funded_pair(&bank, 5);
    let account = alice.my_account().unwrap().id;
    bank.handle(
        &admin(),
        BankRequest::AdminCreditLimit { account, new_limit: Credits::from_gd(3) },
    );
    // Can now lock 8 total.
    alice.request_cheque(&gsp, Credits::from_gd(8), 100_000).unwrap();
    assert!(alice.request_cheque(&gsp, Credits::from_micro(1), 100_000).is_err());
    let rec = alice.my_account().unwrap();
    assert_eq!(rec.available, Credits::from_gd(-3));
    assert_eq!(rec.locked, Credits::from_gd(8));
}

#[test]
fn expired_instruments_are_swept_back_to_drawers() {
    let bank = bank();
    let (mut alice, _gsp_port, gsp) = funded_pair(&bank, 30);

    // Two short-lived instruments and one long-lived cheque.
    alice.request_cheque(&gsp, Credits::from_gd(5), 1_000).unwrap();
    alice.request_hash_chain(&gsp, 10, Credits::from_gd(1), 1_000).unwrap();
    let long = alice.request_cheque(&gsp, Credits::from_gd(4), 1_000_000).unwrap();

    let rec = alice.my_account().unwrap();
    assert_eq!(rec.locked, Credits::from_gd(19));

    // Nothing to sweep yet.
    assert_eq!(bank.sweep_expired_instruments().0, 0);

    // Past the short expiries: the sweeper releases 15 G$.
    bank.clock().advance(2_000);
    let (count, released) = bank.sweep_expired_instruments();
    assert_eq!(count, 2);
    assert_eq!(released, Credits::from_gd(15));
    let rec = alice.my_account().unwrap();
    assert_eq!(rec.available, Credits::from_gd(26));
    assert_eq!(rec.locked, Credits::from_gd(4));

    // The long-lived cheque still redeems normally afterwards.
    let mut gsp_port = InProcessBank::new(bank.clone(), SubjectName::new("O", "U", "payee"));
    let rur = RurBuilder::default()
        .user("h", "/O=O/OU=U/CN=payer")
        .job("j", "a", 0, 3_600_000)
        .resource("r", &gsp, None, 1)
        .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(1)), Credits::from_gd(2))
        .build()
        .unwrap();
    let (paid, released) = gsp_port.redeem_cheque(long, rur).unwrap();
    assert_eq!(paid, Credits::from_gd(2));
    assert_eq!(released, Credits::from_gd(2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Any interleaving of instrument issuance/redemption never lets the
    /// payer's obligations exceed deposits, and conservation holds.
    #[test]
    fn guarantee_invariants_under_random_instrument_traffic(
        ops in prop::collection::vec((0u8..3, 1i64..8), 1..24)
    ) {
        let bank = bank();
        let (mut alice, mut gsp_port, gsp) = funded_pair(&bank, 30);
        let initial = bank.accounts.db().total_funds();
        let mut cheques = Vec::new();
        for (op, amount) in ops {
            match op {
                0 => {
                    if let Ok(c) = alice.request_cheque(&gsp, Credits::from_gd(amount), 100_000) {
                        cheques.push(c);
                    }
                }
                1 => {
                    if let Some(cheque) = cheques.pop() {
                        let hours = amount as u64;
                        let rur = RurBuilder::default()
                            .user("h", "/O=O/OU=U/CN=payer")
                            .job("j", "a", 0, hours * 3_600_000)
                            .resource("r", &gsp, None, 1)
                            .line(
                                ChargeableItem::Cpu,
                                UsageAmount::Time(Duration::from_hours(hours)),
                                Credits::from_gd(1),
                            )
                            .build()
                            .unwrap();
                        let _ = gsp_port.redeem_cheque(cheque, rur);
                    }
                }
                _ => {
                    let _ = alice.request_hash_chain(
                        &gsp,
                        amount as u32,
                        Credits::from_gd(1),
                        100_000,
                    );
                }
            }
            let rec = alice.my_account().unwrap();
            prop_assert!(rec.available >= Credits::ZERO, "overdraft without credit: {rec:?}");
            prop_assert!(rec.locked >= Credits::ZERO);
            prop_assert_eq!(bank.accounts.db().total_funds(), initial);
        }
    }
}
