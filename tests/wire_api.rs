//! Full §5.2/§5.2.1 API surface over the authenticated wire: every
//! operation the paper lists, exercised through the remote client against
//! a live server, including the admin suite and hash chains.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use gridbank_suite::bank::client::GridBankClient;
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::TransactionType;
use gridbank_suite::bank::pricing::ResourceDescription;
use gridbank_suite::bank::server::{
    GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
};
use gridbank_suite::bank::BankError;
use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
use gridbank_suite::crypto::rng::DeterministicStream;
use gridbank_suite::net::transport::{Address, Network};
use gridbank_suite::rur::record::{ChargeableItem, RurBuilder, UsageAmount};
use gridbank_suite::rur::units::Duration;
use gridbank_suite::rur::Credits;

struct World {
    network: Network,
    ca: CertificateAuthority,
    clock: Clock,
    bank: Arc<GridBank>,
    _server: GridBankServer,
}

fn world() -> World {
    let ca = CertificateAuthority::new(
        SubjectName::new("GridBank", "CA", "Root"),
        SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
    );
    let clock = Clock::new();
    let bank = Arc::new(GridBank::new(
        GridBankConfig {
            gate_mode: GateMode::AllowEnrollment,
            signer_height: 10,
            ..GridBankConfig::default()
        },
        clock.clone(),
    ));
    let id = Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 }, "tls"));
    let cert = ca
        .issue(SubjectName::new("GB", "Srv", "bank"), id.verifying_key(), 0, u64::MAX / 2)
        .unwrap();
    let network = Network::new();
    let server = GridBankServer::start(
        &network,
        Address::new("bank"),
        bank.clone(),
        ServerCredentials { certificate: cert, identity: id, ca_key: ca.verifying_key() },
        3,
    )
    .unwrap();
    World { network, ca, clock, bank, _server: server }
}

fn connect(w: &World, dn: SubjectName, seed: u64) -> GridBankClient {
    let id = SigningIdentity::generate_small(KeyMaterial { seed }, &dn.0);
    let cert = w.ca.issue(dn, id.verifying_key(), 0, u64::MAX / 2).unwrap();
    let proxy_id = SigningIdentity::generate_small(KeyMaterial { seed: seed + 9000 }, "p");
    let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
    let mut nonces = DeterministicStream::from_u64(seed, b"n");
    GridBankClient::connect(
        &w.network,
        Address::new(format!("h{seed}")),
        &Address::new("bank"),
        w.ca.verifying_key(),
        w.clock.now_ms(),
        &proxy,
        &proxy_id,
        &mut nonces,
    )
    .expect("connects")
}

#[test]
fn every_listed_operation_works_over_the_wire() {
    let w = world();
    let mut admin = connect(&w, SubjectName("/O=GridBank/OU=Admin/CN=operator".into()), 50);
    let mut alice = connect(&w, SubjectName::new("UWA", "CSSE", "alice"), 51);
    let mut gsp = connect(&w, SubjectName::new("UM", "GRIDS", "gsp"), 52);
    let gsp_cert = "/O=UM/OU=GRIDS/CN=gsp".to_string();

    // Create New Account.
    let alice_acct = alice.create_account(Some("UWA".into())).unwrap();
    let gsp_acct = gsp.create_account(None).unwrap();

    // Admin: deposit + change credit limit.
    admin.admin_deposit(alice_acct, Credits::from_gd(100)).unwrap();
    admin.admin_credit_limit(alice_acct, Credits::from_gd(10)).unwrap();

    // Check Balance / Request Account Details.
    let rec = alice.my_account().unwrap();
    assert_eq!(rec.available, Credits::from_gd(100));
    assert_eq!(rec.credit_limit, Credits::from_gd(10));
    assert_eq!(alice.account_details(alice_acct).unwrap().id, alice_acct);

    // Update Account Details (org only).
    alice
        .update_account(alice_acct, "/O=UWA/OU=CSSE/CN=alice".into(), Some("UWA-HPC".into()))
        .unwrap();
    assert_eq!(alice.my_account().unwrap().organization.as_deref(), Some("UWA-HPC"));

    // Perform Funds Availability Check (locks).
    alice.check_funds(alice_acct, Credits::from_gd(5)).unwrap();
    assert_eq!(alice.my_account().unwrap().locked, Credits::from_gd(5));

    // Request Direct Transfer with confirmation.
    let conf = alice.direct_transfer(gsp_acct, Credits::from_gd(7), "gsp.host").unwrap();
    conf.verify(&w.bank.verifying_key()).unwrap();

    // Request + Redeem GridCheque.
    let cheque = alice.request_cheque(&gsp_cert, Credits::from_gd(20), 1_000_000).unwrap();
    let rur = RurBuilder::default()
        .user("h", "/O=UWA/OU=CSSE/CN=alice")
        .job("j", "a", 0, 3_600_000)
        .resource("r", &gsp_cert, None, 1)
        .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(1)), Credits::from_gd(4))
        .build()
        .unwrap();
    let (paid, released) = gsp.redeem_cheque(cheque, rur).unwrap();
    assert_eq!(paid, Credits::from_gd(4));
    assert_eq!(released, Credits::from_gd(16));

    // Request + Redeem GridHash chain (incremental), then close at expiry.
    let chain = alice.request_hash_chain(&gsp_cert, 10, Credits::from_gd(1), 5_000).unwrap();
    chain.verify(&w.bank.verifying_key()).unwrap();
    let pw = chain.payword(6).unwrap();
    let paid =
        gsp.redeem_payword(chain.commitment.clone(), chain.signature.clone(), pw, vec![]).unwrap();
    assert_eq!(paid, Credits::from_gd(6));
    w.clock.advance(10_000);
    let released = alice.close_hash_chain(chain.commitment.clone()).unwrap();
    assert_eq!(released, Credits::from_gd(4));

    // Register description + estimate (history exists from the cheque).
    let desc = ResourceDescription {
        cpu_speed: 1000,
        cpu_count: 4,
        memory_mb: 8_192,
        storage_mb: 100_000,
        bandwidth_mbps: 1_000,
    };
    gsp.register_resource_description(desc).unwrap();
    // Feed one more redemption so the estimator has an observation bound
    // to the registered description.
    let cheque = alice.request_cheque(&gsp_cert, Credits::from_gd(10), 1_000_000).unwrap();
    let rur = RurBuilder::default()
        .user("h", "/O=UWA/OU=CSSE/CN=alice")
        .job("j2", "a", 0, 3_600_000)
        .resource("r", &gsp_cert, None, 2)
        .line(ChargeableItem::Cpu, UsageAmount::Time(Duration::from_hours(2)), Credits::from_gd(3))
        .build()
        .unwrap();
    gsp.redeem_cheque(cheque, rur).unwrap();
    let estimate = alice.estimate_price(desc, 0).unwrap();
    assert_eq!(estimate, Credits::from_gd(3));

    // Request Account Statement: full history on both sides.
    let st = alice.statement(alice_acct, 0, u64::MAX).unwrap();
    assert!(st.transactions.iter().any(|t| t.tx_type == TransactionType::Deposit));
    assert!(st.transfers.len() >= 3); // direct + 2 cheques + chain legs

    // Admin: cancel the direct transfer.
    admin.admin_cancel_transfer(conf.body.transaction_id).unwrap();

    // Admin: withdraw + close the GSP account into Alice's.
    let gsp_balance = gsp.my_account().unwrap().available;
    admin.admin_withdraw(gsp_acct, Credits::from_gd(1)).unwrap();
    admin.admin_close_account(gsp_acct, Some(alice_acct)).unwrap();
    // After closure the subject is gone: the protocol gate answers
    // NotAuthorized (it can only enroll again).
    assert!(matches!(
        gsp.my_account(),
        Err(BankError::NotAuthorized(_) | BankError::UnknownSubject(_))
    ));
    // Alice received the remainder.
    let expected = gsp_balance
        .checked_sub(Credits::from_gd(1)) // withdrawn
        .unwrap()
        .checked_sub(Credits::from_gd(7)) // cancelled direct transfer went back earlier
        .unwrap();
    let alice_final = alice.my_account().unwrap();
    assert!(alice_final.available >= expected, "{alice_final:?} vs {expected}");

    // Conservation: the bank's books still balance (withdrawals left).
    assert!(w.bank.accounts.db().total_funds().is_positive());
}

#[test]
fn batch_redemption_over_the_wire_is_per_entry() {
    let w = world();
    let mut admin = connect(&w, SubjectName("/O=GridBank/OU=Admin/CN=operator".into()), 70);
    let mut alice = connect(&w, SubjectName::new("UWA", "CSSE", "alice"), 71);
    let mut gsp = connect(&w, SubjectName::new("UM", "GRIDS", "gsp"), 72);
    let gsp_cert = "/O=UM/OU=GRIDS/CN=gsp".to_string();
    let alice_acct = alice.create_account(None).unwrap();
    gsp.create_account(None).unwrap();
    admin.admin_deposit(alice_acct, Credits::from_gd(100)).unwrap();

    let mk_rur = |provider: &str, hours: u64| {
        RurBuilder::default()
            .user("h", "/O=UWA/OU=CSSE/CN=alice")
            .job(format!("j-{provider}-{hours}"), "a", 0, hours * 3_600_000)
            .resource("r", provider, None, 1)
            .line(
                ChargeableItem::Cpu,
                UsageAmount::Time(Duration::from_hours(hours)),
                Credits::from_gd(2),
            )
            .build()
            .unwrap()
    };
    let c1 = alice.request_cheque(&gsp_cert, Credits::from_gd(10), 1_000_000).unwrap();
    let c2 = alice.request_cheque(&gsp_cert, Credits::from_gd(10), 1_000_000).unwrap();
    let c3 = alice.request_cheque(&gsp_cert, Credits::from_gd(10), 1_000_000).unwrap();

    let results = gsp
        .redeem_cheque_batch(vec![
            (c1, mk_rur(&gsp_cert, 1)),          // ok: 2 G$
            (c2, mk_rur("/CN=someone-else", 1)), // wrong provider
            (c3, mk_rur(&gsp_cert, 3)),          // ok: 6 G$
        ])
        .unwrap();
    assert_eq!(results.len(), 3);
    assert_eq!(results[0].as_ref().unwrap().0, Credits::from_gd(2));
    assert!(matches!(results[1], Err(BankError::InvalidInstrument(_))));
    assert_eq!(results[2].as_ref().unwrap().0, Credits::from_gd(6));
    // The failed entry's reservation is still locked (reclaimable later).
    let rec = alice.my_account().unwrap();
    assert_eq!(rec.locked, Credits::from_gd(10));
    assert_eq!(gsp.my_account().unwrap().available, Credits::from_gd(8));
}

#[test]
fn client_trace_context_propagates_into_server_spans_and_audit_trail() {
    use gridbank_suite::obs;

    let w = world();
    // Telemetry is process-global: sibling tests in this binary may emit
    // spans too, so every assertion below filters by this root's id.
    obs::set_telemetry(true);
    let root = obs::root_span("test", "wire_trace");
    let root_id = root.trace_id();
    assert_ne!(root_id, 0, "live root span carries a trace id");

    let mut admin = connect(&w, SubjectName("/O=GridBank/OU=Admin/CN=operator".into()), 80);
    let mut alice = connect(&w, SubjectName::new("UWA", "CSSE", "alice"), 81);
    let mut gsp = connect(&w, SubjectName::new("UM", "GRIDS", "gsp"), 82);
    let alice_acct = alice.create_account(None).unwrap();
    let gsp_acct = gsp.create_account(None).unwrap();
    admin.admin_deposit(alice_acct, Credits::from_gd(50)).unwrap();
    alice.direct_transfer(gsp_acct, Credits::from_gd(3), "gsp.host").unwrap();
    let st = alice.statement(alice_acct, 0, u64::MAX).unwrap();

    drop(root);
    let spans = obs::take_spans();
    obs::set_telemetry(false);

    // The client's trace id crossed the wire: spans from the transport,
    // the security layer, and both bank layers all share it.
    let components: Vec<&str> =
        spans.iter().filter(|s| s.trace_id == root_id).map(|s| s.component).collect();
    for expected in ["net", "server.security", "server.accounts", "server.payment"] {
        assert!(
            components.contains(&expected),
            "no {expected} span joined trace {root_id:#x}: {components:?}"
        );
    }
    // The server-side handler for the transfer sits under the trace and
    // names the variant it dispatched.
    assert!(spans.iter().any(|s| s.trace_id == root_id
        && s.component == "server.payment"
        && s.name == "DirectTransfer"));
    // And the audit trail correlates: the committed transfer record was
    // stamped with the same trace id.
    let transfer = st.transfers.first().expect("transfer recorded");
    assert_eq!(transfer.trace_id, root_id);
    // The rendered tree places the remote spans under the client's root.
    let rendered = obs::render_trace(root_id, &spans);
    assert!(rendered.contains("test::wire_trace"));
    assert!(rendered.contains("server.payment::DirectTransfer"));
}

#[test]
fn non_admin_cannot_call_admin_operations_remotely() {
    let w = world();
    let mut mallory = connect(&w, SubjectName::new("E", "E", "mallory"), 60);
    let acct = mallory.create_account(None).unwrap();
    for result in [
        mallory.admin_deposit(acct, Credits::from_gd(1_000_000)).map(|_| ()),
        mallory.admin_withdraw(acct, Credits::from_gd(1)).map(|_| ()),
        mallory.admin_credit_limit(acct, Credits::from_gd(9)).map(|_| ()),
        mallory.admin_cancel_transfer(1).map(|_| ()),
        mallory.admin_close_account(acct, None),
    ] {
        assert!(matches!(result, Err(BankError::NotAuthorized(_))), "{result:?}");
    }
    // And the account is untouched.
    assert_eq!(mallory.my_account().unwrap().available, Credits::ZERO);
}
