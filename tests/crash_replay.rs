//! E9 adjunct — crash consistency: after arbitrary banking activity, the
//! write-ahead journal alone reconstructs identical state ("GB database"
//! durability, §3.2/§5.1).

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use gridbank_suite::bank::accounts::GbAccounts;
use gridbank_suite::bank::admin::GbAdmin;
use gridbank_suite::bank::api::{journal_from_bytes, journal_to_bytes};
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::Database;
use gridbank_suite::bank::guarantee::FundsGuarantee;
use gridbank_suite::rur::Credits;

const ADMIN: &str = "/CN=admin";

#[test]
fn journal_replay_reconstructs_full_banking_state() {
    let db = Arc::new(Database::new(1, 1));
    let accounts = GbAccounts::new(db.clone(), Clock::new());
    let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
    let guarantee = FundsGuarantee::new(accounts.clone());

    // A realistic mix of activity.
    let a = accounts.create_account("/CN=alice", Some("UWA".into())).unwrap();
    let b = accounts.create_account("/CN=bob", None).unwrap();
    let c = accounts.create_account("/CN=carol", None).unwrap();
    admin.deposit(ADMIN, &a, Credits::from_gd(100)).unwrap();
    admin.deposit(ADMIN, &b, Credits::from_gd(50)).unwrap();
    accounts.clock().advance(1_000);
    accounts.transfer(&a, &b, Credits::from_gd(10), vec![1, 2, 3]).unwrap();
    let res = guarantee.reserve(&a, Credits::from_gd(20)).unwrap();
    guarantee.settle(res, &c, Credits::from_gd(7), vec![4, 5]).unwrap();
    admin.change_credit_limit(ADMIN, &b, Credits::from_gd(5)).unwrap();
    admin.withdraw(ADMIN, &b, Credits::from_gd(15)).unwrap();
    let txid = accounts.transfer(&b, &c, Credits::from_gd(3), vec![]).unwrap();
    admin.cancel_transfer(ADMIN, txid).unwrap();
    admin.close_account(ADMIN, &c, Some(a)).unwrap();

    // "Crash": serialize the journal, reload into a fresh database.
    let bytes = journal_to_bytes(&db.journal_snapshot());
    let journal = journal_from_bytes(&bytes).unwrap();
    let rebuilt = Database::replay(1, 1, &journal);

    // Account state identical.
    assert_eq!(rebuilt.all_accounts(), db.all_accounts());
    assert_eq!(rebuilt.total_funds(), db.total_funds());
    assert_eq!(rebuilt.account_count(), 2);

    // Histories identical for surviving accounts.
    for id in [a, b] {
        assert_eq!(
            rebuilt.transactions_in_range(&id, 0, u64::MAX),
            db.transactions_in_range(&id, 0, u64::MAX)
        );
        assert_eq!(
            rebuilt.transfers_in_range(&id, 0, u64::MAX),
            db.transfers_in_range(&id, 0, u64::MAX)
        );
    }

    // The rebuilt database keeps working: new ids don't collide, new
    // operations succeed.
    let rebuilt_accounts = GbAccounts::new(Arc::new(rebuilt), Clock::new());
    let d = rebuilt_accounts.create_account("/CN=dave", None).unwrap();
    assert!(d.number > b.number);
    let rebuilt_admin = GbAdmin::new(rebuilt_accounts.clone(), [ADMIN.to_string()]);
    rebuilt_admin.deposit(ADMIN, &d, Credits::from_gd(1)).unwrap();
    rebuilt_accounts.transfer(&d, &a, Credits::from_gd(1), vec![]).unwrap();
}

#[test]
fn journal_prefix_replays_to_a_consistent_earlier_state() {
    // Replaying any prefix of the journal produces a self-consistent
    // bank (never negative locks, conservation within the prefix's
    // deposits/withdrawals) — i.e. the WAL is crash-consistent at every
    // boundary, not just the end.
    let db = Arc::new(Database::new(1, 1));
    let accounts = GbAccounts::new(db.clone(), Clock::new());
    let admin = GbAdmin::new(accounts.clone(), [ADMIN.to_string()]);
    let a = accounts.create_account("/CN=a", None).unwrap();
    let b = accounts.create_account("/CN=b", None).unwrap();
    admin.deposit(ADMIN, &a, Credits::from_gd(40)).unwrap();
    for i in 0..10 {
        accounts.transfer(&a, &b, Credits::from_gd(1), vec![i]).unwrap();
        accounts.lock_funds(&a, Credits::from_gd(1)).unwrap();
        accounts.unlock_funds(&a, Credits::from_gd(1)).unwrap();
    }

    let journal = db.journal_snapshot();
    for cut in 0..=journal.len() {
        let partial = Database::replay(1, 1, &journal[..cut]);
        for record in partial.all_accounts() {
            assert!(record.locked >= Credits::ZERO, "cut {cut}: negative lock");
            assert!(record.available >= -record.credit_limit, "cut {cut}: overdraft");
        }
    }
}

#[test]
fn crash_between_apply_and_ack_keeps_the_retry_exactly_once() {
    // The client sends a keyed DirectTransfer; the bank applies it and
    // journals the idempotency stamp atomically with the transfer — and
    // then "crashes" before the response reaches the client. On the
    // rebuilt bank, the client's retry (same key) must be answered from
    // the replayed dedup cache: same transaction id, no second transfer,
    // and still exactly one journal entry for the key.
    use gridbank_suite::bank::api::{BankRequest, BankResponse};
    use gridbank_suite::bank::db::JournalEntry;
    use gridbank_suite::bank::server::{GridBank, GridBankConfig};
    use gridbank_suite::crypto::cert::SubjectName;

    let config = || GridBankConfig { signer_height: 5, ..GridBankConfig::default() };
    let bank = GridBank::new(config(), Clock::new());
    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let operator = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());

    let alice_account = match bank.handle(&alice, BankRequest::CreateAccount { organization: None })
    {
        BankResponse::AccountCreated { account } => account,
        other => panic!("create failed: {other:?}"),
    };
    let bob_account = match bank.handle(&bob, BankRequest::CreateAccount { organization: None }) {
        BankResponse::AccountCreated { account } => account,
        other => panic!("create failed: {other:?}"),
    };
    bank.handle(
        &operator,
        BankRequest::AdminDeposit { account: alice_account, amount: Credits::from_gd(10) },
    );

    const KEY: u64 = 0xDEAD_BEEF;
    let request = BankRequest::DirectTransfer {
        to: bob_account,
        amount: Credits::from_gd(4),
        recipient_address: "bob.grid.org".into(),
    };
    let original_txid = match bank.handle_keyed(&alice, Some(KEY), request.clone()) {
        BankResponse::Confirmed(conf) => conf.body.transaction_id,
        other => panic!("transfer failed: {other:?}"),
    };

    let idem_entries = |journal: &[JournalEntry]| {
        journal
            .iter()
            .filter(|e| matches!(e, JournalEntry::Idem { key, .. } if *key == KEY))
            .count()
    };
    let journal = bank.journal_snapshot();
    assert_eq!(idem_entries(&journal), 1, "the apply journals exactly one stamp");

    // Crash: only the journal survives. The response above never
    // reached the client.
    let rebuilt = GridBank::from_journal(config(), Clock::new(), &journal);
    assert_eq!(rebuilt.total_funds(), bank.total_funds());

    // The client retries with the same key and must get the same
    // transaction back — the replayed stamp holds the placeholder
    // confirmation committed atomically with the transfer.
    match rebuilt.handle_keyed(&alice, Some(KEY), request.clone()) {
        BankResponse::Confirmation { transaction_id } => {
            assert_eq!(transaction_id, original_txid)
        }
        other => panic!("retry not deduplicated: {other:?}"),
    }
    assert_eq!(rebuilt.all_transfers().len(), 1, "no second transfer row");
    assert_eq!(idem_entries(&rebuilt.journal_snapshot()), 1, "dedup hit journals nothing");
    let alice_rec = rebuilt
        .all_accounts()
        .into_iter()
        .find(|r| r.id == alice_account)
        .expect("alice survives replay");
    assert_eq!(alice_rec.available, Credits::from_gd(6), "charged exactly once");

    // A *different* key is a new logical operation and applies again.
    match rebuilt.handle_keyed(&alice, Some(KEY + 1), request) {
        BankResponse::Confirmed(conf) => {
            assert_ne!(conf.body.transaction_id, original_txid)
        }
        other => panic!("fresh key refused: {other:?}"),
    }
    assert_eq!(rebuilt.all_transfers().len(), 2);
}

#[test]
fn failed_group_commit_member_never_reaches_the_journal() {
    // Group commit coalesces concurrent DirectTransfer batches into one
    // journal flush. A member whose application fails (insufficient
    // funds) must be split out of the group: its Update/Transfer/Idem
    // rows never reach the journal, while the concurrent successful
    // members commit normally — and the post-crash bank agrees.
    use gridbank_suite::bank::api::{BankRequest, BankResponse};
    use gridbank_suite::bank::db::{GroupCommitConfig, JournalEntry};
    use gridbank_suite::bank::server::{GridBank, GridBankConfig};
    use gridbank_suite::crypto::cert::SubjectName;

    let config = || GridBankConfig {
        signer_height: 6,
        // A wide grouping window so the concurrent committers below
        // genuinely share flushes.
        group_commit: GroupCommitConfig { max_batch: 16, max_delay_micros: 2_000 },
        ..GridBankConfig::default()
    };
    let bank = GridBank::new(config(), Clock::new());
    let operator = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());

    let subjects: Vec<SubjectName> =
        (0..4).map(|i| SubjectName::new("Org", "Unit", &format!("payer{i}"))).collect();
    let broke = SubjectName::new("Org", "Unit", "broke");
    let sink = SubjectName::new("Org", "Unit", "sink");
    let open =
        |s: &SubjectName| match bank.handle(s, BankRequest::CreateAccount { organization: None }) {
            BankResponse::AccountCreated { account } => account,
            other => panic!("create failed: {other:?}"),
        };
    for s in &subjects {
        let account = open(s);
        bank.handle(&operator, BankRequest::AdminDeposit { account, amount: Credits::from_gd(50) });
    }
    let broke_account = open(&broke);
    let sink_account = open(&sink);

    let transfer = BankRequest::DirectTransfer {
        to: sink_account,
        amount: Credits::from_gd(5),
        recipient_address: "sink.grid.org".into(),
    };
    std::thread::scope(|scope| {
        for (i, s) in subjects.iter().enumerate() {
            let (bank, transfer) = (&bank, transfer.clone());
            scope.spawn(move || {
                let reply = bank.handle_keyed(s, Some(1000 + i as u64), transfer);
                assert!(matches!(reply, BankResponse::Confirmed(_)), "payer {i}: {reply:?}");
            });
        }
        let (bank, transfer, broke) = (&bank, transfer.clone(), &broke);
        scope.spawn(move || {
            // Zero balance: application fails before anything is queued
            // for the group, so the flush proceeds without this member.
            let reply = bank.handle_keyed(broke, Some(2000), transfer);
            assert!(matches!(reply, BankResponse::Error { .. }), "broke payer: {reply:?}");
        });
    });

    let journal = bank.journal_snapshot();
    let broke_deposits: Vec<_> = journal
        .iter()
        .filter(|e| matches!(e, JournalEntry::Update(r) if r.id == broke_account))
        .collect();
    assert!(broke_deposits.is_empty(), "failed member left journal rows: {broke_deposits:?}");
    assert!(
        !journal.iter().any(|e| matches!(e, JournalEntry::Idem { key: 2000, .. })),
        "failed member must not consume its idempotency key"
    );

    // Crash and replay: the rebuilt bank matches the live one, the four
    // successful transfers survived, and the failed member's retry (same
    // key) applies cleanly once funded.
    let rebuilt = GridBank::from_journal(config(), Clock::new(), &journal);
    assert_eq!(rebuilt.all_accounts(), bank.all_accounts());
    assert_eq!(rebuilt.total_funds(), bank.total_funds());
    assert_eq!(rebuilt.all_transfers().len(), 4);
    rebuilt.handle(
        &operator,
        BankRequest::AdminDeposit { account: broke_account, amount: Credits::from_gd(10) },
    );
    let transfer = BankRequest::DirectTransfer {
        to: sink_account,
        amount: Credits::from_gd(5),
        recipient_address: "sink.grid.org".into(),
    };
    match rebuilt.handle_keyed(&broke, Some(2000), transfer) {
        BankResponse::Confirmed(_) => {}
        other => panic!("retry after funding failed: {other:?}"),
    }
    assert_eq!(rebuilt.all_transfers().len(), 5);
}

#[test]
fn replay_rediscovers_clearing_accounts_and_reships_pending_credits() {
    // A cross-branch payment parks the amount in the drawer branch's
    // clearing account and journals a pending IbCredit. If the branch
    // crashes before the peer acknowledges, replay must (1) rediscover
    // the existing Clearing/CN=branch-A-vs-B account instead of lazily
    // creating a duplicate, and (2) rebuild the pending credit so the
    // re-ship delivers it exactly once.
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    use gridbank_suite::bank::api::{BankRequest, BankResponse};
    use gridbank_suite::bank::federation::{FederationRouter, LocalPeer, PeerTransport};
    use gridbank_suite::bank::server::{GridBank, GridBankConfig};
    use gridbank_suite::bank::BankError;
    use gridbank_suite::crypto::cert::SubjectName;
    use gridbank_suite::net::error::NetError;

    /// A peer link with a breakable wire: while `down`, every call fails
    /// like a dead network — after the underlying delivery may or may
    /// not have happened, which is exactly the ambiguity the pending
    /// journal must survive.
    struct FlakyPeer {
        inner: Arc<LocalPeer>,
        down: AtomicBool,
    }
    impl PeerTransport for FlakyPeer {
        fn call(
            &self,
            idem_key: Option<u64>,
            request: &BankRequest,
        ) -> Result<BankResponse, BankError> {
            if self.down.load(Ordering::Relaxed) {
                return Err(BankError::Net(NetError::Disconnected));
            }
            self.inner.call(idem_key, request)
        }
    }

    let config =
        |branch: u16| GridBankConfig { branch, signer_height: 6, ..GridBankConfig::default() };
    let clock = Clock::new();
    let home = Arc::new(GridBank::new(config(1), clock.clone()));
    let remote = Arc::new(GridBank::new(config(2), clock.clone()));
    let home_router = FederationRouter::install(&home);
    let remote_router = FederationRouter::install(&remote);
    remote_router.add_peer(1, LocalPeer::new(Arc::clone(&home), 2));
    let link = Arc::new(FlakyPeer {
        inner: LocalPeer::new(Arc::clone(&remote), 1),
        down: AtomicBool::new(false),
    });
    home_router.add_peer(2, Arc::clone(&link) as Arc<dyn PeerTransport>);

    let alice = SubjectName::new("Org", "Unit", "alice");
    let bob = SubjectName::new("Org", "Unit", "bob");
    let operator = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
    let open = |bank: &GridBank, s: &SubjectName| match bank
        .handle(s, BankRequest::CreateAccount { organization: None })
    {
        BankResponse::AccountCreated { account } => account,
        other => panic!("create failed: {other:?}"),
    };
    let alice_account = open(&home, &alice);
    let bob_account = open(&remote, &bob);
    home.handle(
        &operator,
        BankRequest::AdminDeposit { account: alice_account, amount: Credits::from_gd(100) },
    );

    // First payment delivers normally and establishes the clearing
    // account; then the wire dies and a second payment strands its
    // credit in the pending set.
    let pay = |key: u64| {
        home.handle_keyed(
            &alice,
            Some(key),
            BankRequest::DirectTransfer {
                to: bob_account,
                amount: Credits::from_gd(10),
                recipient_address: "bob.grid.org".into(),
            },
        )
    };
    assert!(matches!(pay(1), BankResponse::Confirmed(_)));
    link.down.store(true, Ordering::Relaxed);
    assert!(matches!(pay(2), BankResponse::Confirmed(_)), "stranded ship still confirms locally");
    let clearing = home_router.clearing_account(2).unwrap();
    assert_eq!(home_router.clearing_balance(2), Credits::from_gd(20));
    assert_eq!(home.accounts.db().ib_pending_snapshot().len(), 1);
    let accounts_before = home.accounts.db().account_count();

    // Crash the home branch: only the journal survives.
    let journal = home.journal_snapshot();
    let rebuilt = Arc::new(GridBank::from_journal(config(1), Clock::new(), &journal));
    let rebuilt_router = FederationRouter::install(&rebuilt);
    rebuilt_router.add_peer(2, LocalPeer::new(Arc::clone(&remote), 1));

    // Rediscovery, not re-creation: same clearing account id, no
    // duplicate Clearing/CN rows.
    assert_eq!(rebuilt_router.clearing_account(2).unwrap(), clearing);
    assert_eq!(rebuilt.accounts.db().account_count(), accounts_before);
    assert_eq!(rebuilt_router.clearing_balance(2), Credits::from_gd(20));

    // The pending credit survived replay and re-ships exactly once.
    assert_eq!(rebuilt.accounts.db().ib_pending_snapshot().len(), 1);
    assert_eq!(rebuilt_router.ship_pending(), 1);
    assert!(rebuilt.accounts.db().ib_pending_snapshot().is_empty());
    let bob_balance = || {
        remote
            .all_accounts()
            .into_iter()
            .find(|r| r.id == bob_account)
            .expect("bob exists")
            .available
    };
    assert_eq!(bob_balance(), Credits::from_gd(20), "both credits applied exactly once");

    // Idempotent: a second re-ship pass (or a retry of the first) finds
    // nothing and changes nothing — the dedup key rode along.
    assert_eq!(rebuilt_router.ship_pending(), 0);
    assert_eq!(bob_balance(), Credits::from_gd(20));

    // And a crash *after* the ack replays to an empty pending set.
    let rebuilt2 = GridBank::from_journal(config(1), Clock::new(), &rebuilt.journal_snapshot());
    assert!(rebuilt2.accounts.db().ib_pending_snapshot().is_empty());
}

#[test]
fn empty_and_corrupt_journals_are_handled() {
    let empty = Database::replay(1, 1, &[]);
    assert_eq!(empty.account_count(), 0);
    assert_eq!(empty.total_funds(), Credits::ZERO);

    let bytes = journal_to_bytes(&[]);
    assert_eq!(journal_from_bytes(&bytes).unwrap().len(), 0);
    assert!(journal_from_bytes(&[1, 2, 3]).is_err());
}
