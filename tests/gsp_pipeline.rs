//! E2 — Figure 2's GSP internals: raw native records in three OS
//! flavours flow through the conversion unit into conforming RURs, get
//! priced against the agreed rates, and aggregate across resources.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use gridbank_suite::meter::levels::AccountingLevel;
use gridbank_suite::meter::machine::{JobSpec, Machine, MachineSpec, OsFlavour};
use gridbank_suite::meter::meter::{GridResourceMeter, MeteredJob};
use gridbank_suite::rur::aggregate::aggregate_records;
use gridbank_suite::rur::codec::{Decode, Encode};
use gridbank_suite::rur::record::{ChargeableItem, ResourceUsageRecord};
use gridbank_suite::rur::text;
use gridbank_suite::rur::Credits;
use gridbank_suite::trade::rates::ServiceRates;

fn rates() -> ServiceRates {
    ServiceRates::new()
        .with(ChargeableItem::WallClock, Credits::from_milli(100))
        .with(ChargeableItem::Cpu, Credits::from_gd(2))
        .with(ChargeableItem::Memory, Credits::from_milli(10))
        .with(ChargeableItem::Storage, Credits::from_milli(2))
        .with(ChargeableItem::Network, Credits::from_milli(5))
        .with(ChargeableItem::Software, Credits::from_milli(500))
}

fn prices() -> Vec<(ChargeableItem, Credits)> {
    rates().iter().collect()
}

fn job() -> JobSpec {
    JobSpec {
        work: 1_000_000,
        parallelism: 2,
        memory_mb: 1_024,
        storage_mb: 256,
        network_mb: 64,
        sys_pct: 12,
    }
}

fn metered_on(os: OsFlavour, seed: u64) -> MeteredJob {
    let spec = MachineSpec {
        host: format!("{:?}-node", os).to_lowercase(),
        os,
        speed: 125,
        cores: 4,
        memory_mb: 8_192,
    };
    let mut machine = Machine::new(spec.clone(), seed);
    let exec = machine.execute(&job(), 500);
    MeteredJob {
        user_host: "submit.uwa.edu.au".into(),
        user_cert: "/CN=alice".into(),
        job_id: format!("job-{seed}"),
        application: "render".into(),
        executions: vec![(spec.host, os.host_type().to_string(), exec.native)],
    }
}

#[test]
fn all_three_os_flavours_produce_conforming_rurs() {
    let meter = GridResourceMeter::new("/CN=gsp");
    let r = rates();
    for (os, seed) in [(OsFlavour::Linux, 1), (OsFlavour::Solaris, 2), (OsFlavour::Cray, 3)] {
        let metered = metered_on(os, seed);
        let rur = meter.build_rur(&metered, &prices(), AccountingLevel::Standard).unwrap();
        // §2.1 conformance: every priced item is metered and vice versa.
        r.conforms_to(&rur).unwrap();
        let charge = r.charge(&rur).unwrap();
        assert!(charge.is_positive(), "{os:?} produced a free job");
        assert_eq!(rur.resource.host_type.as_deref(), Some(os.host_type()));
    }
}

#[test]
fn charges_agree_across_flavours_for_the_same_job() {
    // The same abstract job metered through different native formats must
    // charge nearly the same (format changes units, not usage). Machine
    // jitter is seeded identically.
    let meter = GridResourceMeter::new("/CN=gsp");
    let r = rates();
    let charges: Vec<Credits> = [OsFlavour::Linux, OsFlavour::Solaris, OsFlavour::Cray]
        .into_iter()
        .map(|os| {
            let metered = metered_on(os, 42);
            let rur = meter.build_rur(&metered, &prices(), AccountingLevel::Standard).unwrap();
            r.charge(&rur).unwrap()
        })
        .collect();
    let max = charges.iter().max().unwrap();
    let min = charges.iter().min().unwrap();
    let spread = max.checked_sub(*min).unwrap();
    // Unit roundings (ticks, pages, sectors) cause small divergence only.
    let tolerance = max.mul_ratio(2, 100).unwrap(); // 2%
    assert!(spread <= tolerance, "charges diverge: {charges:?}");
}

#[test]
fn four_resources_aggregate_into_one_gsp_record() {
    let meter = GridResourceMeter::new("/CN=gsp");
    // One parallel job served by R1-R4.
    let mut executions = Vec::new();
    for i in 0..4u64 {
        let spec = MachineSpec {
            host: format!("r{}", i + 1),
            os: OsFlavour::Linux,
            speed: 100 + 25 * i as u32,
            cores: 2,
            memory_mb: 4_096,
        };
        let mut machine = Machine::new(spec.clone(), 100 + i);
        let exec = machine.execute(&job(), i * 50);
        executions.push((spec.host, "Linux/x86".to_string(), exec.native));
    }
    let metered = MeteredJob {
        user_host: "h".into(),
        user_cert: "/CN=alice".into(),
        job_id: "mpi-1".into(),
        application: "mpi".into(),
        executions,
    };
    let per = meter.per_resource_rurs(&metered, &prices(), AccountingLevel::Standard).unwrap();
    assert_eq!(per.len(), 4);
    let combined = meter.build_rur(&metered, &prices(), AccountingLevel::Standard).unwrap();
    rates().conforms_to(&combined).unwrap();

    // Aggregate envelope covers all executions.
    let start = per.iter().map(|r| r.job.start_ms).min().unwrap();
    let end = per.iter().map(|r| r.job.end_ms).max().unwrap();
    assert_eq!(combined.job.start_ms, start);
    assert_eq!(combined.job.end_ms, end);

    // Aggregating the per-resource records manually gives the same thing.
    let manual = aggregate_records(&per).unwrap();
    assert_eq!(manual, combined);
}

#[test]
fn rur_survives_binary_and_text_round_trips_through_the_pipeline() {
    let meter = GridResourceMeter::new("/CN=gsp");
    let metered = metered_on(OsFlavour::Cray, 9);
    let rur = meter.build_rur(&metered, &prices(), AccountingLevel::Standard).unwrap();

    // Binary (what the bank stores as a BLOB).
    let bytes = rur.to_bytes();
    let from_binary = ResourceUsageRecord::from_bytes(&bytes).unwrap();
    assert_eq!(from_binary, rur);

    // Text (what a site exchanging XML-ish records would send) and back.
    let rendered = text::to_text(&rur);
    let from_text = text::from_text(&rendered).unwrap();
    assert_eq!(from_text, rur);

    // Costs survive both.
    assert_eq!(from_binary.total_cost().unwrap(), from_text.total_cost().unwrap());
}

#[test]
fn tampered_rur_price_is_caught_by_conformance() {
    let meter = GridResourceMeter::new("/CN=gsp");
    let metered = metered_on(OsFlavour::Linux, 5);
    let mut rur = meter.build_rur(&metered, &prices(), AccountingLevel::Standard).unwrap();
    // The provider inflates the CPU price after agreement.
    for line in &mut rur.lines {
        if line.item == ChargeableItem::Cpu {
            line.price_per_unit = Credits::from_gd(99);
        }
    }
    assert!(rates().charge(&rur).is_err());
}

#[test]
fn streaming_metering_supports_pay_as_you_go() {
    let meter = GridResourceMeter::new("/CN=gsp");
    let metered = metered_on(OsFlavour::Linux, 6);
    let (_, _, native) = &metered.executions[0];
    let intervals = meter.stream_intervals(native, 250).unwrap();
    assert!(intervals.len() >= 4);
    // Per-interval CPU-time-based charges sum to (almost exactly) the
    // whole-job CPU charge.
    let cpu_rate = Credits::from_gd(2);
    let mut interval_total = Credits::ZERO;
    for iv in &intervals {
        let c = cpu_rate
            .mul_ratio(iv.usage.cpu.as_ms(), gridbank_suite::rur::units::MS_PER_HOUR)
            .unwrap();
        interval_total = interval_total.checked_add(c).unwrap();
    }
    let whole = native.normalize().unwrap();
    let whole_charge =
        cpu_rate.mul_ratio(whole.cpu.as_ms(), gridbank_suite::rur::units::MS_PER_HOUR).unwrap();
    let diff = interval_total.checked_sub(whole_charge).unwrap().abs();
    assert!(diff <= Credits::from_micro(intervals.len() as i128), "diff {diff}");
}
