//! E10 — §6 multi-branch settlement at scale: many branches, randomized
//! cross-VO payment traffic, netting correctness, conservation.

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_suite::bank::accounts::GbAccounts;
use gridbank_suite::bank::admin::GbAdmin;
use gridbank_suite::bank::branch::{Branch, InterBank};
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::{AccountId, Database};
use gridbank_suite::rur::Credits;

const ADMIN: &str = "/CN=root";

fn build_federation(branches: u16, members_per_branch: usize) -> (InterBank, Vec<Vec<AccountId>>) {
    let mut ib = InterBank::new();
    let mut accounts = Vec::new();
    for b in 1..=branches {
        let db = Arc::new(Database::new(1, b));
        let acc = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(acc.clone(), [ADMIN.to_string()]);
        let mut members = Vec::new();
        for m in 0..members_per_branch {
            let id = acc.create_account(&format!("/O=vo-{b}/CN=member-{m}"), None).unwrap();
            admin.deposit(ADMIN, &id, Credits::from_gd(1_000)).unwrap();
            members.push(id);
        }
        ib.add_branch(Branch::new(b, acc, admin));
        accounts.push(members);
    }
    (ib, accounts)
}

#[test]
fn randomized_traffic_nets_correctly() {
    let branches = 5u16;
    let (mut ib, accounts) = build_federation(branches, 3);
    let initial_total = Credits::from_gd(1_000 * branches as i64 * 3);
    assert_eq!(ib.total_funds(), initial_total);

    let mut rng = StdRng::seed_from_u64(99);
    let mut gross_expected = Credits::ZERO;
    let mut sent = 0u32;
    for _ in 0..200 {
        let from_branch = rng.random_range(0..branches as usize);
        let to_branch = rng.random_range(0..branches as usize);
        if from_branch == to_branch {
            continue;
        }
        let from = accounts[from_branch][rng.random_range(0..3usize)];
        let to = accounts[to_branch][rng.random_range(0..3usize)];
        let amount = Credits::from_milli(rng.random_range(100..5_000));
        ib.cross_branch_transfer(from, to, amount, Vec::new()).unwrap();
        gross_expected = gross_expected.checked_add(amount).unwrap();
        sent += 1;
    }
    assert!(sent > 100);

    let report = ib.settle().unwrap();
    // Gross in the report equals what we actually sent.
    assert_eq!(report.total_gross(), gross_expected);
    // Netting never exceeds gross and pairwise |net| ≤ gross of the pair.
    assert!(report.total_net() <= report.total_gross());
    for p in &report.pairs {
        let pair_gross = p.gross_a_to_b.checked_add(p.gross_b_to_a).unwrap();
        assert!(p.net.abs() <= pair_gross);
        // Net is exactly the signed difference.
        assert_eq!(p.net, p.gross_a_to_b.checked_add(-p.gross_b_to_a).unwrap());
    }

    // After settlement the federation's internal funds return to the
    // initial total: the eager payee credits are exactly offset by the
    // clearing-account drains.
    assert_eq!(ib.total_funds(), initial_total);

    // All clearing accounts are empty.
    for a in 1..=branches {
        for b in 1..=branches {
            if a != b {
                assert_eq!(ib.branch(a).unwrap().clearing_balance(b), Credits::ZERO);
            }
        }
    }

    // A second settlement finds nothing.
    assert!(ib.settle().unwrap().pairs.is_empty());
}

#[test]
fn settlement_rounds_compose() {
    // Settle between waves of traffic; final books must match a single
    // big settlement's effect.
    let (mut ib, accounts) = build_federation(3, 1);
    let a = accounts[0][0];
    let b = accounts[1][0];
    let c = accounts[2][0];

    ib.cross_branch_transfer(a, b, Credits::from_gd(10), Vec::new()).unwrap();
    let r1 = ib.settle().unwrap();
    assert_eq!(r1.total_net(), Credits::from_gd(10));

    ib.cross_branch_transfer(b, a, Credits::from_gd(4), Vec::new()).unwrap();
    ib.cross_branch_transfer(b, c, Credits::from_gd(6), Vec::new()).unwrap();
    let r2 = ib.settle().unwrap();
    assert_eq!(r2.total_net(), Credits::from_gd(10));

    // Balances: a: 1000-10+4, b: 1000+10-4-6, c: 1000+6.
    let get = |ib: &InterBank, branch: u16, id: AccountId| {
        ib.branch(branch).unwrap().accounts.account_details(&id).unwrap().available
    };
    assert_eq!(get(&ib, 1, a), Credits::from_gd(994));
    assert_eq!(get(&ib, 2, b), Credits::from_gd(1_000));
    assert_eq!(get(&ib, 3, c), Credits::from_gd(1_006));
    assert_eq!(ib.total_funds(), Credits::from_gd(3_000));
}

mod wire {
    //! Wire-level chaos variant: two live branch servers federated over
    //! an RPC link that a seeded [`FaultInjector`] drops, duplicates,
    //! reorders, and resets. Payments cross branches *during* the storm
    //! (so inline `IbCredit` shipping suffers the faults too); once the
    //! network heals, settlement must leave conservation intact, every
    //! credit applied exactly once, and zero stranded clearing.

    use std::sync::Arc;

    use gridbank_suite::bank::api::{BankRequest, BankResponse};
    use gridbank_suite::bank::client::GridBankClient;
    use gridbank_suite::bank::clock::Clock;
    use gridbank_suite::bank::db::TransactionType;
    use gridbank_suite::bank::federation::{FederationRouter, RemotePeer};
    use gridbank_suite::bank::port::BankPort;
    use gridbank_suite::bank::resilient::{Connector, ResilientBankClient};
    use gridbank_suite::bank::server::{
        GateMode, GridBank, GridBankConfig, GridBankServer, ServerCredentials,
    };
    use gridbank_suite::bank::BankError;
    use gridbank_suite::crypto::cert::{create_proxy, CertificateAuthority, SubjectName};
    use gridbank_suite::crypto::keys::{KeyMaterial, SigningIdentity};
    use gridbank_suite::crypto::rng::DeterministicStream;
    use gridbank_suite::net::fault::{FaultInjector, FaultPlan, FaultRates};
    use gridbank_suite::net::retry::{CircuitBreaker, RetryPolicy};
    use gridbank_suite::net::transport::{Address, Network};
    use gridbank_suite::rur::Credits;

    const FAULT_RATE_PM: u32 = 160;

    fn seeds() -> Vec<u64> {
        if let Ok(s) = std::env::var("CHAOS_SEED") {
            return vec![s.parse().expect("CHAOS_SEED must be a u64")];
        }
        vec![7, 23]
    }

    struct Federation {
        network: Network,
        ca: CertificateAuthority,
        clock: Clock,
        banks: Vec<Arc<GridBank>>,
        routers: Vec<Arc<FederationRouter>>,
        injector: Arc<FaultInjector>,
        _servers: Vec<GridBankServer>,
    }

    fn branch_address(b: u16) -> Address {
        Address::new(format!("branch-{b}"))
    }

    fn build(seed: u64) -> Federation {
        let ca = CertificateAuthority::new(
            SubjectName::new("GridBank", "CA", "Root"),
            SigningIdentity::generate_small(KeyMaterial { seed: 1 }, "ca"),
        );
        let clock = Clock::new();
        let network = Network::new();
        let injector =
            FaultInjector::new(FaultPlan::symmetric(seed, FaultRates::uniform(FAULT_RATE_PM)));
        network.install_faults(Arc::clone(&injector));
        let mut banks = Vec::new();
        let mut servers = Vec::new();
        for b in 1..=2u16 {
            let bank = Arc::new(GridBank::new(
                GridBankConfig {
                    branch: b,
                    gate_mode: GateMode::AllowEnrollment,
                    signer_height: 9,
                    key_material: KeyMaterial { seed: 0xB4A2 ^ b as u64 },
                    ..GridBankConfig::default()
                },
                clock.clone(),
            ));
            let identity =
                Arc::new(SigningIdentity::generate(KeyMaterial { seed: 2 + b as u64 }, "tls"));
            let cert = ca
                .issue(
                    SubjectName::new("GridBank", "Server", &format!("branch-{b:04}")),
                    identity.verifying_key(),
                    0,
                    u64::MAX / 2,
                )
                .unwrap();
            let server = GridBankServer::start(
                &network,
                branch_address(b),
                Arc::clone(&bank),
                ServerCredentials { certificate: cert, identity, ca_key: ca.verifying_key() },
                b as u64,
            )
            .unwrap();
            banks.push(bank);
            servers.push(server);
        }
        let routers: Vec<_> = banks.iter().map(FederationRouter::install).collect();
        let fed = Federation { network, ca, clock, banks, routers, injector, _servers: servers };
        for from in 1..=2u16 {
            let to = 3 - from;
            let dn = SubjectName::new("GridBank", "Settlement", &format!("branch-{from:04}"));
            let client = resilient(&fed, &dn, to, 0x5E77 ^ (from as u64) << 8);
            fed.routers[(from - 1) as usize].add_peer(to, RemotePeer::new(client));
        }
        fed
    }

    /// A reconnecting resilient client for `dn` against branch
    /// `target`: retries ride fresh handshakes with stable keys, the
    /// configuration the exactly-once guarantees are stated for.
    fn resilient(f: &Federation, dn: &SubjectName, target: u16, seed: u64) -> ResilientBankClient {
        let id = SigningIdentity::generate_small(KeyMaterial { seed }, "client");
        let cert = f.ca.issue(dn.clone(), id.verifying_key(), 0, u64::MAX / 2).unwrap();
        let proxy_id = SigningIdentity::generate_with_height(
            KeyMaterial { seed: seed ^ 0x50_0000 },
            "proxy",
            9,
        );
        let proxy = create_proxy(&id, &cert, proxy_id.verifying_key(), 0, u64::MAX / 2, 1).unwrap();
        let (network, ca_key, clock) = (f.network.clone(), f.ca.verifying_key(), f.clock.clone());
        let mut attempt = 0u64;
        let connector: Connector = Box::new(move || {
            attempt += 1;
            let mut nonces = DeterministicStream::from_u64(seed ^ (attempt << 32), b"nonce");
            GridBankClient::connect(
                &network,
                Address::new(format!("peer-{seed:x}.host")),
                &branch_address(target),
                ca_key,
                clock.now_ms(),
                &proxy,
                &proxy_id,
                &mut nonces,
            )
        });
        let policy = RetryPolicy {
            base_delay_ms: 1,
            max_delay_ms: 16,
            max_attempts: 12,
            deadline_ms: 1_000_000,
            seed,
        };
        ResilientBankClient::new(connector, policy, f.clock.clone(), seed)
            // Cooldown 0: the virtual clock is frozen during the storm,
            // so any positive cooldown would pin an open circuit shut.
            .with_breaker(CircuitBreaker::new(8, 0))
            .with_call_timeout(Some(std::time::Duration::from_millis(50)))
    }

    /// Unique per-payment amount: a repeated deposit amount at the payee
    /// is proof of a double-applied `IbCredit`.
    fn op_amount(branch: u16, op: usize) -> Credits {
        // lint:allow(money-arith) bounded literal inputs build distinct fixture amounts; cannot overflow
        Credits::from_micro(1_000_000 + (branch as i128) * 10_000 + op as i128 + 1)
    }

    #[test]
    fn federated_chaos_storm_settles_exactly_once() {
        for seed in seeds() {
            let f = build(seed);

            // Quiet-network setup: one funded payer and one payee per
            // branch; traffic will flow both ways so netting is real.
            let mut payers = Vec::new();
            let mut payees = Vec::new();
            for b in 1..=2u16 {
                let payer_dn = SubjectName::new("Org", "Unit", &format!("payer-{b}"));
                let mut payer = resilient(&f, &payer_dn, b, 0x100 + b as u64);
                let payer_account = payer.create_account(None).unwrap();
                let payee_dn = SubjectName::new("Org", "Unit", &format!("payee-{b}"));
                let mut payee = resilient(&f, &payee_dn, b, 0x200 + b as u64);
                payees.push(payee.create_account(None).unwrap());
                let operator = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
                let funded = f.banks[(b - 1) as usize].handle(
                    &operator,
                    BankRequest::AdminDeposit {
                        account: payer_account,
                        amount: Credits::from_gd(1_000),
                    },
                );
                assert!(matches!(funded, BankResponse::Confirmation { .. }), "{funded:?}");
                payers.push(payer);
            }
            let total = |f: &Federation| {
                f.banks
                    .iter()
                    .map(|b| b.total_funds())
                    .fold(Credits::ZERO, |a, c| a.saturating_add(c))
            };
            let initial_total = total(&f);

            // Storm: cross-branch payments while the wire misbehaves —
            // including the inter-branch IbCredit hops.
            f.injector.arm(true);
            let mut acked: Vec<(u16, Credits)> = Vec::new();
            let mut gave_up = 0;
            for op in 0..6 {
                for b in 1..=2u16 {
                    let payee = payees[(2 - b) as usize];
                    let amount = op_amount(b, op);
                    match payers[(b - 1) as usize].direct_transfer(payee, amount, "payee.grid.org")
                    {
                        Ok(_) => acked.push((3 - b, amount)),
                        Err(BankError::Net(_)) => gave_up += 1,
                        Err(e) => panic!("seed {seed}: unexpected refusal: {e}"),
                    }
                }
            }
            f.injector.arm(false);
            assert!(
                f.injector.counts().total() > 0,
                "seed {seed}: no faults fired; the storm never happened"
            );
            let _ = gave_up; // conservation must hold whatever the ack rate

            // The network heals; both branches re-ship and settle. Two
            // passes: only the lower branch id proposes for a pair, so
            // credits the higher branch re-ships during its own pass
            // drain on the proposer's next round.
            for _ in 0..2 {
                for router in &f.routers {
                    router.settle_once().unwrap_or_else(|e| panic!("seed {seed}: settle: {e}"));
                }
            }

            // No double-applied IbCredit: every deposit amount at each
            // payee is unique, and every acked payment landed.
            for (i, payee) in payees.iter().enumerate() {
                let branch = i as u16 + 1;
                let mut amounts: Vec<Credits> = f.banks[i]
                    .accounts
                    .db()
                    .transactions_in_range(payee, 0, u64::MAX)
                    .into_iter()
                    .filter(|t| t.tx_type == TransactionType::Deposit)
                    .map(|t| t.amount)
                    .collect();
                let applied = amounts.len();
                amounts.sort();
                amounts.dedup();
                assert_eq!(
                    applied,
                    amounts.len(),
                    "seed {seed}: double-applied IbCredit at branch {branch}"
                );
                for (to, amount) in acked.iter().filter(|(to, _)| *to == branch) {
                    assert!(
                        amounts.contains(amount),
                        "seed {seed}: acked payment of {amount} to branch {to} never landed"
                    );
                }
            }

            // Conservation and zero stranded clearing.
            assert_eq!(total(&f), initial_total, "seed {seed}: funds not conserved");
            for (i, router) in f.routers.iter().enumerate() {
                for peer in router.peer_branches() {
                    assert_eq!(
                        router.clearing_balance(peer),
                        Credits::ZERO,
                        "seed {seed}: stranded clearing at branch {}",
                        i + 1
                    );
                }
                assert!(
                    f.banks[i].accounts.db().ib_pending_snapshot().is_empty(),
                    "seed {seed}: unacknowledged credits left at branch {}",
                    i + 1
                );
            }
        }
    }
}

#[test]
fn cross_branch_rur_evidence_is_preserved() {
    let (mut ib, accounts) = build_federation(2, 1);
    let blob = vec![0xAB; 64];
    ib.cross_branch_transfer(accounts[0][0], accounts[1][0], Credits::from_gd(1), blob.clone())
        .unwrap();
    // The drawer branch's transfer row carries the RUR blob.
    let transfers =
        ib.branch(1).unwrap().accounts.db().transfers_in_range(&accounts[0][0], 0, u64::MAX);
    assert_eq!(transfers.len(), 1);
    assert_eq!(transfers[0].rur_blob, blob);
}
