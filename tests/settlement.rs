//! E10 — §6 multi-branch settlement at scale: many branches, randomized
//! cross-VO payment traffic, netting correctness, conservation.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gridbank_suite::bank::accounts::GbAccounts;
use gridbank_suite::bank::admin::GbAdmin;
use gridbank_suite::bank::branch::{Branch, InterBank};
use gridbank_suite::bank::clock::Clock;
use gridbank_suite::bank::db::{AccountId, Database};
use gridbank_suite::rur::Credits;

const ADMIN: &str = "/CN=root";

fn build_federation(branches: u16, members_per_branch: usize) -> (InterBank, Vec<Vec<AccountId>>) {
    let mut ib = InterBank::new();
    let mut accounts = Vec::new();
    for b in 1..=branches {
        let db = Arc::new(Database::new(1, b));
        let acc = GbAccounts::new(db, Clock::new());
        let admin = GbAdmin::new(acc.clone(), [ADMIN.to_string()]);
        let mut members = Vec::new();
        for m in 0..members_per_branch {
            let id = acc.create_account(&format!("/O=vo-{b}/CN=member-{m}"), None).unwrap();
            admin.deposit(ADMIN, &id, Credits::from_gd(1_000)).unwrap();
            members.push(id);
        }
        ib.add_branch(Branch::new(b, acc, admin));
        accounts.push(members);
    }
    (ib, accounts)
}

#[test]
fn randomized_traffic_nets_correctly() {
    let branches = 5u16;
    let (mut ib, accounts) = build_federation(branches, 3);
    let initial_total = Credits::from_gd(1_000 * branches as i64 * 3);
    assert_eq!(ib.total_funds(), initial_total);

    let mut rng = StdRng::seed_from_u64(99);
    let mut gross_expected = Credits::ZERO;
    let mut sent = 0u32;
    for _ in 0..200 {
        let from_branch = rng.random_range(0..branches as usize);
        let to_branch = rng.random_range(0..branches as usize);
        if from_branch == to_branch {
            continue;
        }
        let from = accounts[from_branch][rng.random_range(0..3usize)];
        let to = accounts[to_branch][rng.random_range(0..3usize)];
        let amount = Credits::from_milli(rng.random_range(100..5_000));
        ib.cross_branch_transfer(from, to, amount, Vec::new()).unwrap();
        gross_expected = gross_expected.checked_add(amount).unwrap();
        sent += 1;
    }
    assert!(sent > 100);

    let report = ib.settle().unwrap();
    // Gross in the report equals what we actually sent.
    assert_eq!(report.total_gross(), gross_expected);
    // Netting never exceeds gross and pairwise |net| ≤ gross of the pair.
    assert!(report.total_net() <= report.total_gross());
    for p in &report.pairs {
        let pair_gross = p.gross_a_to_b.checked_add(p.gross_b_to_a).unwrap();
        assert!(p.net.abs() <= pair_gross);
        // Net is exactly the signed difference.
        assert_eq!(p.net, p.gross_a_to_b.checked_add(-p.gross_b_to_a).unwrap());
    }

    // After settlement the federation's internal funds return to the
    // initial total: the eager payee credits are exactly offset by the
    // clearing-account drains.
    assert_eq!(ib.total_funds(), initial_total);

    // All clearing accounts are empty.
    for a in 1..=branches {
        for b in 1..=branches {
            if a != b {
                assert_eq!(ib.branch(a).unwrap().clearing_balance(b), Credits::ZERO);
            }
        }
    }

    // A second settlement finds nothing.
    assert!(ib.settle().unwrap().pairs.is_empty());
}

#[test]
fn settlement_rounds_compose() {
    // Settle between waves of traffic; final books must match a single
    // big settlement's effect.
    let (mut ib, accounts) = build_federation(3, 1);
    let a = accounts[0][0];
    let b = accounts[1][0];
    let c = accounts[2][0];

    ib.cross_branch_transfer(a, b, Credits::from_gd(10), Vec::new()).unwrap();
    let r1 = ib.settle().unwrap();
    assert_eq!(r1.total_net(), Credits::from_gd(10));

    ib.cross_branch_transfer(b, a, Credits::from_gd(4), Vec::new()).unwrap();
    ib.cross_branch_transfer(b, c, Credits::from_gd(6), Vec::new()).unwrap();
    let r2 = ib.settle().unwrap();
    assert_eq!(r2.total_net(), Credits::from_gd(10));

    // Balances: a: 1000-10+4, b: 1000+10-4-6, c: 1000+6.
    let get = |ib: &InterBank, branch: u16, id: AccountId| {
        ib.branch(branch).unwrap().accounts.account_details(&id).unwrap().available
    };
    assert_eq!(get(&ib, 1, a), Credits::from_gd(994));
    assert_eq!(get(&ib, 2, b), Credits::from_gd(1_000));
    assert_eq!(get(&ib, 3, c), Credits::from_gd(1_006));
    assert_eq!(ib.total_funds(), Credits::from_gd(3_000));
}

#[test]
fn cross_branch_rur_evidence_is_preserved() {
    let (mut ib, accounts) = build_federation(2, 1);
    let blob = vec![0xAB; 64];
    ib.cross_branch_transfer(accounts[0][0], accounts[1][0], Credits::from_gd(1), blob.clone())
        .unwrap();
    // The drawer branch's transfer row carries the RUR blob.
    let transfers =
        ib.branch(1).unwrap().accounts.db().transfers_in_range(&accounts[0][0], 0, u64::MAX);
    assert_eq!(transfers.len(), 1);
    assert_eq!(transfers[0].rur_blob, blob);
}
