//! E15 — chaos soak: Figure-1 payments through a faulty network.
//!
//! The consumer → bank → GSP flow runs over the authenticated channel
//! while a seeded [`FaultInjector`] drops, duplicates, reorders, and
//! resets frames at ≥20% per direction. Clients retry through
//! `ResilientBankClient` with stable idempotency keys; the bank's dedup
//! cache makes the retries exactly-once. After every storm:
//!
//! * **no double-apply** — each logical payment uses a unique
//!   `(drawer, recipient, amount)` triple; no triple may repeat;
//! * **no lost acks** — every operation the client got a confirmation
//!   for is present in the transfer table;
//! * **no stranded locks** — expiry + sweep releases every lock;
//! * **conservation** — Σ(available+locked) is unchanged.
//!
//! Seeds are fixed for reproducibility; set `CHAOS_SEED=<n>` to probe a
//! different storm (CI keeps the defaults).

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use gridbank_suite::sim::chaos::{run_chaos, ChaosConfig};

/// ≥20% uniform fault rate, per direction, per fault kind.
const FAULT_RATE_PM: u32 = 220;

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed = s.parse().expect("CHAOS_SEED must be a u64");
        return vec![seed];
    }
    vec![11, 42, 1977]
}

#[test]
fn chaos_storm_preserves_exactly_once_and_conservation() {
    for seed in seeds() {
        let cfg = ChaosConfig { seed, fault_rate_pm: FAULT_RATE_PM, ..ChaosConfig::default() };
        let report = run_chaos(&cfg);

        // The storm must actually have injected faults — otherwise this
        // test is vacuously green.
        assert!(
            report.faults.total() > 0,
            "seed {seed}: no faults injected; the storm never happened"
        );

        assert_eq!(
            report.double_applied, 0,
            "seed {seed}: double-applied transfers detected: {report:?}"
        );
        assert_eq!(
            report.lost_writes, 0,
            "seed {seed}: acked operations missing from the ledger: {report:?}"
        );
        assert_eq!(
            report.stranded_locked_micro, 0,
            "seed {seed}: funds left locked after expiry + sweep: {report:?}"
        );
        assert!(
            report.conserved(),
            "seed {seed}: Σ(available+locked) changed: {} -> {} ({report:?})",
            report.initial_total_micro,
            report.final_total_micro
        );
    }
}

/// The dedup cache is what makes retries exactly-once: with it disabled
/// (`idem_capacity: 0`) the same storm seeds must produce at least one
/// double-applied payment. If this test ever fails, the chaos suite has
/// lost its teeth — the assertions above would pass vacuously.
#[test]
fn disabling_dedup_makes_the_storm_double_apply() {
    let mut double_applied = 0;
    for seed in seeds() {
        let cfg = ChaosConfig {
            seed,
            fault_rate_pm: FAULT_RATE_PM,
            idem_capacity: 0,
            ..ChaosConfig::default()
        };
        let report = run_chaos(&cfg);
        double_applied += report.double_applied;
    }
    assert!(
        double_applied > 0,
        "no double-applies with dedup disabled: the chaos suite cannot \
         distinguish exactly-once from at-least-once"
    );
}
