//! E12 — deadline×budget sweeps over the four DBC algorithms, executed
//! against real providers with real payments (not just planned).

// Test fixtures build inputs with plain arithmetic; the workspace
// `clippy::arithmetic_side_effects` wall targets production money paths
// (see docs/STATIC_ANALYSIS.md §lint wall).
#![allow(clippy::arithmetic_side_effects)]

use gridbank_suite::broker::job::{JobBatch, QosConstraints};
use gridbank_suite::broker::scheduling::Algorithm;
use gridbank_suite::meter::machine::JobSpec;
use gridbank_suite::rur::units::MS_PER_HOUR;
use gridbank_suite::rur::Credits;
use gridbank_suite::sim::scenario::GridScenario;
use gridbank_suite::sim::topology::{build_grid, TopologyConfig};

fn grid() -> GridScenario {
    build_grid(&TopologyConfig {
        seed: 31,
        providers: 4,
        machines_per_provider: 2,
        speed_range: (100, 400),
        cpu_price_milli_range: (1_000, 8_000),
        cores: 4,
        pool_size: 16,
        dynamic_pricing: false,
        signer_height: 10,
        price_milli_per_speed_unit: None,
    })
}

fn batch(deadline_ms: u64, budget: Credits) -> JobBatch {
    JobBatch::sweep(
        "sweep",
        JobSpec {
            work: 45_000_000, // 7.5 min on a 100-speed box
            parallelism: 1,
            memory_mb: 0,
            storage_mb: 0,
            network_mb: 0,
            sys_pct: 0,
        },
        12,
        QosConstraints { deadline_ms, budget },
    )
}

fn run(algorithm: Algorithm, deadline_ms: u64, budget: Credits) -> (usize, Credits, u64) {
    let mut grid = grid();
    let mut broker = grid.new_consumer("qos-user", Credits::from_gd(10_000), budget);
    match broker.run_batch(algorithm, &batch(deadline_ms, budget), &mut grid.providers, 0) {
        Ok(r) => (r.completed, r.total_paid, r.makespan_ms),
        Err(_) => (0, Credits::ZERO, 0),
    }
}

#[test]
fn loose_qos_all_algorithms_complete_within_constraints() {
    let budget = Credits::from_gd(100);
    for alg in Algorithm::ALL {
        let (done, paid, makespan) = run(alg, 6 * MS_PER_HOUR, budget);
        assert_eq!(done, 12, "{}", alg.name());
        assert!(paid <= budget, "{} overspent: {paid}", alg.name());
        assert!(
            makespan <= 6 * MS_PER_HOUR + MS_PER_HOUR / 10,
            "{} blew the deadline: {makespan}",
            alg.name()
        );
    }
}

#[test]
fn cost_opt_dominates_on_price_time_opt_on_makespan() {
    let budget = Credits::from_gd(100);
    let deadline = 6 * MS_PER_HOUR;
    let (_, cost_paid, cost_makespan) = run(Algorithm::CostOpt, deadline, budget);
    let (_, time_paid, time_makespan) = run(Algorithm::TimeOpt, deadline, budget);
    assert!(cost_paid <= time_paid, "cost-opt paid {cost_paid} > time-opt {time_paid}");
    assert!(
        time_makespan <= cost_makespan,
        "time-opt makespan {time_makespan} > cost-opt {cost_makespan}"
    );
}

#[test]
fn tightening_deadline_raises_cost() {
    // The classic DBC crossover: as the deadline shrinks, cost-opt is
    // forced off the cheap/slow resource onto the fast/expensive one.
    // Handcrafted market: cheap@1G$/h speed 100 vs fast@8G$/h speed 400,
    // two machines each. 12 jobs of 7.5 slow-minutes:
    //   8h   → all cheap            ≈ 1.5 G$
    //   0.5h → 8 cheap + 4 fast     ≈ 2.0 G$
    //   0.2h → 2 cheap + 10 fast    ≈ 2.75 G$
    use gridbank_suite::bank::api::BankRequest;
    use gridbank_suite::bank::clock::Clock;
    use gridbank_suite::bank::port::{BankPort, InProcessBank};
    use gridbank_suite::bank::server::{GridBank, GridBankConfig};
    use gridbank_suite::broker::broker::GridResourceBroker;
    use gridbank_suite::broker::payment::PaymentModule;
    use gridbank_suite::crypto::cert::SubjectName;
    use gridbank_suite::gsp::provider::{GridServiceProvider, GspConfig};
    use gridbank_suite::meter::levels::AccountingLevel;
    use gridbank_suite::meter::machine::{MachineSpec, OsFlavour};
    use gridbank_suite::rur::record::ChargeableItem;
    use gridbank_suite::trade::pricing::FlatPricing;
    use gridbank_suite::trade::rates::ServiceRates;
    use std::sync::Arc;

    let run_with_deadline = |deadline_ms: u64| -> (usize, Credits) {
        let bank = Arc::new(GridBank::new(
            GridBankConfig { signer_height: 8, ..GridBankConfig::default() },
            Clock::new(),
        ));
        let admin = SubjectName("/O=GridBank/OU=Admin/CN=operator".into());
        let mk = |name: &str, speed: u32, price_gd: i64, seed: u64| {
            let cert = format!("/O=G/OU=GSP/CN={name}");
            let subject = SubjectName(cert.clone());
            let mut port = InProcessBank::new(bank.clone(), subject.clone());
            port.create_account(None).unwrap();
            GridServiceProvider::new(
                GspConfig {
                    cert,
                    host: format!("{name}.grid"),
                    machines: (0..2)
                        .map(|m| MachineSpec {
                            host: format!("{name}-{m}"),
                            os: OsFlavour::Linux,
                            speed,
                            cores: 1,
                            memory_mb: 8_192,
                        })
                        .collect(),
                    base_rates: ServiceRates::new()
                        .with(ChargeableItem::Cpu, Credits::from_gd(price_gd)),
                    pool_size: 8,
                    accounting_level: AccountingLevel::Standard,
                    machine_seed: seed,
                },
                bank.verifying_key(),
                InProcessBank::new(bank.clone(), subject),
                Box::new(FlatPricing),
            )
        };
        let mut providers = vec![mk("cheap", 100, 1, 1), mk("fast", 400, 8, 2)];
        let user = SubjectName::new("O", "U", "sweeper");
        let mut gbpm = PaymentModule::new(
            InProcessBank::new(bank.clone(), user.clone()),
            Credits::from_gd(500),
        );
        let account = gbpm.ensure_account(None).unwrap();
        bank.handle(
            &admin,
            BankRequest::AdminDeposit { account, amount: Credits::from_gd(10_000) },
        );
        let mut broker = GridResourceBroker::new(user.0, gbpm);
        match broker.run_batch(
            Algorithm::CostOpt,
            &batch(deadline_ms, Credits::from_gd(500)),
            &mut providers,
            0,
        ) {
            Ok(r) => (r.completed, r.total_paid),
            Err(_) => (0, Credits::ZERO),
        }
    };

    let mut costs = Vec::new();
    for deadline_ms in [8 * MS_PER_HOUR, MS_PER_HOUR / 2, MS_PER_HOUR / 5] {
        let (done, paid) = run_with_deadline(deadline_ms);
        assert_eq!(done, 12, "deadline {deadline_ms}ms");
        costs.push((deadline_ms, paid));
    }
    assert!(
        costs[0].1 <= costs[1].1 && costs[1].1 <= costs[2].1,
        "cost should not decrease as deadline tightens: {costs:?}"
    );
    assert!(costs[0].1 < costs[2].1, "expected a strict rise: {costs:?}");
}

#[test]
fn shrinking_budget_degrades_completion() {
    let deadline = 6 * MS_PER_HOUR;
    let mut completions = Vec::new();
    for budget_gd in [100i64, 2, 1] {
        let (done, paid, _) = run(Algorithm::TimeOpt, deadline, Credits::from_gd(budget_gd));
        assert!(paid <= Credits::from_gd(budget_gd));
        completions.push((budget_gd, done));
    }
    assert_eq!(completions[0].1, 12);
    assert!(
        completions[0].1 >= completions[1].1 && completions[1].1 >= completions[2].1,
        "completion should not improve as budget shrinks: {completions:?}"
    );
    assert!(completions[2].1 < 12, "a 1 G$ budget cannot complete everything");
}

#[test]
fn impossible_deadline_fails_cleanly() {
    let (done, paid, _) = run(Algorithm::TimeOpt, 1_000, Credits::from_gd(100));
    assert_eq!(done, 0);
    assert_eq!(paid, Credits::ZERO);
}
